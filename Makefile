# Developer entry points. The same commands CI runs; PYTHONPATH=src is
# exported so no editable install is needed.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test test-bench

# nrmi-lint gates src/ and examples/ at zero findings (tests/ is excluded
# on purpose: analysis_fixtures/ seeds deliberate violations). ruff covers
# all three trees when available; the container image may not ship it, so
# its absence is a skip, not a failure.
lint:
	$(PYTHON) -m repro.analysis --jobs 0 src examples
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests examples; \
	else \
		echo "ruff not installed; skipping style pass"; \
	fi

test:
	$(PYTHON) -m pytest -x -q

test-bench:
	$(PYTHON) -m pytest -q -m bench_smoke
