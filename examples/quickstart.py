#!/usr/bin/env python3
"""Quickstart: call-by-copy-restore in three steps.

1. Mark the data you pass to remote methods ``Restorable``.
2. Serve a ``Remote`` service and look it up.
3. Call it — mutations the server makes come back in place, visible
   through every alias, exactly as if the call had been local.

Run: ``python examples/quickstart.py``
"""

from repro import nrmi
from repro.core import Remote, Restorable


class ShoppingCart(Restorable):
    """Passed by copy-restore: server-side changes are restored in place."""

    def __init__(self) -> None:
        self.items = []
        self.total_cents = 0


class PricingService(Remote):
    """A remote service that fills in prices and totals."""

    PRICES = {"espresso": 250, "croissant": 320, "jam": 480}

    def price(self, cart: ShoppingCart) -> int:
        """Annotate each item with its price; return the number priced."""
        total = 0
        for entry in cart.items:
            entry["price_cents"] = self.PRICES.get(entry["name"], 0)
            total += entry["price_cents"] * entry["quantity"]
        cart.total_cents = total
        return len(cart.items)


def main() -> None:
    with nrmi.serve(PricingService(), name="pricing") as server:
        client = nrmi.Endpoint(name="quickstart-client")
        try:
            pricing = client.lookup(server.address, "pricing")

            cart = ShoppingCart()
            cart.items.append({"name": "espresso", "quantity": 2})
            cart.items.append({"name": "croissant", "quantity": 1})

            # An alias into the structure, as real programs have everywhere.
            first_item = cart.items[0]

            priced = pricing.price(cart)

            print(f"server priced {priced} items")
            print(f"cart total: {cart.total_cents} cents")          # restored
            print(f"alias sees: {first_item['price_cents']} cents")  # via alias
            assert cart.total_cents == 2 * 250 + 320
            assert first_item["price_cents"] == 250
            print("copy-restore kept every alias consistent — like a local call")
        finally:
            client.close()


if __name__ == "__main__":
    main()
