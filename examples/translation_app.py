#!/usr/bin/env python3
"""The paper's GUI translation example (Section 4.3), headless.

A model-view GUI aliases one vector of display strings from many widgets:
menus, toolbars, labels all point into the same shared model. Changing the
language calls a *remote* translation server; because the string vector is
inside a ``Restorable`` model, NRMI restores the translated strings in
place and every widget observes the change — with **no** update code on
the client.

The paper: "The distributed version code only has two tiny changes
compared to local code: a single class needs to implement
java.rmi.Restorable and a method has to be looked up using a remote lookup
mechanism before getting called."

Run: ``python examples/translation_app.py``
"""

from repro import nrmi
from repro.core import Remote, Restorable, Serializable

# --------------------------------------------------------------------------
# A tiny headless widget toolkit. Widgets hold *aliases* into the UI model —
# the pattern that makes copy-restore valuable.
# --------------------------------------------------------------------------


class UiModel(Restorable):
    """The shared model: one mutable cell per display string.

    Each label lives in its own single-element list so that widgets can
    alias the cell and observe in-place updates (strings themselves are
    immutable values, in Python as in Java).
    """

    def __init__(self, labels: list[str]) -> None:
        self.cells = [[label] for label in labels]

    def texts(self) -> list[str]:
        return [cell[0] for cell in self.cells]


class Widget:
    """Base widget: renders the text cells it aliases."""

    def __init__(self, name: str, cells: list[list[str]]) -> None:
        self.name = name
        self.cells = cells  # aliases into UiModel.cells

    def render(self) -> str:
        return f"[{self.name}: " + " | ".join(cell[0] for cell in self.cells) + "]"


class MenuBar(Widget):
    pass


class ToolBar(Widget):
    pass


class StatusLabel(Widget):
    pass


# --------------------------------------------------------------------------
# The remote translation server (the paper's: English, German, French).
# --------------------------------------------------------------------------


class TranslationServer(Remote):
    """Accepts a vector of words and rewrites them in the chosen language."""

    DICTIONARY = {
        "de": {
            "File": "Datei", "Edit": "Bearbeiten", "View": "Ansicht",
            "Open": "Öffnen", "Save": "Speichern", "Close": "Schließen",
            "Ready": "Bereit", "Help": "Hilfe",
        },
        "fr": {
            "File": "Fichier", "Edit": "Édition", "View": "Affichage",
            "Open": "Ouvrir", "Save": "Enregistrer", "Close": "Fermer",
            "Ready": "Prêt", "Help": "Aide",
        },
        "en": {},  # identity: the model's native language
    }
    REVERSE = {
        lang: {foreign: english for english, foreign in table.items()}
        for lang, table in DICTIONARY.items()
    }

    def translate(self, model: UiModel, language: str) -> int:
        """Rewrite every cell of *model* into *language*; returns count."""
        table = self.DICTIONARY.get(language)
        if table is None:
            raise ValueError(f"unsupported language {language!r}")
        translated = 0
        for cell in model.cells:
            english = self._to_english(cell[0])
            cell[0] = table.get(english, english)
            translated += 1
        return translated

    def _to_english(self, word: str) -> str:
        for reverse in self.REVERSE.values():
            if word in reverse:
                return reverse[word]
        return word


def main() -> None:
    labels = ["File", "Edit", "View", "Open", "Save", "Close", "Ready", "Help"]
    model = UiModel(labels)

    # Three widgets aliasing overlapping subsets of the model's cells.
    menu = MenuBar("menu", model.cells[0:3])
    toolbar = ToolBar("toolbar", model.cells[3:6])
    status = StatusLabel("status", [model.cells[6], model.cells[7], model.cells[0]])

    with nrmi.serve(TranslationServer(), name="translator") as server:
        client = nrmi.Endpoint(name="gui-client")
        try:
            translator = client.lookup(server.address, "translator")

            print("initial UI:")
            for widget in (menu, toolbar, status):
                print("  " + widget.render())

            for language in ("de", "fr", "en"):
                translator.translate(model, language)
                print(f"\nafter remote translate({language!r}):")
                for widget in (menu, toolbar, status):
                    print("  " + widget.render())

            assert menu.render() == "[menu: File | Edit | View]"
            print("\nall widgets tracked the model through three remote calls"
                  "\n(no client-side update code — copy-restore did the work)")
        finally:
            client.close()


if __name__ == "__main__":
    main()
