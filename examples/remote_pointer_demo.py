#!/usr/bin/env python3
"""Why nobody ships naive call-by-reference (the paper's Figure 3 and Table 6).

True call-by-reference across machines means *remote pointers*: the tree
stays on the client and every field access by the server is one network
round trip. This demo runs the same mutation under NRMI copy-restore and
under remote pointers and prints the round-trip and leaked-export counts —
the two effects that make Table 6 an order of magnitude slower and
eventually exhaust memory (reference-counting DGC cannot collect the
distributed cycles the spliced-in server nodes create).

Run: ``python examples/remote_pointer_demo.py``
"""

from repro import nrmi
from repro.bench.mutators import TreeService
from repro.bench.trees import generate_workload
from repro.nrmi import NRMIConfig
from repro.transport.resolver import ChannelResolver
from repro.nrmi.runtime import Endpoint

SIZE = 64
SEED = 42


def run_copy_restore() -> None:
    resolver = ChannelResolver()
    server = Endpoint(name="cr-server", resolver=resolver)
    client = Endpoint(name="cr-client", resolver=resolver)
    try:
        server.bind("trees", TreeService())
        service = client.lookup(server.address, "trees")
        workload = generate_workload("III", SIZE, SEED)
        service.mutate("III", workload.root, SEED)
        channel = client.channel_to(server.address)
        print(f"NRMI copy-restore: {channel.stats.requests} round trips, "
              f"{channel.stats.bytes_sent + channel.stats.bytes_received} bytes, "
              f"0 leaked exports")
    finally:
        client.close()
        server.close()


def run_remote_pointers() -> None:
    resolver = ChannelResolver()
    server = Endpoint(name="rp-server", resolver=resolver,
                      config=NRMIConfig(policy="none"))
    client = Endpoint(name="rp-client", resolver=resolver,
                      config=NRMIConfig(policy="none"))
    try:
        server.bind("trees", TreeService())
        service = client.lookup(server.address, "trees")
        workload = generate_workload("III", SIZE, SEED)

        pointer = client.pointer_to(workload.root)
        service.mutate("III", pointer, SEED)

        to_server = client.channel_to(server.address)
        to_client = server.channel_to(client.address)
        field_trips = to_client.stats.requests
        leaked = client.exports.dgc.live_referenced_count()
        print(f"remote pointers:   {to_server.stats.requests} call round trips "
              f"+ {field_trips} field-access round trips, "
              f"{to_client.stats.bytes_sent + to_client.stats.bytes_received} "
              f"field-op bytes, {leaked} leaked exports on the client")
        print("   every one of those field accesses crossed the network; the "
              "leaked exports\n   are distributed cycles the refcounting DGC "
              "can never reclaim (Table 6)")
    finally:
        client.close()
        server.close()


def main() -> None:
    print(f"mutating a {SIZE}-node aliased tree (scenario III) two ways:\n")
    run_copy_restore()
    run_remote_pointers()


if __name__ == "__main__":
    main()
