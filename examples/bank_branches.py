#!/usr/bin/env python3
"""A small end-to-end system composing the middleware's features.

A head office serves two services:

* ``accounts`` — bound behind an **interface contract** (only the four
  declared operations are remotely callable) and wrapped **Activatable**
  (the ledger materializes on first use);
* branches sync their local ledgers with **one batched round trip** for
  the day's transactions, each call restoring its `Restorable` envelope
  in place.

Run: ``python examples/bank_branches.py``
"""

from repro import nrmi
from repro.core import Remote, Restorable
from repro.rmi.activation import Activatable


class TxEnvelope(Restorable):
    """One transaction travelling by copy-restore: the head office stamps
    the authoritative balance and a confirmation id into it."""

    def __init__(self, account, amount_cents):
        self.account = account
        self.amount_cents = amount_cents
        self.confirmation = None
        self.balance_after = None


class AccountsContract:
    """The remote interface branches program against."""

    def open_account(self, account): ...

    def post(self, envelope): ...

    def balance(self, account): ...

    def statement(self, account): ...


class AccountsService(Remote):
    """The head-office implementation (note: more methods than the
    contract — the extras are not remotely reachable)."""

    def __init__(self):
        print("  [head office] ledger activated")
        self._balances = {}
        self._history = {}
        self._sequence = 0

    def open_account(self, account):
        self._balances.setdefault(account, 0)
        self._history.setdefault(account, [])

    def post(self, envelope):
        self._sequence += 1
        self._balances[envelope.account] += envelope.amount_cents
        self._history[envelope.account].append(envelope.amount_cents)
        envelope.confirmation = f"C{self._sequence:06d}"
        envelope.balance_after = self._balances[envelope.account]

    def balance(self, account):
        return self._balances[account]

    def statement(self, account):
        return list(self._history[account])

    def wipe_everything(self):  # deliberately outside the contract
        self._balances.clear()


def main() -> None:
    slot = Activatable(AccountsService)
    server = nrmi.Endpoint(name="head-office")
    branch = nrmi.Endpoint(name="branch-17")
    try:
        server.bind("accounts", slot, interface=AccountsContract)
        print(f"head office serving (ledger dormant: {not slot.is_active})")

        accounts = branch.lookup(server.address, "accounts")
        accounts.open_account("alice")
        accounts.open_account("bob")
        print(f"ledger active after first call: {slot.is_active}")

        # The day's transactions, synced in ONE round trip.
        envelopes = [
            TxEnvelope("alice", +120_00),
            TxEnvelope("alice", -35_50),
            TxEnvelope("bob", +900_00),
            TxEnvelope("bob", -125_25),
            TxEnvelope("alice", +10_00),
        ]
        channel = branch.channel_to(server.address)
        before = channel.stats.snapshot()["requests"]
        with branch.batch() as batch:
            for envelope in envelopes:
                batch.call(accounts, "post", envelope)
        trips = channel.stats.snapshot()["requests"] - before
        print(f"posted {len(envelopes)} transactions in {trips} round trip(s)")

        for envelope in envelopes:
            print(f"  {envelope.account:5s} {envelope.amount_cents:+8d}  "
                  f"-> {envelope.confirmation}  balance {envelope.balance_after}")
        assert all(envelope.confirmation for envelope in envelopes)
        assert accounts.balance("alice") == 120_00 - 35_50 + 10_00
        assert accounts.statement("bob") == [900_00, -125_25]

        try:
            accounts.wipe_everything()
            raise SystemExit("the contract should have blocked this!")
        except Exception as exc:
            print(f"off-contract call refused: {type(exc).__name__}")

        slot.deactivate()
        print(f"ledger deactivated; next call re-activates: "
              f"{accounts.balance('alice') if _reopen(accounts) else ''}", end="")
        print(" (fresh ledger: balances reset — deactivation dropped state)")
    finally:
        branch.close()
        server.close()


def _reopen(accounts) -> bool:
    accounts.open_account("alice")
    return True


if __name__ == "__main__":
    main()
