#!/usr/bin/env python3
"""Calling-semantics comparison on the paper's running example.

Runs the paper's ``foo`` mutator against the Figure 1 tree under four
semantics and prints what the caller observes:

* local call              → Figure 2 (the gold standard);
* NRMI copy-restore       → Figure 2, indistinguishable from local;
* DCE RPC partial restore → Figure 9 (updates to data that became
  unreachable from the parameter are silently lost);
* RMI call-by-copy        → nothing changes at all.

Run: ``python examples/dce_semantics_demo.py``
"""

from repro import nrmi
from repro.bench.figures import (
    build_figure1,
    expected_figure2,
    expected_figure9,
    expected_unchanged,
    foo,
    render,
    snapshot,
)
from repro.bench.trees import TreeNode
from repro.core import Remote
from repro.nrmi import NRMIConfig


class FooService(Remote):
    def foo(self, tree: TreeNode) -> TreeNode:
        return foo(tree)


def run_remote(policy: str):
    fig = build_figure1()
    with nrmi.serve(FooService(), name="foo", config=NRMIConfig(policy=policy)) as server:
        client = nrmi.Endpoint(config=NRMIConfig(policy=policy))
        try:
            client.lookup(server.address, "foo").foo(fig.t)
        finally:
            client.close()
    return fig


def main() -> None:
    fig = build_figure1()
    foo(fig.t)
    local = snapshot(fig)
    print("local call (Figure 2):")
    print(render(local))
    assert local == expected_figure2()

    nrmi_state = snapshot(run_remote("full"))
    print("\nNRMI copy-restore:")
    print(render(nrmi_state))
    assert nrmi_state == expected_figure2()
    print("  -> identical to the local call, aliases included")

    dce_state = snapshot(run_remote("dce"))
    print("\nDCE RPC (Figure 9):")
    print(render(dce_state))
    assert dce_state == expected_figure9()
    print("  -> alias1/alias2 updates LOST: their nodes became unreachable "
          "from the parameter")

    copy_state = snapshot(run_remote("none"))
    print("\nRMI call-by-copy:")
    print(render(copy_state))
    assert copy_state == expected_unchanged()
    print("  -> the server mutated a private copy; the caller saw nothing")


if __name__ == "__main__":
    main()
