#!/usr/bin/env python3
"""Advanced features: async calls, method-level policies, delta restore.

A reporting dashboard fans out three remote calls concurrently against an
analytics service:

* ``summarize`` is annotated ``@no_restore`` — it reads a large restorable
  dataset without paying for a restore payload;
* ``annotate`` is annotated ``@restore_policy("delta")`` — it touches a
  handful of rows, so only those travel back;
* calls are issued with ``nrmi.async_call`` and awaited as futures.

Run: ``python examples/report_dashboard.py``
"""

import time

from repro import nrmi
from repro.core import Remote, Restorable
from repro.nrmi import async_call, no_restore, restore_policy


class Dataset(Restorable):
    def __init__(self, rows):
        self.rows = rows          # list of dicts
        self.annotations = {}


class Analytics(Remote):
    @no_restore
    def summarize(self, dataset):
        """Read-only aggregate: no restore payload at all."""
        total = sum(row["value"] for row in dataset.rows)
        return {"rows": len(dataset.rows), "total": total}

    @restore_policy("delta")
    def annotate(self, dataset, threshold):
        """Flag outliers in place; only the touched rows travel back."""
        flagged = 0
        for index, row in enumerate(dataset.rows):
            if row["value"] > threshold:
                row["flag"] = "outlier"
                dataset.annotations[index] = row
                flagged += 1
        return flagged

    def slow_quantile(self, dataset, q):
        time.sleep(0.05)  # a genuinely slow computation
        values = sorted(row["value"] for row in dataset.rows)
        return values[int(q * (len(values) - 1))]


def main() -> None:
    rows = [{"id": i, "value": (i * 37) % 100} for i in range(200)]
    dataset = Dataset(rows)
    a_row_alias = dataset.rows[42]  # dashboards alias rows everywhere

    with nrmi.serve(Analytics(), name="analytics") as server:
        client = nrmi.Endpoint(name="dashboard")
        try:
            analytics = client.lookup(server.address, "analytics")

            started = time.perf_counter()
            summary_future = async_call(analytics, "summarize", dataset)
            p50_future = async_call(analytics, "slow_quantile", dataset, 0.5)
            p99_future = async_call(analytics, "slow_quantile", dataset, 0.99)

            summary = summary_future.result()
            p50 = p50_future.result()
            p99 = p99_future.result()
            elapsed = time.perf_counter() - started
            print(f"summary:  {summary}")
            print(f"p50/p99:  {p50} / {p99}")
            print(f"three calls overlapped in {elapsed * 1000:.0f} ms "
                  "(two of them sleep 50 ms each)")

            flagged = analytics.annotate(dataset, threshold=90)
            print(f"\nannotate flagged {flagged} rows via delta restore")
            assert dataset.rows[42].get("flag") is None or a_row_alias["flag"]
            outliers = [r["id"] for r in dataset.rows if "flag" in r]
            print(f"flagged ids visible locally: {outliers[:6]}...")
            assert dataset.annotations  # index restored in place too
            sample_index = next(iter(dataset.annotations))
            assert dataset.annotations[sample_index] is dataset.rows[sample_index], \
                "annotation values alias the very same row objects"
            print("annotations dict aliases the same row objects — "
                  "identity preserved through delta restore")
        finally:
            client.close()


if __name__ == "__main__":
    main()
