#!/usr/bin/env python3
"""The paper's multiple-indexing example (Section 4.3).

A business application indexes the same customer and transaction objects
many ways at once: a recent-transactions list, per-customer histories, a
by-zip index, a by-name index, a daily tax record. All of these are
aliases to the same heap objects. A remote call that updates purchase
records must leave *every* index consistent — which copy-restore does
automatically, because it overwrites the original objects in place.

Run: ``python examples/business_records.py``
"""

from repro import nrmi
from repro.core import Remote, Restorable, Serializable


class Customer(Serializable):
    def __init__(self, name: str, zip_code: str) -> None:
        self.name = name
        self.zip_code = zip_code
        self.balance_cents = 0
        self.transactions = []  # aliases into the ledger

    def __repr__(self) -> str:
        return f"Customer({self.name}, balance={self.balance_cents})"


class Transaction(Serializable):
    def __init__(self, tx_id: int, customer: Customer, amount_cents: int) -> None:
        self.tx_id = tx_id
        self.customer = customer      # alias back to the customer
        self.amount_cents = amount_cents
        self.settled = False
        self.tax_cents = 0


class Ledger(Restorable):
    """The root the client passes by copy-restore: owns every index."""

    def __init__(self) -> None:
        self.recent = []                  # most recent transactions
        self.by_zip: dict = {}            # zip -> [customers]
        self.by_name: dict = {}           # name -> customer
        self.daily_tax = []               # transactions taxed today

    def add_customer(self, customer: Customer) -> None:
        self.by_zip.setdefault(customer.zip_code, []).append(customer)
        self.by_name[customer.name] = customer

    def add_transaction(self, tx: Transaction) -> None:
        self.recent.append(tx)
        tx.customer.transactions.append(tx)


class SettlementService(Remote):
    """The remote back office: settles transactions and computes tax."""

    TAX_PERMILLE = 85

    def settle(self, ledger: Ledger) -> int:
        """Settle every unsettled transaction; returns how many."""
        settled = 0
        for tx in ledger.recent:
            if tx.settled:
                continue
            tx.settled = True
            tx.tax_cents = tx.amount_cents * self.TAX_PERMILLE // 1000
            tx.customer.balance_cents -= tx.amount_cents + tx.tax_cents
            ledger.daily_tax.append(tx)
            settled += 1
        return settled


def main() -> None:
    ledger = Ledger()
    ada = Customer("Ada", "30332")
    bob = Customer("Bob", "30318")
    ledger.add_customer(ada)
    ledger.add_customer(bob)
    ledger.add_transaction(Transaction(1, ada, 1000))
    ledger.add_transaction(Transaction(2, bob, 2500))
    ledger.add_transaction(Transaction(3, ada, 400))

    # Client-side aliases outside the ledger object, as real apps have.
    adas_first_purchase = ada.transactions[0]

    with nrmi.serve(SettlementService(), name="settlement") as server:
        client = nrmi.Endpoint(name="branch-office")
        try:
            back_office = client.lookup(server.address, "settlement")
            count = back_office.settle(ledger)
            print(f"settled {count} transactions remotely")

            # Every index observes the same settled objects:
            assert all(tx.settled for tx in ledger.recent)
            assert ledger.by_name["Ada"] is ada           # identity preserved
            assert ada.balance_cents == -(1000 + 85) - (400 + 34)
            assert bob.balance_cents == -(2500 + 212)
            assert adas_first_purchase.settled            # alias outside ledger
            assert adas_first_purchase.tax_cents == 85
            assert len(ledger.daily_tax) == 3
            assert ledger.daily_tax[0] is ledger.recent[0]  # aliasing intact

            print(f"Ada (via by_name index):   {ledger.by_name['Ada']}")
            print(f"Ada (via by_zip index):    {ledger.by_zip['30332'][0]}")
            print(f"Ada's first purchase tax:  {adas_first_purchase.tax_cents} cents")
            print("every index — recent list, per-customer history, by-zip, "
                  "by-name, daily tax — stayed consistent")
        finally:
            client.close()


if __name__ == "__main__":
    main()
