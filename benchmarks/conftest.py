"""Shared machinery for the pytest-benchmark suite.

Every benchmark regenerates its workload per round (``pedantic`` with a
``setup`` callable): the remote method mutates the tree, so reusing one
tree across rounds would measure ever-larger inputs.

The benchmark clock measures real compute (marshal, execute, restore);
simulated network time is attached to ``benchmark.extra_info`` so the
JSON output carries the same decomposition the paper's tables imply.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import PAPER_NETWORK
from repro.bench.manual_restore import ManualTreeService, manual_call
from repro.bench.mutators import TreeService
from repro.bench.trees import generate_workload
from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint
from repro.transport.resolver import ChannelResolver
from repro.transport.simnet import SimulatedChannel

SIZES = (16, 64, 256, 1024)
SCENARIOS = ("I", "II", "III")
SEED = 2003
ROUNDS = 3


class BenchWorld:
    """A server/client pair with optional simulated network accounting."""

    def __init__(self, config: NRMIConfig, network=PAPER_NETWORK, service=None):
        self.resolver = ChannelResolver()
        self.sim_channels = []
        self.server = Endpoint(name="bench-server", config=config, resolver=self.resolver)
        self.client = Endpoint(name="bench-client", config=config, resolver=self.resolver)
        if network is not None:
            def wrap(inner):
                channel = SimulatedChannel(inner, network)
                self.sim_channels.append(channel)
                return channel

            self.resolver.set_wrapper(self.server.address, wrap)
            self.resolver.set_wrapper(self.client.address, wrap)
        impl = service if service is not None else TreeService()
        self.server.bind("svc", impl)
        self.service = self.client.lookup(self.server.address, "svc")

    def network_ms(self) -> float:
        return sum(c.simulated_seconds for c in self.sim_channels) * 1000.0

    def close(self):
        self.client.close()
        self.server.close()
        self.resolver.close_all()


@pytest.fixture
def bench_world():
    worlds = []

    def factory(config=None, network=PAPER_NETWORK, service=None) -> BenchWorld:
        world = BenchWorld(config or NRMIConfig(), network=network, service=service)
        worlds.append(world)
        return world

    yield factory
    for world in worlds:
        world.close()


def pedantic_remote(benchmark, world, scenario, size, call):
    """Run ``call(workload, seed)`` per round on a fresh workload."""
    counter = iter(range(10_000))

    def setup():
        rep = next(counter)
        return (generate_workload(scenario, size, SEED + rep), SEED + rep), {}

    benchmark.pedantic(call, setup=setup, rounds=ROUNDS, iterations=1, warmup_rounds=1)
    benchmark.extra_info["simulated_network_ms_total"] = round(world.network_ms(), 3)
    snap = world.resolver.resolve(world.server.address).stats.snapshot()
    benchmark.extra_info["bytes_to_server"] = snap["bytes_sent"]
    benchmark.extra_info["bytes_from_server"] = snap["bytes_received"]


def make_rmi_config(profile: str, policy: str = "none") -> NRMIConfig:
    implementation = "portable" if profile == "legacy" else "optimized"
    return NRMIConfig(profile=profile, implementation=implementation, policy=policy)
