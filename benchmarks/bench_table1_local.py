"""Table 1 — Baseline 1: local execution (processing overhead only).

Paper layout: scenarios I/II/III × tree sizes 16..1024, fast and slow
host. The benchmark measures the mutator alone; the slow-host column of
the report harness applies the 750/440 MHz scale factor deterministically.
"""

import pytest

from repro.bench.mutators import mutator_for
from repro.bench.trees import generate_workload

from benchmarks.conftest import ROUNDS, SCENARIOS, SEED, SIZES


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("size", SIZES)
def test_table1_local_execution(benchmark, scenario, size):
    benchmark.group = f"table1/{scenario}"
    mutate = mutator_for(scenario)
    counter = iter(range(10_000))

    def setup():
        rep = next(counter)
        return (generate_workload(scenario, size, SEED + rep).root, SEED + rep), {}

    benchmark.pedantic(mutate, setup=setup, rounds=ROUNDS, iterations=1, warmup_rounds=1)
