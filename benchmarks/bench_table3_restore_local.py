"""Table 3 — Baseline 3: RMI with manual restore, local machine.

The full by-hand copy-restore emulation (return types, isomorphic
traversal, shadow tree) with no network between the endpoints: the paper's
two-JVMs-one-machine configuration.
"""

import pytest

from repro.bench.manual_restore import ManualTreeService, manual_call

from benchmarks.conftest import (
    SCENARIOS,
    SIZES,
    make_rmi_config,
    pedantic_remote,
)


@pytest.mark.parametrize("profile", ["legacy", "modern"])
@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("size", SIZES)
def test_table3_manual_restore_local(benchmark, bench_world, profile, scenario, size):
    benchmark.group = f"table3/{profile}/{scenario}"
    world = bench_world(
        config=make_rmi_config(profile), network=None, service=ManualTreeService()
    )

    def call(workload, seed):
        manual_call(world.service, workload, seed)

    pedantic_remote(benchmark, world, scenario, size, call)
