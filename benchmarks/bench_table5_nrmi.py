"""Table 5 — NRMI call-by-copy-restore.

Three configurations, as in the paper: the portable implementation on the
legacy profile (JDK 1.3), and both the portable and optimized
implementations on the modern profile (JDK 1.4). The call site is one
line; the middleware does all restoration.
"""

import pytest

from repro.nrmi.config import NRMIConfig

from benchmarks.conftest import SCENARIOS, SIZES, pedantic_remote

CONFIGS = {
    "legacy-portable": NRMIConfig(profile="legacy", implementation="portable"),
    "modern-portable": NRMIConfig(profile="modern", implementation="portable"),
    "modern-optimized": NRMIConfig(profile="modern", implementation="optimized"),
}


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("size", SIZES)
def test_table5_nrmi(benchmark, bench_world, config_name, scenario, size):
    benchmark.group = f"table5/{config_name}/{scenario}"
    world = bench_world(config=CONFIGS[config_name])

    def call(workload, seed):
        world.service.mutate(scenario, workload.root, seed)

    pedantic_remote(benchmark, world, scenario, size, call)
