"""Ablations of the design choices DESIGN.md calls out.

* **Ablation A** — linear-map reconstruction (paper optimization 5.2.4 #1):
  reconstruct the map during deserialization vs transmit it explicitly.
* **Ablation B** — delta restore payloads (paper future work 5.2.4 #2):
  full-map restore vs delta restore under sparse and zero mutation.
* **Ablation C** — portable vs optimized field access (paper 5.3.1),
  isolated on the restore-heavy scenario III workload.
"""

import pytest

from repro.bench.harness import PAPER_NETWORK
from repro.nrmi.config import NRMIConfig

from benchmarks.conftest import SIZES, pedantic_remote

ABLATION_SIZES = (64, 256, 1024)


# ------------------------------------------------- Ablation A: linear map


@pytest.mark.parametrize("ship_map", [False, True], ids=["reconstruct", "ship"])
@pytest.mark.parametrize("size", ABLATION_SIZES)
def test_ablation_linear_map_transport(benchmark, bench_world, ship_map, size):
    benchmark.group = "ablation-A/linear-map"
    world = bench_world(config=NRMIConfig(ship_linear_map=ship_map))

    def call(workload, seed):
        world.service.mutate("III", workload.root, seed)

    pedantic_remote(benchmark, world, "III", size, call)


def test_ablation_linear_map_ship_costs_bytes(bench_world):
    """Shipping the map must cost measurable extra request bytes."""
    from repro.bench.trees import generate_workload

    results = {}
    for ship in (False, True):
        world = bench_world(config=NRMIConfig(ship_linear_map=ship))
        workload = generate_workload("III", 256, 77)
        world.service.mutate("III", workload.root, 77)
        snap = world.resolver.resolve(world.server.address).stats.snapshot()
        results[ship] = snap["bytes_sent"]
    assert results[True] > results[False] + 200


# ------------------------------------------------- Ablation B: delta


@pytest.mark.parametrize("policy", ["full", "delta"])
@pytest.mark.parametrize("size", ABLATION_SIZES)
def test_ablation_delta_sparse_mutation(benchmark, bench_world, policy, size):
    benchmark.group = "ablation-B/delta-sparse"
    world = bench_world(config=NRMIConfig(policy=policy))

    def call(workload, seed):
        world.service.mutate_sparse(workload.root, seed, 0.05)

    pedantic_remote(benchmark, world, "II", size, call)


@pytest.mark.parametrize("policy", ["full", "delta"])
def test_ablation_delta_noop_call(benchmark, bench_world, policy):
    """Paper 5.2.4: with delta, passing by copy-restore and changing
    nothing should cost almost the same as passing by copy."""
    benchmark.group = "ablation-B/delta-noop"
    world = bench_world(config=NRMIConfig(policy=policy))

    def call(workload, seed):
        world.service.noop(workload.root)

    pedantic_remote(benchmark, world, "II", 256, call)


def test_ablation_delta_noop_response_bytes(bench_world):
    from repro.bench.trees import generate_workload

    received = {}
    for policy in ("none", "delta", "full"):
        world = bench_world(config=NRMIConfig(policy=policy))
        workload = generate_workload("II", 256, 78)
        world.service.noop(workload.root)
        snap = world.resolver.resolve(world.server.address).stats.snapshot()
        received[policy] = snap["bytes_received"]
    # delta ≈ plain copy; full ships the whole map back.
    assert received["delta"] < received["none"] + 200
    assert received["full"] > received["delta"] * 5


# ------------------------------------------------- Ablation C: accessors


@pytest.mark.parametrize("implementation", ["portable", "optimized"])
@pytest.mark.parametrize("size", ABLATION_SIZES)
def test_ablation_accessors(benchmark, bench_world, implementation, size):
    benchmark.group = "ablation-C/accessors"
    world = bench_world(
        config=NRMIConfig(profile="modern", implementation=implementation)
    )

    def call(workload, seed):
        world.service.mutate("III", workload.root, seed)

    pedantic_remote(benchmark, world, "III", size, call)
