"""Extension workloads: copy-restore beyond binary trees.

Not in the paper's tables — these benches extend the evaluation to the
data-structure families the paper's introduction motivates (linked
lists, hash indexes, general graphs), under the same LAN model.
"""

import pytest

from repro.bench.structures import (
    FAMILIES,
    StructureService,
    generate_structure,
)
from repro.nrmi.config import NRMIConfig

from benchmarks.conftest import ROUNDS, SEED, pedantic_remote

SIZES = (64, 256)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("policy", ["full", "delta"])
def test_structure_families(benchmark, bench_world, family, size, policy):
    benchmark.group = f"structures/{family}/{size}"
    world = bench_world(
        config=NRMIConfig(policy=policy), service=StructureService()
    )
    counter = iter(range(10_000))

    def setup():
        rep = next(counter)
        return (generate_structure(family, size, SEED + rep), SEED + rep), {}

    def call(workload, seed):
        world.service.mutate(family, workload.root, seed)

    benchmark.pedantic(call, setup=setup, rounds=ROUNDS, iterations=1, warmup_rounds=1)
    benchmark.extra_info["simulated_network_ms_total"] = round(world.network_ms(), 3)
