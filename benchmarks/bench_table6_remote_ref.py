"""Table 6 — call-by-reference with remote references (Figure 3).

The client keeps the tree and hands the server a remote pointer; every
field access the mutator performs is a round trip back to the client. The
1024-node configuration is not timed: as in the paper, it fails — here by
exhausting the DGC leak budget that stands in for the 1 GB JVM heap.
"""

import pytest

from repro.bench.harness import REMOTE_REF_LEAK_BUDGET, run_remote_ref
from repro.nrmi.config import NRMIConfig

from benchmarks.conftest import SCENARIOS, pedantic_remote

#: 1024 excluded: it fails by leak (asserted below), as in the paper.
TIMED_SIZES = (16, 64, 256)


def _config(profile: str) -> NRMIConfig:
    implementation = "portable" if profile == "legacy" else "optimized"
    return NRMIConfig(profile=profile, implementation=implementation, policy="none")


@pytest.mark.parametrize("profile", ["legacy", "modern"])
@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("size", TIMED_SIZES)
def test_table6_remote_reference(benchmark, bench_world, profile, scenario, size):
    benchmark.group = f"table6/{profile}/{scenario}"
    world = bench_world(config=_config(profile))

    def call(workload, seed):
        pointer = world.client.pointer_to(workload.root)
        world.service.mutate(scenario, pointer, seed)

    pedantic_remote(benchmark, world, scenario, size, call)


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_table6_1024_fails_by_leak(scenario):
    """The paper's '-' cells: the run cannot complete at 1024 nodes."""
    record = run_remote_ref(scenario, 1024, reps=3, leak_budget=REMOTE_REF_LEAK_BUDGET)
    assert record.failed is not None
    assert record.cell() == "-"
