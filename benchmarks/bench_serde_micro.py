"""Microbenchmarks of the serialization substrate itself.

Isolates the costs every configuration shares: encoding and decoding
object graphs under each profile, and the linear-map bookkeeping. These
are the quantities that explain the table-level differences (legacy vs
modern ≈ JDK 1.3 vs 1.4; copy-restore's extra decode+restore pass).
"""

import pytest

from repro.bench.trees import generate_workload
from repro.core.matching import match_maps
from repro.core.copy_restore import RestoreEngine
from repro.serde.accessors import OPTIMIZED_ACCESSOR, PORTABLE_ACCESSOR
from repro.serde.profiles import LEGACY_PROFILE, MODERN_PROFILE, profile_by_name
from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter

from benchmarks.conftest import ROUNDS

SIZES = (64, 1024)
PROFILES = ("legacy", "modern")


def encode(root, profile):
    writer = ObjectWriter(profile=profile)
    writer.write_root(root)
    return writer.getvalue(), writer.linear_map


@pytest.mark.parametrize("profile_name", PROFILES)
@pytest.mark.parametrize("size", SIZES)
def test_encode_tree(benchmark, profile_name, size):
    benchmark.group = f"serde/encode/{size}"
    profile = profile_by_name(profile_name)
    root = generate_workload("III", size, 7).root

    benchmark.pedantic(
        lambda: encode(root, profile), rounds=ROUNDS, iterations=3, warmup_rounds=1
    )


@pytest.mark.parametrize("profile_name", PROFILES)
@pytest.mark.parametrize("size", SIZES)
def test_decode_tree(benchmark, profile_name, size):
    benchmark.group = f"serde/decode/{size}"
    profile = profile_by_name(profile_name)
    payload, _map = encode(generate_workload("III", size, 7).root, profile)

    def decode():
        reader = ObjectReader(payload, profile=profile)
        reader.read_root()
        return reader.linear_map

    benchmark.pedantic(decode, rounds=ROUNDS, iterations=3, warmup_rounds=1)


@pytest.mark.parametrize("accessor_name", ["portable", "optimized"])
def test_restore_engine_only(benchmark, accessor_name):
    """The restore pass in isolation: match + overwrite + convert."""
    benchmark.group = "serde/restore-engine"
    accessor = PORTABLE_ACCESSOR if accessor_name == "portable" else OPTIMIZED_ACCESSOR
    engine = RestoreEngine(accessor=accessor)

    def run():
        payload, original_map = encode(
            generate_workload("III", 256, 11).root, MODERN_PROFILE
        )
        reader = ObjectReader(payload)
        reader.read_root()
        modified_map = reader.linear_map
        match = match_maps(list(original_map), list(modified_map))
        engine.restore(match, None)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=1)


def test_modern_profile_encodes_fewer_bytes():
    root = generate_workload("III", 256, 13).root
    legacy_payload, _ = encode(root, LEGACY_PROFILE)
    modern_payload, _ = encode(root, MODERN_PROFILE)
    assert len(modern_payload) < len(legacy_payload) * 0.7
