"""Table 4 — RMI with manual restore over the LAN (two-way traffic).

Same emulation as Table 3, but every byte crosses the simulated 100 Mbps
network in both directions.
"""

import pytest

from repro.bench.manual_restore import ManualTreeService, manual_call

from benchmarks.conftest import (
    SCENARIOS,
    SIZES,
    make_rmi_config,
    pedantic_remote,
)


@pytest.mark.parametrize("profile", ["legacy", "modern"])
@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("size", SIZES)
def test_table4_manual_restore_network(benchmark, bench_world, profile, scenario, size):
    benchmark.group = f"table4/{profile}/{scenario}"
    world = bench_world(config=make_rmi_config(profile), service=ManualTreeService())

    def call(workload, seed):
        manual_call(world.service, workload, seed)

    pedantic_remote(benchmark, world, scenario, size, call)
