"""Ablation D — call batching: N solo round trips vs one batched frame.

On the paper's LAN model every exchange pays per-message latency; batching
amortizes it. This bench issues N small copy-restore calls both ways and
reports the simulated network time via ``extra_info`` (the compute time
is nearly identical by construction).
"""

import pytest

from repro.bench.trees import TreeNode
from repro.core.markers import Remote
from repro.nrmi.config import NRMIConfig

from benchmarks.conftest import ROUNDS, pedantic_remote

CALL_COUNTS = (4, 16, 64)


class TinyService(Remote):
    def bump(self, node):
        node.data += 1
        return node.data


@pytest.fixture
def tiny_world(bench_world):
    return bench_world(config=NRMIConfig(), service=TinyService())


@pytest.mark.parametrize("calls", CALL_COUNTS)
def test_batching_solo_calls(benchmark, tiny_world, calls):
    benchmark.group = f"ablation-D/batching/{calls}"
    world = tiny_world

    def run():
        nodes = [TreeNode(i) for i in range(calls)]
        for node in nodes:
            world.service.bump(node)
        return nodes

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=1)
    benchmark.extra_info["simulated_network_ms_total"] = round(
        world.network_ms(), 3
    )


@pytest.mark.parametrize("calls", CALL_COUNTS)
def test_batching_batched_calls(benchmark, tiny_world, calls):
    benchmark.group = f"ablation-D/batching/{calls}"
    world = tiny_world

    def run():
        nodes = [TreeNode(i) for i in range(calls)]
        with world.client.batch() as batch:
            handles = [batch.call(world.service, "bump", node) for node in nodes]
        assert [handle.result() for handle in handles] == [
            node.data for node in nodes
        ]
        return nodes

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=1)
    benchmark.extra_info["simulated_network_ms_total"] = round(
        world.network_ms(), 3
    )


def test_batching_saves_network_time(bench_world):
    """One frame of 32 calls must beat 32 frames on simulated wire time."""
    solo_world = bench_world(config=NRMIConfig(), service=TinyService())
    nodes = [TreeNode(i) for i in range(32)]
    for node in nodes:
        solo_world.service.bump(node)
    solo_network = solo_world.network_ms()

    batch_world = bench_world(config=NRMIConfig(), service=TinyService())
    nodes = [TreeNode(i) for i in range(32)]
    with batch_world.client.batch() as batch:
        for node in nodes:
            batch.call(batch_world.service, "bump", node)
    batch_network = batch_world.network_ms()
    assert batch_network < solo_network / 3
