"""Table 2 — Baseline 2: RMI call-by-copy, one-way traffic (no restore).

The tree ships to the server, the server mutates its private copy, and
only the (scalar) return value comes back — the paper's "without caring to
restore the changes to the client" configuration.
"""

import pytest

from benchmarks.conftest import (
    SCENARIOS,
    SIZES,
    make_rmi_config,
    pedantic_remote,
)


@pytest.mark.parametrize("profile", ["legacy", "modern"])
@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("size", SIZES)
def test_table2_oneway(benchmark, bench_world, profile, scenario, size):
    benchmark.group = f"table2/{profile}/{scenario}"
    world = bench_world(config=make_rmi_config(profile))

    def call(workload, seed):
        world.service.mutate(scenario, workload.root, seed)

    pedantic_remote(benchmark, world, scenario, size, call)
