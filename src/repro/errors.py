"""Exception hierarchy for the NRMI reproduction.

The hierarchy mirrors the split in the paper's Java implementation:
serialization failures, transport/remote failures (``java.rmi.RemoteException``
analogues), and middleware-protocol failures are distinct, so callers can
catch exactly the layer they care about.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SerializationError(ReproError):
    """An object graph could not be serialized or deserialized."""


class NotSerializableError(SerializationError):
    """An object of an unregistered / unsupported type was encountered.

    The Java analogue is ``java.io.NotSerializableException``: reachable
    objects must be serializable for both call-by-copy and
    call-by-copy-restore (``Restorable extends Serializable``).
    """

    def __init__(self, obj: object, path: str = "") -> None:
        self.type_name = type(obj).__name__
        self.path = path
        where = f" at {path}" if path else ""
        super().__init__(
            f"object of type {self.type_name!r}{where} is not serializable; "
            "register the class or mark it Serializable/Restorable"
        )


class WireFormatError(SerializationError):
    """The byte stream is corrupt or written by an incompatible version."""


class ClassNotRegisteredError(SerializationError):
    """A wire-level class descriptor does not match any registered class."""

    def __init__(self, qualified_name: str) -> None:
        self.qualified_name = qualified_name
        super().__init__(
            f"class {qualified_name!r} is not registered with the receiver; "
            "both endpoints must register serializable classes"
        )


class RemoteError(ReproError):
    """Base for failures of remote invocation (``RemoteException``)."""


class TransportError(RemoteError):
    """The underlying channel failed (connection refused, closed, framing)."""


class RetryableError(TransportError):
    """A transient transport failure: the request may not have executed.

    Retrying is *safe only* with a call ID attached (the server's reply
    cache turns the retry into at-most-once); the retry layer in
    :mod:`repro.transport.reliability` is the one place allowed to resend.
    Connection resets, dropped frames, and injected faults are retryable;
    deliberate closes and policy failures are not.
    """


class ServerBusyError(RetryableError):
    """The server shed the request before executing it (overload).

    The staged server answers with a fast BUSY frame when its bounded job
    queue is full or it is draining for shutdown — the request body was
    never deserialized and the method never ran, so retrying is always
    safe. Subclassing :class:`RetryableError` puts BUSY on the normal
    retry/backoff path and counts it against the per-address circuit
    breaker, so persistent overload eventually fails fast instead of
    hammering the queue.
    """

    #: Wire reason codes carried in the BUSY frame's second byte.
    QUEUE_FULL = 0
    DRAINING = 1

    _REASONS = {QUEUE_FULL: "job queue full", DRAINING: "draining for shutdown"}

    def __init__(self, reason: int = QUEUE_FULL) -> None:
        self.reason = reason
        detail = self._REASONS.get(reason, f"reason {reason}")
        super().__init__(f"server busy ({detail}); the request did not execute")


class DeadlineExceededError(TransportError):
    """The per-call deadline elapsed before a reply arrived.

    Fatal, never retried: the budget is for the whole call, attempts
    included. The caller's heap is untouched (restore is reply-driven).
    """


class CircuitOpenError(TransportError):
    """The per-address circuit breaker is open; the call failed fast.

    Fatal for this call: the breaker has seen enough consecutive
    transport failures that probing the address again immediately would
    only add load. It transitions to half-open after its reset timeout.
    """

    def __init__(self, address: str, retry_after: float) -> None:
        self.address = address
        self.retry_after = retry_after
        super().__init__(
            f"circuit breaker open for {address}; "
            f"next probe allowed in {retry_after:.3f}s"
        )


def is_retryable(exc: BaseException) -> bool:
    """True when the failure is transient and a retry (with a call ID)
    could succeed. Deadline and breaker failures are terminal."""
    return isinstance(exc, RetryableError)


class MarshalError(RemoteError):
    """Arguments or results could not be marshalled for a remote call."""


class UnmarshalError(RemoteError):
    """A reply could not be unmarshalled on the receiving side."""


class NoSuchObjectError(RemoteError):
    """A remote reference points to an object no longer exported."""

    def __init__(self, object_id: int) -> None:
        self.object_id = object_id
        super().__init__(f"no exported object with id {object_id}")


class NotBoundError(RemoteError):
    """Registry lookup for a name that has no binding."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"name {name!r} is not bound in the registry")


class AlreadyBoundError(RemoteError):
    """Registry ``bind`` for a name that already has a binding."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"name {name!r} is already bound in the registry")


class RemoteInvocationError(RemoteError):
    """The remote method itself raised; carries the remote traceback text."""

    def __init__(self, exc_type_name: str, message: str, remote_traceback: str = "") -> None:
        self.exc_type_name = exc_type_name
        self.remote_message = message
        self.remote_traceback = remote_traceback
        super().__init__(f"remote method raised {exc_type_name}: {message}")


class RestoreError(ReproError):
    """The copy-restore phase failed (maps mismatched, bad payload)."""


class LinearMapMismatchError(RestoreError):
    """Original and returned linear maps cannot be matched up (step 4)."""

    def __init__(self, expected: int, received: int) -> None:
        self.expected = expected
        self.received = received
        super().__init__(
            f"linear map mismatch: caller recorded {expected} objects, "
            f"restore payload carries {received}"
        )


class DistributedLeakError(RemoteError):
    """The distributed GC exceeded its leak budget (cyclic remote garbage).

    Reproduces the paper's Table 6 observation: reference-counting DGC
    cannot reclaim distributed cycles, so the call-by-reference benchmark
    exhausts memory at 1024-node trees.
    """

    def __init__(self, leaked: int, budget: int) -> None:
        self.leaked = leaked
        self.budget = budget
        super().__init__(
            f"distributed cycle leak: {leaked} unreclaimable exported objects "
            f"exceed budget {budget} (reference-counting DGC cannot collect "
            "distributed cycles)"
        )
