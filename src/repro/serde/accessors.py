"""Field accessors: how the middleware reads and writes object state.

The paper's NRMI ships two implementations (Section 5.3.1):

* a **portable** one built on Java reflection — general and slow, with a
  security check paid on every field access;
* an **optimized** one built on the JVM's ``Unsafe`` direct-memory access —
  fast, but tied to JDK 1.4 internals.

The reproduction mirrors the split with two accessors sharing one interface:

* :class:`PortableAccessor` re-derives the field list on every call and
  routes each access through a per-field validation step (the analogue of
  reflection's security check);
* :class:`OptimizedAccessor` caches a per-class *field plan* (slot layout,
  instance factory) and reads ``__dict__`` in bulk.

Both handle ``__dict__`` classes, ``__slots__`` classes, and mixed
hierarchies. Instances are created without running ``__init__`` — the state
that matters is about to be overwritten anyway, and constructors of user
classes may have side effects middleware must not trigger.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import SerializationError

FieldState = List[Tuple[str, Any]]


def _collect_slot_names(cls: type) -> List[str]:
    """All ``__slots__`` names along the MRO, deduplicated in MRO order."""
    names: List[str] = []
    seen = set()
    for klass in reversed(cls.__mro__):
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name in ("__dict__", "__weakref__") or name in seen:
                continue
            seen.add(name)
            names.append(name)
    return names


class FieldAccessor:
    """Interface for reading/writing instance state and making instances."""

    name = "abstract"

    def get_state(self, obj: Any) -> FieldState:
        """Return the instance's fields as an ordered (name, value) list."""
        raise NotImplementedError

    def set_state(self, obj: Any, state: FieldState) -> None:
        """Overwrite the instance's fields from an ordered (name, value) list."""
        raise NotImplementedError

    def set_field(self, obj: Any, name: str, value: Any) -> None:
        raise NotImplementedError

    def new_instance(self, cls: type) -> Any:
        """Allocate an instance of *cls* without running ``__init__``."""
        raise NotImplementedError


class PortableAccessor(FieldAccessor):
    """Reflection-style access: no caching, per-access validation.

    Every ``get_state`` walks the MRO afresh to discover slots, and every
    field read/write passes through :meth:`_check_access` — the stand-in for
    the per-field security check Java reflection imposes. This is the
    truthful cost model for the paper's "portable" implementation.
    """

    name = "portable"

    def _check_access(self, obj: Any, field_name: str) -> None:
        # Deliberately thorough: the legacy stack validates each access.
        if not isinstance(field_name, str) or not field_name:
            raise SerializationError(f"invalid field name {field_name!r}")
        if field_name.startswith("__") and field_name.endswith("__"):
            raise SerializationError(
                f"refusing to serialize dunder field {field_name!r} on "
                f"{type(obj).__name__}"
            )

    def get_state(self, obj: Any) -> FieldState:
        state: FieldState = []
        instance_dict = getattr(obj, "__dict__", None)
        if instance_dict is not None:
            for field_name in instance_dict:
                self._check_access(obj, field_name)
                state.append((field_name, getattr(obj, field_name)))
        for field_name in _collect_slot_names(type(obj)):
            self._check_access(obj, field_name)
            try:
                state.append((field_name, getattr(obj, field_name)))
            except AttributeError:
                continue  # unset slot: absent from the wire, like Java transient
        return state

    def set_state(self, obj: Any, state: FieldState) -> None:
        for field_name, value in state:
            self._check_access(obj, field_name)
            object.__setattr__(obj, field_name, value)

    def set_field(self, obj: Any, name: str, value: Any) -> None:
        self._check_access(obj, name)
        object.__setattr__(obj, name, value)

    def new_instance(self, cls: type) -> Any:
        return object.__new__(cls)


class _ClassPlan:
    """Cached per-class layout used by the optimized accessor."""

    __slots__ = ("cls", "slot_names", "has_dict", "factory")

    def __init__(self, cls: type) -> None:
        self.cls = cls
        self.slot_names: Tuple[str, ...] = tuple(_collect_slot_names(cls))
        self.has_dict = hasattr(cls, "__dict__") or not self.slot_names
        factory: Callable[[], Any] = object.__new__  # bound below
        self.factory = lambda: factory(cls)


class OptimizedAccessor(FieldAccessor):
    """Direct access with cached per-class plans (the "Unsafe" analogue)."""

    name = "optimized"

    def __init__(self) -> None:
        self._plans: Dict[type, _ClassPlan] = {}
        self._lock = threading.Lock()

    def _plan_for(self, cls: type) -> _ClassPlan:
        plan = self._plans.get(cls)
        if plan is None:
            with self._lock:
                plan = self._plans.get(cls)
                if plan is None:
                    plan = _ClassPlan(cls)
                    self._plans[cls] = plan
        return plan

    def get_state(self, obj: Any) -> FieldState:
        plan = self._plan_for(type(obj))
        instance_dict = obj.__dict__ if plan.has_dict and hasattr(obj, "__dict__") else None
        if instance_dict is not None and not plan.slot_names:
            return list(instance_dict.items())
        state: FieldState = list(instance_dict.items()) if instance_dict else []
        for field_name in plan.slot_names:
            try:
                state.append((field_name, getattr(obj, field_name)))
            except AttributeError:
                continue
        return state

    def set_state(self, obj: Any, state: FieldState) -> None:
        plan = self._plan_for(type(obj))
        if plan.has_dict and not plan.slot_names and hasattr(obj, "__dict__"):
            # Bulk path: replace the instance dict wholesale.
            obj.__dict__.clear()
            obj.__dict__.update(state)
            return
        for field_name, value in state:
            object.__setattr__(obj, field_name, value)

    def set_field(self, obj: Any, name: str, value: Any) -> None:
        object.__setattr__(obj, name, value)

    def new_instance(self, cls: type) -> Any:
        return self._plan_for(cls).factory()


#: Shared default instances. The portable accessor is stateless; the
#: optimized accessor's cache is monotonic, so sharing is safe.
PORTABLE_ACCESSOR = PortableAccessor()
OPTIMIZED_ACCESSOR = OptimizedAccessor()


def accessor_by_name(name: str) -> FieldAccessor:
    if name == "portable":
        return PORTABLE_ACCESSOR
    if name == "optimized":
        return OPTIMIZED_ACCESSOR
    raise ValueError(f"unknown accessor {name!r}; expected 'portable' or 'optimized'")
