"""Class and externalizer registry.

Decoding instantiates only classes that were explicitly registered (or that
inherit one of the marker bases in :mod:`repro.core.markers`, which register
their subclasses automatically). This is the safety line that ``pickle``
lacks: a byte stream can never cause an import or run arbitrary code.

Externalizers let higher layers hijack serialization of special objects —
the RMI layer registers one so exported remote objects travel as remote
references (by-reference semantics), exactly as ``UnicastRemoteObject``
instances do in Java RMI.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, FrozenSet, Optional, Tuple

from repro.errors import ClassNotRegisteredError, SerializationError


def qualified_name(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


class Externalizer:
    """Hook that replaces objects with opaque payloads on the wire.

    ``replace(obj)`` returns an encoded payload for objects the hook claims,
    or ``None`` to decline. ``resolve(payload)`` reverses it on the decoding
    side. Both sides must register the hook under the same name.

    ``type_based`` declares that ``claims`` is a pure function of
    ``type(obj)`` (true for every built-in hook: they are all ``isinstance``
    or exact-type checks). The modern profile's encoder caches claim
    decisions per class — and enables compiled per-class plans — only when
    every externalizer in play is type-based. The default is ``False``
    (instance-dependent claims stay correct); hooks whose claim only looks
    at the type should pass ``type_based=True`` to keep the fast path on.
    """

    def __init__(
        self,
        name: str,
        claims: Callable[[Any], bool],
        replace: Callable[[Any], bytes],
        resolve: Callable[[bytes], Any],
        type_based: bool = False,
    ) -> None:
        self.name = name
        self.claims = claims
        self.replace = replace
        self.resolve = resolve
        self.type_based = type_based


class ClassRegistry:
    """Thread-safe registry of serializable classes and externalizers."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._by_name: Dict[str, type] = {}
        self._names: Dict[type, str] = {}
        self._externalizers: Dict[str, Externalizer] = {}
        self._ext_order: Tuple[Externalizer, ...] = ()
        # Compiled serde plans (repro.serde.plans), keyed by class. Each
        # registry owns its caches so isolated registries never share plans.
        self._encode_plans: Dict[type, Any] = {}
        self._decode_plans: Dict[type, Any] = {}
        # exec-generated plans (repro.serde.codegen), cached separately so
        # profiles with codegen off keep hitting the interpreted closures.
        self._codegen_encode_plans: Dict[type, Any] = {}
        self._codegen_decode_plans: Dict[type, Any] = {}

    def register(self, cls: type, name: Optional[str] = None) -> type:
        """Register *cls* for serialization; returns *cls* (decorator use)."""
        if not isinstance(cls, type):
            raise SerializationError(f"can only register classes, got {cls!r}")
        reg_name = name or qualified_name(cls)
        with self._lock:
            existing = self._by_name.get(reg_name)
            if existing is not None and existing is not cls:
                raise SerializationError(
                    f"name {reg_name!r} already registered for a different class"
                )
            self._by_name[reg_name] = cls
            self._names[cls] = reg_name
        return cls

    def is_registered(self, cls: type) -> bool:
        with self._lock:
            return cls in self._names

    def name_of(self, cls: type) -> str:
        with self._lock:
            try:
                return self._names[cls]
            except KeyError:
                raise ClassNotRegisteredError(qualified_name(cls)) from None

    def class_for(self, name: str) -> type:
        with self._lock:
            try:
                return self._by_name[name]
            except KeyError:
                raise ClassNotRegisteredError(name) from None

    def register_externalizer(self, ext: Externalizer) -> None:
        with self._lock:
            self._externalizers[ext.name] = ext
            self._ext_order = tuple(self._externalizers.values())

    def externalizer_for(self, obj: Any) -> Optional[Externalizer]:
        for ext in self._ext_order:
            if ext.claims(obj):
                return ext
        return None

    def externalizers(self) -> Tuple[Externalizer, ...]:
        """Snapshot of registered externalizers, in registration order."""
        return self._ext_order

    def externalizer_named(self, name: str) -> Externalizer:
        with self._lock:
            try:
                return self._externalizers[name]
            except KeyError:
                raise SerializationError(
                    f"no externalizer named {name!r} registered on this side"
                ) from None

    def snapshot_classes(self) -> Dict[str, type]:
        with self._lock:
            return dict(self._by_name)

    def registered_names(self) -> FrozenSet[str]:
        """The wire names currently registered (introspection for tooling).

        The static analyzer and its tests use this to cross-check that
        marker subclasses seen in source really do auto-register.
        """
        with self._lock:
            return frozenset(self._by_name)

    # -------------------------------------------------- compiled serde plans

    def encode_plan_for(self, cls: type):
        """The compiled encode plan for *cls*, (re)compiled when the class's
        declared ``__nrmi_version__`` no longer matches the cached plan."""
        from repro.serde.hooks import class_version
        from repro.serde.plans import compile_encode_plan

        plan = self._encode_plans.get(cls)
        if plan is not None and plan.version == class_version(cls):
            return plan
        with self._lock:
            plan = self._encode_plans.get(cls)
            if plan is None or plan.version != class_version(cls):
                plan = compile_encode_plan(cls, self.name_of(cls))
                self._encode_plans[cls] = plan
            return plan

    def decode_plan_for(self, cls: type):
        """The cached decode plan for *cls*, version-invalidated like
        :meth:`encode_plan_for`."""
        from repro.serde.hooks import class_version
        from repro.serde.plans import compile_decode_plan

        plan = self._decode_plans.get(cls)
        if plan is not None and plan.version == class_version(cls):
            return plan
        with self._lock:
            plan = self._decode_plans.get(cls)
            if plan is None or plan.version != class_version(cls):
                plan = compile_decode_plan(cls)
                self._decode_plans[cls] = plan
            return plan

    def codegen_encode_plan_for(self, cls: type):
        """The exec-generated encode plan for *cls*.

        Invalidated when the class's ``__nrmi_version__`` moves (like the
        interpreted plans) *or* the process-wide schema epoch is bumped —
        generated source bakes descriptor blobs in.
        """
        from repro.serde.codegen import compile_codegen_encode_plan, schema_epoch
        from repro.serde.hooks import class_version

        plan = self._codegen_encode_plans.get(cls)
        if (
            plan is not None
            and plan.version == class_version(cls)
            and plan.epoch == schema_epoch()
        ):
            return plan
        with self._lock:
            plan = self._codegen_encode_plans.get(cls)
            if (
                plan is None
                or plan.version != class_version(cls)
                or plan.epoch != schema_epoch()
            ):
                plan = compile_codegen_encode_plan(cls, self.name_of(cls))
                self._codegen_encode_plans[cls] = plan
            return plan

    def codegen_decode_plan_for(self, cls: type):
        """The exec-generated decode plan for *cls*, invalidated like
        :meth:`codegen_encode_plan_for`."""
        from repro.serde.codegen import compile_codegen_decode_plan, schema_epoch
        from repro.serde.hooks import class_version

        plan = self._codegen_decode_plans.get(cls)
        if (
            plan is not None
            and plan.version == class_version(cls)
            and plan.epoch == schema_epoch()
        ):
            return plan
        with self._lock:
            plan = self._codegen_decode_plans.get(cls)
            if (
                plan is None
                or plan.version != class_version(cls)
                or plan.epoch != schema_epoch()
            ):
                plan = compile_codegen_decode_plan(cls, self.name_of(cls))
                self._codegen_decode_plans[cls] = plan
            return plan

    def invalidate_plans(self, cls: Optional[type] = None) -> None:
        """Drop compiled plans for *cls* (or all classes when omitted)."""
        with self._lock:
            if cls is None:
                self._encode_plans.clear()
                self._decode_plans.clear()
                self._codegen_encode_plans.clear()
                self._codegen_decode_plans.clear()
            else:
                self._encode_plans.pop(cls, None)
                self._decode_plans.pop(cls, None)
                self._codegen_encode_plans.pop(cls, None)
                self._codegen_decode_plans.pop(cls, None)


#: Process-wide default registry. Tests that need isolation construct their
#: own ClassRegistry and pass it to the writer/reader explicitly.
global_registry = ClassRegistry()


def register_class(cls: type, name: Optional[str] = None) -> type:
    """Register a class with the process-wide registry (decorator-friendly).

    Example::

        @register_class
        class TreeNode:
            ...
    """
    return global_registry.register(cls, name)


def register_externalizer(ext: Externalizer) -> None:
    global_registry.register_externalizer(ext)
