"""exec-specialized per-class encoders and decoders (PR 6 fast path).

:mod:`repro.serde.plans` already compiles a per-class *closure* for the
modern profile, but the closure still interprets one generic field loop
per object and bounces every nested object through the writer's work
stack (encode) or the reader's frame machine (decode).  This module goes
one step further: for each registered class it ``exec``-builds a source
function specialized to the class's layout —

* field storage is baked in (plain ``__dict__`` stream, unrolled
  ``__slots__`` reads, or the generic mixed path);
* scalar fields write/read straight against the buffer's ``bytearray`` /
  ``memoryview`` with literal tag bytes;
* runs of float-valued slots collapse into a single
  ``struct.Struct(...).pack`` / ``unpack_from`` call;
* *nested objects of the same class are unrolled into an iterative
  loop* (a lightweight suspension list, no Python call per node, any
  depth), and nested plan-backed objects of *other* classes recurse
  directly (bounded by :data:`MAX_CODEGEN_DEPTH`), so a tree of objects
  serializes with no per-node stack/frame churn at all;
* any shape the specialization does not cover **bails out** to the
  interpreted machinery mid-object, preserving pre-order byte-for-byte:
  generated encode splices its remaining work under whatever the callee
  left on the writer's work stack, generated decode parks a fully-formed
  :class:`repro.serde.reader._Frame` for the frame machine to finish.

The interpreted plan path remains both the fallback (any compile error
degrades to it, counted on ``serde.codegen.fallbacks``) and the
correctness oracle: generated and interpreted encoding are byte-identical
and property-tested against each other.

Compiled functions are cached per ``(class, registry)`` and invalidated
when the class's ``__nrmi_version__`` moves *or* the process-wide schema
epoch (:func:`repro.serde.schema.schema_epoch`) is bumped — a reset of
the global descriptor table means baked descriptor blobs must be rebuilt.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.errors import WireFormatError
from repro.serde.hooks import (
    apply_resolve,
    apply_upgrade,
    class_version,
    has_resolve,
    has_upgrade,
    transient_fields,
)
from repro.serde.plans import (
    DecodePlan,
    EncodePlan,
    _collect_slot_names,
    _uvarint_bytes,
    compile_encode_plan,
)
from repro.util.metrics import MetricsRegistry

#: Sentinel returned by a generated decode function when it has parked a
#: frame for the reader's machine instead of finishing the object itself.
BAIL = object()

#: Generated functions recurse into nested plan-backed objects up to this
#: depth; deeper graphs bail to the iterative machinery, which is correct
#: at any depth. Well under CPython's default recursion limit even with
#: the dispatcher's own frames on the C stack.
MAX_CODEGEN_DEPTH = 64

#: Module-wide codegen telemetry: ``serde.codegen.compiled`` counts
#: successfully generated functions, ``serde.codegen.fallbacks`` counts
#: classes that degraded to the interpreted plan path.
codegen_metrics = MetricsRegistry()

_F64 = struct.Struct(">d")

# Wire tag bytes interpolated into generated source as literals. Two
# mirror sets on purpose: ``_TAG_*`` (writer-side, as in serde/plans.py)
# and ``_T_*`` (reader-side, as in serde/reader.py) — both are
# cross-checked against serde/tags.py by the NRMI032 lint rule.
_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_INT_BIG = 0x04
_TAG_FLOAT = 0x05
_TAG_STR = 0x07
_TAG_BYTES = 0x08
_TAG_REF = 0x09
_TAG_OBJECT = 0x10

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x05
_T_STR = 0x07
_T_BYTES = 0x08
_T_REF = 0x09
_T_OBJECT = 0x10

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def schema_epoch() -> int:
    """The process-wide schema-table epoch codegen plans are stamped with."""
    from repro.serde.schema import global_schema_table

    return global_schema_table.epoch


class CodegenEncodePlan(EncodePlan):
    """An :class:`EncodePlan` whose ``encode`` is a generated function.

    Generated encoders return ``True`` when the object was written
    completely and ``False`` when they handed remaining work to the
    writer's stack; the writer's hot loop ignores the return value, only
    recursive generated callers look at it.
    """

    __slots__ = ("epoch", "encode_inner")

    def __init__(
        self, cls: type, version: int, encode, epoch: int, encode_inner
    ) -> None:
        super().__init__(cls, version, encode)
        self.epoch = epoch
        #: ``encode_inner(writer, obj, stack, depth, ctx)`` — the recursion
        #: target generated parents call so the hot-internals tuple is
        #: unpacked once per root instead of once per object.
        self.encode_inner = encode_inner


class CodegenDecodePlan(DecodePlan):
    """A :class:`DecodePlan` carrying an optional generated decoder.

    ``decode_fn(reader, stack, wire_version)`` returns the decoded object
    or :data:`BAIL`; ``None`` (compile failure) routes the class through
    the interpreted frame machine using the inherited plan facts.
    """

    __slots__ = ("epoch", "decode_inner")

    def __init__(self, cls: type, version: int, epoch: int) -> None:
        super().__init__(cls, version)
        self.epoch = epoch
        #: ``decode_inner(reader, stack, wire_version, depth, ctx, pos)``
        #: returning ``(value, pos)`` — the recursion target generated
        #: parents call, threading the buffer cursor as a plain local.
        self.decode_inner = None


def _instances_have_dict(cls: type) -> bool:
    return any("__slots__" not in klass.__dict__ for klass in cls.__mro__[:-1])


def _emit_uvarint_src(var: str, indent: int) -> str:
    p = " " * indent
    return (
        f"{p}while {var} > 0x7F:\n"
        f"{p}    buf.append(({var} & 0x7F) | 0x80)\n"
        f"{p}    {var} >>= 7\n"
        f"{p}buf.append({var})\n"
    )


def _read_uvarint_src(target: str, indent: int) -> str:
    p = " " * indent
    return (
        f"{p}byte = mv[pos]\n"
        f"{p}pos += 1\n"
        f"{p}if byte & 0x80:\n"
        f"{p}    {target} = byte & 0x7F\n"
        f"{p}    shift = 7\n"
        f"{p}    while True:\n"
        f"{p}        byte = mv[pos]\n"
        f"{p}        pos += 1\n"
        f"{p}        {target} |= (byte & 0x7F) << shift\n"
        f"{p}        if not byte & 0x80:\n"
        f"{p}            break\n"
        f"{p}        shift += 7\n"
        f"{p}        if shift > 70:\n"
        f"{p}            buf._pos = pos\n"
        f"{p}            raise _WireFormatError(\n"
        f'{p}                "uvarint too long (corrupt stream)"\n'
        f"{p}            )\n"
        f"{p}else:\n"
        f"{p}    {target} = byte\n"
    )


# --------------------------------------------------------------- encode


def _encode_field_body(indent: int, materialize: str) -> str:
    """One field's name + value emission, mirroring the plan closure.

    *materialize* is source that (re)builds ``state`` as an indexable
    ``(name, value)`` list before a bail hands leftover fields to the
    writer's work stack — empty when ``state`` already exists.
    """
    p = " " * indent
    mat = ""
    if materialize:
        mat = f"{p}        {materialize}\n"
    mat_deep = ""
    if materialize:
        mat_deep = f"{p}                {materialize}\n"
    return (
        f"{p}name_id = name_ids.get(field_name)\n"
        f"{p}if name_id is None:\n"
        f"{p}    name_ids[field_name] = len(name_ids) + 1\n"
        f"{p}    blob = _name_blobs.get(field_name)\n"
        f"{p}    if blob is None:\n"
        f'{p}        encoded = field_name.encode("utf-8")\n'
        f'{p}        blob = b"\\x00" + _uvarint_bytes(len(encoded)) + encoded\n'
        f"{p}        _name_blobs[field_name] = blob\n"
        f"{p}    buf += blob\n"
        f"{p}else:\n"
        + _emit_uvarint_src("name_id", indent + 4)
        + f"{p}value_cls = value.__class__\n"
        f"{p}if value is None:\n"
        f"{p}    buf.append({_TAG_NONE})\n"
        f"{p}elif value_cls is int:\n"
        f"{p}    if {_INT64_MIN} <= value <= {_INT64_MAX}:\n"
        f"{p}        buf.append({_TAG_INT})\n"
        f"{p}        encoded = (value << 1) ^ (value >> 63)\n"
        + _emit_uvarint_src("encoded", indent + 8)
        + f"{p}    else:\n"
        f"{p}        buf.append({_TAG_INT_BIG})\n"
        f"{p}        magnitude = -value if value < 0 else value\n"
        f"{p}        buf.append(1 if value < 0 else 0)\n"
        f"{p}        payload = magnitude.to_bytes(\n"
        f"{p}            (magnitude.bit_length() + 7) // 8, \"big\"\n"
        f"{p}        )\n"
        f"{p}        length = len(payload)\n"
        + _emit_uvarint_src("length", indent + 8)
        + f"{p}        buf += payload\n"
        # Non-int, non-None: probe the plan cache next — nested objects
        # dominate homogeneous graphs, so they dispatch ahead of the
        # float/str/bytes/bool tail (a miss costs one dict probe).
        f"{p}else:\n"
        f"{p}    plan2 = plan_cache.get(value_cls)\n"
        f"{p}    if plan2 is not None and _depth < {MAX_CODEGEN_DEPTH}:\n"
        f"{p}        handle_entry = handles.get(id(value))\n"
        f"{p}        if handle_entry is not None:\n"
        f"{p}            ref = handle_entry[1]\n"
        f"{p}            buf.append({_TAG_REF})\n"
        + _emit_uvarint_src("ref", indent + 12)
        + f"{p}        else:\n"
        f"{p}            _base = len(stack)\n"
        f"{p}            if not plan2.encode_inner(\n"
        f"{p}                writer, value, stack, _depth + 1, ctx\n"
        f"{p}            ):\n"
        f"{mat_deep}"
        f"{p}                pending = []\n"
        f"{p}                j = count - 1\n"
        f"{p}                while j > i:\n"
        f"{p}                    later_name, later_value = state[j]\n"
        f"{p}                    pending.append((0, later_value))\n"
        f"{p}                    pending.append((1, later_name))\n"
        f"{p}                    j -= 1\n"
        f"{p}                stack[_base:_base] = pending\n"
        f"{p}                return False\n"
        f"{p}    elif value_cls is float:\n"
        f"{p}        buf.append({_TAG_FLOAT})\n"
        f"{p}        buf += _f64_pack(value)\n"
        f"{p}    elif value_cls is str:\n"
        f"{p}        memo = str_memo.get(value)\n"
        f"{p}        if memo is not None:\n"
        f"{p}            buf.append({_TAG_REF})\n"
        + _emit_uvarint_src("memo", indent + 12)
        + f"{p}        else:\n"
        f"{p}            str_handle = writer._next_handle\n"
        f"{p}            writer._next_handle = str_handle + 1\n"
        f"{p}            handles[id(value)] = (value, str_handle)\n"
        f"{p}            if len(str_memo) < memo_limit:\n"
        f"{p}                str_memo[value] = str_handle\n"
        f"{p}            buf.append({_TAG_STR})\n"
        f'{p}            encoded = value.encode("utf-8")\n'
        f"{p}            length = len(encoded)\n"
        + _emit_uvarint_src("length", indent + 12)
        + f"{p}            buf += encoded\n"
        f"{p}    elif value_cls is bytes:\n"
        f"{p}        memo = bytes_memo.get(value)\n"
        f"{p}        if memo is not None:\n"
        f"{p}            buf.append({_TAG_REF})\n"
        + _emit_uvarint_src("memo", indent + 12)
        + f"{p}        else:\n"
        f"{p}            bytes_handle = writer._next_handle\n"
        f"{p}            writer._next_handle = bytes_handle + 1\n"
        f"{p}            handles[id(value)] = (value, bytes_handle)\n"
        f"{p}            if len(bytes_memo) < memo_limit:\n"
        f"{p}                bytes_memo[value] = bytes_handle\n"
        f"{p}            buf.append({_TAG_BYTES})\n"
        f"{p}            length = len(value)\n"
        + _emit_uvarint_src("length", indent + 12)
        + f"{p}            buf += value\n"
        f"{p}    elif value_cls is bool:\n"
        f"{p}        buf.append({_TAG_TRUE} if value else {_TAG_FALSE})\n"
        f"{p}    else:\n"
        f"{mat}"
        f"{p}        j = count - 1\n"
        f"{p}        while j > i:\n"
        f"{p}            later_name, later_value = state[j]\n"
        f"{p}            stack.append((0, later_value))\n"
        f"{p}            stack.append((1, later_name))\n"
        f"{p}            j -= 1\n"
        f"{p}        stack.append((0, value))\n"
        f"{p}        return False\n"
    )


def _build_encode_source(
    cls: type,
    mutable: bool,
    slot_names: Tuple[str, ...],
    transients: frozenset,
    stream_dict: bool,
    static_slots: bool,
    batch_fields: Tuple[str, ...],
) -> str:
    lines = []
    add = lines.append
    # Wrapper: binds the hot-internals tuple once, then enters the inner
    # function; generated parents recurse straight into inner functions,
    # so the tuple is built/unpacked per *root*, not per object. Valid
    # because the writer only mutates these members in place; rebinding
    # paths (discard) null the cached tuple.
    add("def _encode(writer, obj, stack, _depth=0):")
    add("    ctx = writer._codegen_ctx")
    add("    if ctx is None:")
    add("        writer._codegen_ctx = ctx = (")
    add("            writer._buf.raw,")
    add("            writer._handles._entries,")
    add("            writer.linear_map._objects,")
    add("            writer.linear_map._index._entries,")
    add("            writer._class_ids,")
    add("            writer._name_ids,")
    add("            writer._str_memo,")
    add("            writer._bytes_memo,")
    add("            writer._plan_cache,")
    add("            writer._memo_limit,")
    add("        )")
    add("    return _encode_inner(writer, obj, stack, _depth, ctx)")
    add("")
    add("")
    add("def _encode_inner(writer, obj, stack, _depth, ctx):")
    add("    (buf, handles, lm_objects, lm_index, class_ids, name_ids,")
    add("     str_memo, bytes_memo, plan_cache, memo_limit) = ctx")
    add("    handle = writer._next_handle")
    add("    writer._next_handle = handle + 1")
    add("    handles[id(obj)] = (obj, handle)")
    if mutable:
        # The object just missed the handle table, so it cannot be in the
        # linear map either: append unchecked, maintaining the identity
        # index exactly as LinearMap.append would.
        add("    lm_index[id(obj)] = (obj, len(lm_objects))")
        add("    lm_objects.append(obj)")
    # -- state extraction, specialized per layout ------------------------
    if stream_dict:
        add('    instance_dict = getattr(obj, "__dict__", None)')
        add("    count = len(instance_dict) if instance_dict else 0")
        names_expr = "list(instance_dict) if instance_dict else []"
        materialize = "state = list(instance_dict.items())"
    elif static_slots:
        add("    state = []")
        add("    _append = state.append")
        for slot in slot_names:
            if slot in transients:
                continue
            add("    try:")
            add(f"        _append(({slot!r}, obj.{slot}))")
            add("    except AttributeError:")
            add("        pass")
        add("    count = len(state)")
        names_expr = "[n_ for n_, _v in state]"
        materialize = ""
    else:
        add('    instance_dict = getattr(obj, "__dict__", None)')
        add("    state = list(instance_dict.items()) if instance_dict else []")
        if slot_names:
            add("    for _fname in _slot_names:")
            add("        try:")
            add("            state.append((_fname, getattr(obj, _fname)))")
            add("        except AttributeError:")
            add("            continue")
        if transients:
            add("    state = [(n_, v_) for n_, v_ in state if n_ not in _transients]")
        add("    count = len(state)")
        names_expr = "[n_ for n_, _v in state]"
        materialize = ""
    # -- object header ---------------------------------------------------
    add(f"    buf.append({_TAG_OBJECT})")
    add("    class_id = class_ids.get(_cls)")
    add("    if class_id is None:")
    add("        class_ids[_cls] = len(class_ids) + 1")
    add("        if writer._schema_tx is None:")
    add("            buf += _class_blob")
    add("        else:")
    add("            writer._emit_schema_class(")
    add(f"                _cls, _version, _class_blob, _rname, {names_expr}")
    add("            )")
    add("    else:")
    add("        class_id += writer._class_key_offset")
    lines.extend(_emit_uvarint_src("class_id", 8).rstrip("\n").split("\n"))
    add("    value = count")
    lines.extend(_emit_uvarint_src("value", 4).rstrip("\n").split("\n"))
    # -- float-run batch (static slot layouts only) ----------------------
    if batch_fields:
        n = len(batch_fields)
        add(f"    if count == {n}:")
        for k, field in enumerate(batch_fields):
            add(f"        nid_{k} = name_ids.get({field!r})")
            add(f"        v_{k} = state[{k}][1]")
        guard = " and ".join(
            f"nid_{k} is not None and nid_{k} < 128 "
            f"and v_{k}.__class__ is float"
            for k in range(n)
        )
        add(f"        if {guard}:")
        args = ", ".join(f"nid_{k}, {_TAG_FLOAT}, v_{k}" for k in range(n))
        add(f"            buf += _pack_batch({args})")
        add("            return True")
    # -- field loop ------------------------------------------------------
    if stream_dict:
        add("    if count:")
        add("        i = 0")
        add("        for field_name, value in instance_dict.items():")
        body = _encode_field_body(12, materialize)
        lines.extend(body.rstrip("\n").split("\n"))
        add("            i += 1")
    else:
        add("    i = 0")
        add("    while i < count:")
        add("        field_name, value = state[i]")
        body = _encode_field_body(8, materialize)
        lines.extend(body.rstrip("\n").split("\n"))
        add("        i += 1")
    add("    return True")
    return "\n".join(lines) + "\n"


def compile_codegen_encode_plan(cls: type, registered_name: str) -> EncodePlan:
    """Generate the specialized encoder for *cls*; fall back on any error.

    The fallback wraps the interpreted closure and reports ``False``
    (bailed) to recursive callers — correct whether the closure completed
    or pushed leftovers, since a caller's splice point is below any work
    the closure appended.
    """
    epoch = schema_epoch()
    try:
        version = class_version(cls)
        transients = transient_fields(cls)
        mutable = not has_resolve(cls)
        slot_names = _collect_slot_names(cls)
        stream_dict = not slot_names and not transients
        static_slots = bool(slot_names) and not _instances_have_dict(cls)
        usable_slots = tuple(s for s in slot_names if s not in transients)
        batch_fields = usable_slots if static_slots and len(usable_slots) >= 2 else ()
        name_utf8 = registered_name.encode("utf-8")
        class_blob = (
            b"\x00"
            + _uvarint_bytes(len(name_utf8))
            + name_utf8
            + _uvarint_bytes(version)
        )
        source = _build_encode_source(
            cls, mutable, slot_names, transients, stream_dict,
            static_slots, batch_fields,
        )
        namespace = {
            "_cls": cls,
            "_class_blob": class_blob,
            "_rname": registered_name,
            "_version": version,
            "_name_blobs": {},
            "_uvarint_bytes": _uvarint_bytes,
            "_f64_pack": _F64.pack,
            "_slot_names": slot_names,
            "_transients": transients,
        }
        if batch_fields:
            namespace["_pack_batch"] = struct.Struct(
                ">" + "BBd" * len(batch_fields)
            ).pack
        code = compile(
            source, f"<nrmi-codegen-encode:{registered_name}>", "exec"
        )
        exec(code, namespace)
        codegen_metrics.counter("serde.codegen.compiled").add()
        return CodegenEncodePlan(
            cls, version, namespace["_encode"], epoch,
            namespace["_encode_inner"],
        )
    except Exception:
        codegen_metrics.counter("serde.codegen.fallbacks").add()
        inner = compile_encode_plan(cls, registered_name)

        def fallback(writer, obj, stack, _depth=0, _inner=inner.encode):
            _inner(writer, obj, stack)
            return False

        def fallback_inner(writer, obj, stack, _depth, ctx, _inner=inner.encode):
            _inner(writer, obj, stack)
            return False

        return CodegenEncodePlan(
            cls, inner.version, fallback, epoch, fallback_inner
        )


# --------------------------------------------------------------- decode


def _decode_scalar_arms_head(p: str) -> str:
    """The hottest dispatch arms; the builder puts the OBJECT arm right
    after these, ahead of the string/ref/float tail."""
    return (
        f"{p}if tag == {_T_INT}:\n"
        + _read_uvarint_src("raw", len(p) + 4)
        + f"{p}    value = (raw >> 1) ^ -(raw & 1)\n"
        f"{p}elif tag == {_T_NONE}:\n"
        f"{p}    value = None\n"
    )


def _decode_scalar_arms_tail(p: str) -> str:
    """The remaining scalar dispatch arms (all ``elif``)."""
    return (
        f"{p}elif tag == {_T_REF}:\n"
        + _read_uvarint_src("ref", len(p) + 4)
        + f"{p}    try:\n"
        f"{p}        value = handles[ref]\n"
        f"{p}    except IndexError:\n"
        f"{p}        buf._pos = pos\n"
        f'{p}        raise _WireFormatError(f"dangling handle {{ref}}") from None\n'
        f"{p}    if value is _NO_VALUE:\n"
        f"{p}        buf._pos = pos\n"
        f'{p}        raise _WireFormatError(f"forward reference to handle {{ref}}")\n'
        f"{p}elif tag == {_T_STR}:\n"
        + _read_uvarint_src("size", len(p) + 4)
        + f"{p}    end = pos + size\n"
        f"{p}    if end > length:\n"
        f"{p}        buf._pos = pos\n"
        f"{p}        raise _WireFormatError(\n"
        f'{p}            f"truncated stream: need {{size}} bytes at offset "\n'
        f'{p}            f"{{pos}}, have {{length - pos}}"\n'
        f"{p}        )\n"
        f'{p}    value = str(mv[pos:end], "utf-8")\n'
        f"{p}    pos = end\n"
        f"{p}    handles.append(value)\n"
        f"{p}elif tag == {_T_FLOAT}:\n"
        f"{p}    end = pos + 8\n"
        f"{p}    if end > length:\n"
        f"{p}        buf._pos = pos\n"
        f"{p}        raise _WireFormatError(\n"
        f'{p}            f"truncated stream: need 8 bytes at offset "\n'
        f'{p}            f"{{pos}}, have {{length - pos}}"\n'
        f"{p}        )\n"
        f"{p}    value = _unpack_f64(mv, pos)[0]\n"
        f"{p}    pos = end\n"
        f"{p}elif tag == {_T_TRUE}:\n"
        f"{p}    value = True\n"
        f"{p}elif tag == {_T_FALSE}:\n"
        f"{p}    value = False\n"
        f"{p}elif tag == {_T_BYTES}:\n"
        + _read_uvarint_src("size", len(p) + 4)
        + f"{p}    end = pos + size\n"
        f"{p}    if end > length:\n"
        f"{p}        buf._pos = pos\n"
        f"{p}        raise _WireFormatError(\n"
        f'{p}            f"truncated stream: need {{size}} bytes at offset "\n'
        f'{p}            f"{{pos}}, have {{length - pos}}"\n'
        f"{p}        )\n"
        f"{p}    value = bytes(mv[pos:end])\n"
        f"{p}    pos = end\n"
        f"{p}    handles.append(value)\n"
    )


def _emit_decode_alloc(indent: int, needs_resolve: bool, use_dict: bool) -> str:
    """Shell allocation + handle / linear-map registration."""
    p = " " * indent
    src = (
        f"{p}shell = _new(_cls)\n"
        f"{p}handle_slot = len(handles)\n"
        f"{p}handles.append(shell)\n"
    )
    if needs_resolve:
        src += f"{p}slot = -1\n"
    else:
        # LinearMap.append_new, inlined: the shell is freshly allocated,
        # so the identity index entry is always new.
        src += (
            f"{p}slot = len(lm_objects)\n"
            f"{p}lm_index[id(shell)] = (shell, slot)\n"
            f"{p}lm_objects.append(shell)\n"
        )
    if use_dict:
        src += f"{p}field_dict = shell.__dict__\n"
    return src


def _emit_decode_batch(indent: int, batch_n: int) -> str:
    """The float-run unpack batch (static slot layouts only)."""
    if not batch_n:
        return ""
    p = " " * indent
    span = 10 * batch_n
    src = (
        f"{p}if count == {batch_n} and length - pos >= {span}:\n"
        f"{p}    _v = _unpack_batch(mv, pos)\n"
        f"{p}    nlen = len(names)\n"
    )
    guard = " and ".join(
        f"_v[{3 * k + 1}] == {_T_FLOAT} and 0 < _v[{3 * k}] < 128 "
        f"and _v[{3 * k}] <= nlen"
        for k in range(batch_n)
    )
    src += f"{p}    if {guard}:\n"
    for k in range(batch_n):
        src += (
            f"{p}        set_field(shell, names[_v[{3 * k}] - 1], "
            f"_v[{3 * k + 2}])\n"
        )
    src += f"{p}        pos += {span}\n"
    src += f"{p}        count = 0\n"
    return src


def _build_decode_source(
    needs_resolve: bool,
    upgrade: bool,
    use_dict: bool,
    batch_n: int,
) -> str:
    store = (
        "field_dict[name] = value" if use_dict else "set_field(shell, name, value)"
    )
    # The suspension tuple stays minimal: ``field_dict`` is recomputed
    # from the shell on resume rather than carried per level.
    work_push = "(shell, handle_slot, slot, name, count)"
    work_pop = "shell, handle_slot, slot, name, count"
    park_unpack = "s_shell, s_hs, s_slot, s_name, s_count"
    lines = []
    add = lines.append
    # Wrapper: binds the hot-internals tuple once (every member is bound
    # in the reader's __init__ and only mutated in place), then enters
    # the inner function. Generated parents recurse straight into inner
    # functions, threading the cursor as a local — the per-object cost of
    # re-reading ``buf._pos`` and re-unpacking the tuple disappears. The
    # inner function returns ``(value, new_pos)`` and has synced
    # ``buf._pos`` itself on every exit, so the wrapper just unwraps.
    add("def _decode(reader, stack, wire_version, _depth=0):")
    add("    ctx = reader._codegen_ctx")
    add("    if ctx is None:")
    add("        reader._codegen_ctx = ctx = (")
    add("            reader._buf,")
    # bytes, not the memoryview: indexing a bytes object returns cached
    # small ints measurably faster, and the one-time copy is linear in
    # the payload the decoder is about to walk anyway. When the reader
    # already sits on real bytes (its _raw passthrough), even that copy
    # is skipped — the borrowed-ring path instead lands here with a
    # memoryview and pays the copy knowingly (leaf values must not
    # alias ring memory anyway).
    add("            reader._buf._raw or bytes(reader._buf._mv),")
    add("            reader._buf._len,")
    add("            reader._handles,")
    add("            reader._names,")
    add("            reader._classes,")
    add("            reader._set_field,")
    add("            reader._schema_rx,")
    add("            reader._names_seen,")
    add("            reader.linear_map._objects,")
    add("            reader.linear_map._index._entries,")
    add("            reader._digest_accessor is not None,")
    add("        )")
    add("    return _decode_inner(")
    add("        reader, stack, wire_version, _depth, ctx, ctx[0]._pos")
    add("    )[0]")
    add("")
    add("")
    add("def _decode_inner(reader, stack, wire_version, _depth, ctx, pos):")
    add("    (buf, mv, length, handles, names, classes, set_field,")
    add("     schema_rx, names_seen, lm_objects, lm_index, capture) = ctx")
    add("    base = len(stack)")
    add("    work = []")
    add("    try:")
    lines.extend(_read_uvarint_src("count", 8).rstrip("\n").split("\n"))
    lines.extend(
        _emit_decode_alloc(8, needs_resolve, use_dict).rstrip("\n").split("\n")
    )
    if batch_n:
        lines.extend(_emit_decode_batch(8, batch_n).rstrip("\n").split("\n"))
    # Same-class children are unrolled into this loop: the node's locals
    # are pushed onto a lightweight ``work`` list and the loop re-enters
    # with the child's state — one Python frame for the whole homogeneous
    # subgraph, at any depth.
    add("        while True:")
    add("            while count:")
    lines.extend(_read_uvarint_src("key", 16).rstrip("\n").split("\n"))
    add("                if key:")
    add("                    try:")
    add("                        name = names[key - 1]")
    add("                    except IndexError:")
    add("                        buf._pos = pos")
    add("                        raise _WireFormatError(")
    add('                            f"dangling name id {key}"')
    add("                        ) from None")
    add("                else:")
    add("                    buf._pos = pos")
    add("                    name = buf.read_str()")
    add("                    pos = buf._pos")
    add("                    names.append(name)")
    add("                    if names_seen is not None:")
    add("                        names_seen.add(name)")
    add("                tag = mv[pos]")
    add("                pos += 1")
    lines.extend(_decode_scalar_arms_head(" " * 16).rstrip("\n").split("\n"))
    # -- nested object (hot in homogeneous graphs, hence dispatched
    # ahead of the string/ref/float tail) --------------------------------
    add(f"                elif tag == {_T_OBJECT}:")
    lines.extend(_read_uvarint_src("ckey", 20).rstrip("\n").split("\n"))
    add("                    if schema_rx is None:")
    add("                        if ckey:")
    add("                            try:")
    add("                                entry = classes[ckey - 1]")
    add("                            except IndexError:")
    add("                                buf._pos = pos")
    add("                                raise _WireFormatError(")
    add('                                    f"dangling class id {ckey}"')
    add("                                ) from None")
    add("                        else:")
    add("                            buf._pos = pos")
    add("                            entry = reader._read_inline_class()")
    add("                            pos = buf._pos")
    add("                    elif ckey >= _CKEY_STREAM_BASE:")
    add("                        try:")
    add("                            entry = classes[ckey - _CKEY_STREAM_BASE]")
    add("                        except IndexError:")
    add("                            buf._pos = pos")
    add("                            raise _WireFormatError(")
    add('                                f"dangling class id {ckey}"')
    add("                            ) from None")
    add("                    else:")
    add("                        buf._pos = pos")
    add("                        entry = reader._read_schema_class_key(ckey)")
    add("                        pos = buf._pos")
    # Same class as this decoder: suspend the current node and continue
    # iteratively — no Python call, no frame churn.
    add("                    if entry[2] is _plan and entry[1] == wire_version:")
    lines.extend(_read_uvarint_src("count2", 24).rstrip("\n").split("\n"))
    add(f"                        work.append({work_push})")
    add("                        count = count2")
    lines.extend(
        _emit_decode_alloc(24, needs_resolve, use_dict).rstrip("\n").split("\n")
    )
    if batch_n:
        lines.extend(
            _emit_decode_batch(24, batch_n).rstrip("\n").split("\n")
        )
    add("                        continue")
    # Different class: recurse through the child's generated decoder.
    add("                    plan2 = entry[2]")
    add("                    if (plan2 is not None")
    add("                            and plan2.decode_fn is not None")
    add(f"                            and _depth < {MAX_CODEGEN_DEPTH}):")
    add("                        value, pos = plan2.decode_inner(")
    add("                            reader, stack, entry[1], _depth + 1,")
    add("                            ctx, pos,")
    add("                        )")
    add("                        if value is BAIL:")
    add("                            _park(reader, stack, base, work, shell,")
    add("                                  handle_slot, slot, name, count,")
    add("                                  wire_version)")
    add("                            return BAIL, pos")
    add("                    else:")
    lines.extend(_read_uvarint_src("count2", 24).rstrip("\n").split("\n"))
    add("                        buf._pos = pos")
    add("                        child = reader._spawn_object_frame(")
    add("                            entry, count2")
    add("                        )")
    add("                        _park(reader, stack, base, work, shell,")
    add("                              handle_slot, slot, name, count,")
    add("                              wire_version)")
    add("                        stack.append(child)")
    add("                        return BAIL, pos")
    lines.extend(_decode_scalar_arms_tail(" " * 16).rstrip("\n").split("\n"))
    # -- anything else: park frames and hand over ------------------------
    add("                else:")
    add("                    pos -= 1")
    add("                    buf._pos = pos")
    add("                    _park(reader, stack, base, work, shell,")
    add("                          handle_slot, slot, name, count,")
    add("                          wire_version)")
    add("                    return BAIL, pos")
    add(f"                {store}")
    add("                count -= 1")
    # -- node complete ---------------------------------------------------
    if upgrade:
        add("            if wire_version != _version:")
        add("                _apply_upgrade(shell, wire_version)")
    if needs_resolve:
        add("            value = _apply_resolve(shell)")
        add("            handles[handle_slot] = value")
    else:
        add("            if capture:")
        add("                reader._capture_slot(slot, shell)")
        add("            value = shell")
    add("            if work:")
    add(f"                {work_pop} = work.pop()")
    if use_dict:
        add("                field_dict = shell.__dict__")
    add(f"                {store}")
    add("                count -= 1")
    add("                continue")
    add("            break")
    add("    except IndexError:")
    add("        buf._pos = min(pos, length)")
    add("        raise _WireFormatError(")
    add('            f"truncated stream: need 1 bytes at offset {length}, have 0"')
    add("        ) from None")
    add("    except UnicodeDecodeError as exc:")
    add("        buf._pos = pos")
    add('        raise _WireFormatError(f"invalid UTF-8 in string: {exc}") from exc')
    add("    buf._pos = pos")
    add("    return value, pos")
    add("")
    add("")
    # Bail helper: a frame in exactly the state the interpreted machinery
    # expects mid-object (current field's name parked, count not yet
    # decremented), so _read_value/_drain_object_fields finish the object.
    add("def _bail_frame(reader, shell, handle_slot, slot, name, remaining,")
    add("                wire_version):")
    add("    frame = _Frame(_F_OBJECT, remaining)")
    add("    frame.shell = shell")
    add("    frame.handle_slot = handle_slot")
    add("    frame.pending_name = name")
    if use_dict:
        add("    frame.field_dict = shell.__dict__")
    if needs_resolve:
        add("    frame.needs_resolve = True")
    else:
        add("    if reader._digest_accessor is not None:")
        add("        frame.linear_slot = slot")
    if upgrade:
        add("    if wire_version != _version:")
        add("        frame.wire_version = wire_version")
    add("    return frame")
    add("")
    add("")
    # Park the whole in-flight chain: suspended parents outermost-first
    # below the current node, all below anything a nested callee already
    # parked — the frame machine resumes innermost-first.
    add("def _park(reader, stack, base, work, shell, handle_slot, slot, name,")
    add("          count, wire_version):")
    add("    frames = []")
    add(f"    for {park_unpack} in work:")
    add("        frames.append(_bail_frame(reader, s_shell, s_hs, s_slot,")
    add("                                  s_name, s_count, wire_version))")
    add("    frames.append(_bail_frame(reader, shell, handle_slot, slot, name,")
    add("                              count, wire_version))")
    add("    stack[base:base] = frames")
    return "\n".join(lines) + "\n"


def compile_codegen_decode_plan(cls: type, registered_name: str) -> DecodePlan:
    """Generate the specialized decoder for *cls*; fall back on any error.

    The fallback is a :class:`CodegenDecodePlan` with ``decode_fn`` left
    ``None`` — the reader's frame machine then decodes the class through
    the inherited interpreted plan facts.
    """
    epoch = schema_epoch()
    plan = CodegenDecodePlan(cls, class_version(cls), epoch)
    try:
        from repro.serde.reader import _F_OBJECT, _Frame, _NO_VALUE
        from repro.serde.schema import CKEY_STREAM_BASE

        slot_names = _collect_slot_names(cls)
        static_slots = bool(slot_names) and not _instances_have_dict(cls)
        usable_slots = tuple(
            s for s in slot_names if s not in transient_fields(cls)
        )
        batch_n = (
            len(usable_slots)
            if static_slots and not plan.use_dict and len(usable_slots) >= 2
            else 0
        )
        source = _build_decode_source(
            plan.needs_resolve, plan.has_upgrade, plan.use_dict, batch_n
        )
        namespace = {
            "_new": object.__new__,
            "_cls": cls,
            "_plan": plan,
            "_version": plan.version,
            "_Frame": _Frame,
            "_F_OBJECT": _F_OBJECT,
            "_NO_VALUE": _NO_VALUE,
            "_CKEY_STREAM_BASE": CKEY_STREAM_BASE,
            "_WireFormatError": WireFormatError,
            "BAIL": BAIL,
            "_apply_upgrade": apply_upgrade,
            "_apply_resolve": apply_resolve,
            "_unpack_f64": _F64.unpack_from,
        }
        if batch_n:
            namespace["_unpack_batch"] = struct.Struct(
                ">" + "BBd" * batch_n
            ).unpack_from
        code = compile(
            source, f"<nrmi-codegen-decode:{registered_name}>", "exec"
        )
        exec(code, namespace)
        plan.decode_fn = namespace["_decode"]
        plan.decode_inner = namespace["_decode_inner"]
        codegen_metrics.counter("serde.codegen.compiled").add()
    except Exception:
        codegen_metrics.counter("serde.codegen.fallbacks").add()
        plan.decode_fn = None
        plan.decode_inner = None
    return plan
