"""The decoder: reconstructs object graphs from the NRMI wire format.

Like the writer, the reader is **iterative** — a frame stack instead of
recursion — and it rebuilds the handle table (and therefore the linear map)
as a side effect of decoding, in exactly the order the writer allocated
handles. This is the paper's optimization 5.2.4 #1: the linear map is never
transmitted; the receiving side reconstructs it during deserialization.

Cycles are handled by registering *shells* for mutable containers and
objects before their contents are read; back references resolve to the
shell, which is filled in as decoding proceeds. Immutable containers
(tuples, frozensets) cannot be shelled, but a cycle through an immutable
container is unconstructable in Python in the first place.

Profile split (mirrors the writer): the legacy profile reads through the
slice-copying buffer that models JDK 1.3's stream layer and re-derives
per-class facts for every object; the modern profile reads through a
``memoryview`` with no per-primitive copies, caches per-class decode plans
(:mod:`repro.serde.plans`), and drains runs of scalar fields in a tight
inline loop instead of one full frame-machine cycle per field.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional

from repro.errors import WireFormatError
from repro.serde.codegen import BAIL
from repro.serde.digest import SlotDigestTable, _encode_slot
from repro.serde.hooks import (
    apply_resolve,
    apply_upgrade,
    class_version,
    has_resolve,
    has_upgrade,
)
from repro.serde.linear_map import LinearMap
from repro.serde.profiles import MODERN_PROFILE, SerializationProfile
from repro.serde.registry import ClassRegistry, global_registry
from repro.serde.schema import (
    CKEY_INLINE,
    CKEY_SCHEMA_DEF,
    CKEY_SCHEMA_REF,
    CKEY_STREAM_BASE,
    STREAM_FLAG_SCHEMA_CACHE,
    SchemaRxCache,
)
from repro.serde.tags import Tag, WIRE_MAGIC, WIRE_VERSION
from repro.util.buffers import BufferReader, BufferWriter, SlicingBufferReader

_F64_UNPACK = struct.Struct(">d").unpack_from

_NO_VALUE = object()
_FRAME_PUSHED = object()

# Frame kinds.
_F_LIST = 0
_F_TUPLE = 1
_F_SET = 2
_F_FROZENSET = 3
_F_DICT = 4
_F_OBJECT = 5

# Tag bytes as plain ints for the scalar drain loop (mirrors Tag; enum
# attribute access and __eq__ are measurable in the per-field hot path).
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x05
_T_STR = 0x07
_T_BYTES = 0x08
_T_REF = 0x09
_T_OBJECT = 0x10


class _Frame:
    """Decoding state for one container whose children are still arriving."""

    __slots__ = (
        "kind",
        "remaining",
        "shell",
        "items",
        "handle_slot",
        "pending_key",
        "has_pending_key",
        "pending_name",
        "needs_resolve",
        "wire_version",
        "field_dict",
        "linear_slot",
    )

    def __init__(self, kind: int, remaining: int) -> None:
        self.kind = kind
        self.remaining = remaining
        self.shell: Any = None
        self.items: Optional[List[Any]] = None
        self.handle_slot = -1
        self.pending_key: Any = None
        self.has_pending_key = False
        self.pending_name: Optional[str] = None
        self.needs_resolve = False
        self.wire_version: Optional[int] = None
        #: The shell's instance dict when batched dict stores are safe
        #: (plan.use_dict); None routes stores through the accessor.
        self.field_dict: Optional[dict] = None
        #: Linear-map position to digest at frame finish (fused digest
        #: capture); -1 when capture is off or the shell is not mapped.
        self.linear_slot = -1


class ObjectReader:
    """Decodes a stream produced by :class:`repro.serde.writer.ObjectWriter`.

    *data* may be ``bytes``, ``bytearray``, or a ``memoryview`` — the modern
    profile decodes through a view without copying the payload.
    """

    def __init__(
        self,
        data,
        profile: SerializationProfile = MODERN_PROFILE,
        registry: Optional[ClassRegistry] = None,
        externalizers: tuple = (),
        schema_rx: Optional[SchemaRxCache] = None,
        digest_accessor=None,
    ) -> None:
        self.profile = profile
        self.registry = registry if registry is not None else global_registry
        self._local_externalizers = {ext.name: ext for ext in externalizers}
        self.linear_map = LinearMap()
        if profile.chunked_buffers:
            self._buf = SlicingBufferReader(data)
        else:
            self._buf = BufferReader(data)
        self._handles: List[Any] = []
        self._classes: List[tuple] = []  # (class, wire_version, plan-or-None)
        self._names: List[str] = []
        # Decode plans mirror the writer's gating: they bake in interned
        # descriptors and no per-object validation.
        self._use_plans = (
            profile.use_compiled_plans
            and profile.intern_descriptors
            and not profile.per_object_validation
        )
        # exec-generated decoders (repro.serde.codegen) ride on the plan
        # pipeline: same wire bytes, direct function call per object.
        self._use_codegen = self._use_plans and profile.use_codegen
        self._set_field = profile.accessor.set_field
        # Lazily-built tuple of hot internals bound in one load by
        # generated decoders (repro.serde.codegen); every member is bound
        # once in __init__ and only mutated in place, never rebound.
        self._codegen_ctx: Optional[tuple] = None
        # Fused digest capture (repro.serde.digest): when the dispatcher
        # passes the accessor it will later re-digest with, each mutable
        # slot's "before" token is produced as its frame finishes, so the
        # delta-slots snapshot needs no second walk over the linear map.
        self._digest_accessor = digest_accessor
        if digest_accessor is not None:
            self._digest_tokens: List[Optional[bytes]] = []
            self._digest_pins: List[Any] = []
            self._digest_writer = BufferWriter()
        magic = self._buf.read_bytes(len(WIRE_MAGIC))
        if magic != WIRE_MAGIC:
            raise WireFormatError(f"bad magic {magic!r}; not an NRMI stream")
        version = self._buf.read_u8()
        if version != WIRE_VERSION:
            raise WireFormatError(
                f"unsupported wire version {version} (expected {WIRE_VERSION})"
            )
        flags = self._buf.read_u8()
        if flags & STREAM_FLAG_SCHEMA_CACHE:
            if schema_rx is None:
                raise WireFormatError(
                    "schema-cache stream received without a session schema "
                    "cache (stateless decode of a negotiated stream)"
                )
            self._schema_rx: Optional[SchemaRxCache] = schema_rx
            self._names_seen: Optional[set] = set()
        else:
            self._schema_rx = None
            self._names_seen = None

    # ------------------------------------------------------------------ API

    def read_root(self) -> Any:
        """Decode and return the next root value in the stream."""
        return self._read_value()

    def at_end(self) -> bool:
        return self._buf.remaining == 0

    def expect_end(self) -> None:
        self._buf.expect_end()

    # ------------------------------------------------------------ internals

    def _register(self, obj: Any, mutable: bool) -> int:
        slot = len(self._handles)
        self._handles.append(obj)
        if mutable:
            # Shells are freshly allocated, so skip the membership probe.
            self.linear_map.append_new(obj)
        return slot

    def _reserve(self) -> int:
        slot = len(self._handles)
        self._handles.append(_NO_VALUE)
        return slot

    def _read_class(self) -> tuple:
        """Return (class, wire_version, decode_plan_or_None) for a class key."""
        key = self._buf.read_uvarint()
        if self._schema_rx is not None:
            return self._read_schema_class_key(key)
        if key == 0:
            return self._read_inline_class()
        try:
            return self._classes[key - 1]
        except IndexError:
            raise WireFormatError(f"dangling class id {key}") from None

    def _plan_for(self, cls: type):
        """The decode plan matching this reader's profile (or None)."""
        if self._use_codegen:
            return self.registry.codegen_decode_plan_for(cls)
        if self._use_plans:
            return self.registry.decode_plan_for(cls)
        return None

    def _read_inline_class(self) -> tuple:
        """Decode an inline class descriptor (the key byte already read)."""
        cls = self.registry.class_for(self._buf.read_str())
        plan = self._plan_for(cls)
        entry = (cls, self._buf.read_uvarint(), plan)
        self._classes.append(entry)
        return entry

    def _read_schema_class_key(self, key: int) -> tuple:
        """Decode a schema-mode class key (see :mod:`repro.serde.schema`)."""
        buf = self._buf
        if key >= CKEY_STREAM_BASE:
            try:
                return self._classes[key - CKEY_STREAM_BASE]
            except IndexError:
                raise WireFormatError(f"dangling class id {key}") from None
        if key == CKEY_INLINE:
            cls = self.registry.class_for(buf.read_str())
            plan = self._plan_for(cls)
            entry = (cls, buf.read_uvarint(), plan)
            self._classes.append(entry)
            return entry
        if key == CKEY_SCHEMA_DEF:
            schema_id = buf.read_uvarint()
            class_name = buf.read_str()
            version = buf.read_uvarint()
            count = buf.read_uvarint()
            field_names = tuple(buf.read_str() for _ in range(count))
            schema = self._schema_rx.define(
                schema_id, class_name, version, field_names
            )
        else:  # CKEY_SCHEMA_REF (key space 0..2 is exhaustive)
            schema = self._schema_rx.lookup(buf.read_uvarint())
        cls = self.registry.class_for(schema.class_name)
        plan = self._plan_for(cls)
        entry = (cls, schema.version, plan)
        self._classes.append(entry)
        # Seed the per-stream field-name table (the writer seeds its table
        # identically) so per-field name keys become 1-2 byte back refs.
        seen = self._names_seen
        names = self._names
        for field_name in schema.field_names:
            if field_name not in seen:
                seen.add(field_name)
                names.append(field_name)
        return entry

    def _read_name(self) -> str:
        key = self._buf.read_uvarint()
        if key == 0:
            name = self._buf.read_str()
            self._names.append(name)
            if self._names_seen is not None:
                self._names_seen.add(name)
            return name
        try:
            return self._names[key - 1]
        except IndexError:
            raise WireFormatError(f"dangling name id {key}") from None

    def _read_value(self) -> Any:
        fast = self._use_plans
        stack: List[_Frame] = []
        result: Any = _NO_VALUE
        while True:
            if result is _NO_VALUE:
                result = self._step(stack)
                if result is _FRAME_PUSHED:
                    result = _NO_VALUE
                    frame = stack[-1]
                    # pending_name is set when a generated decoder bailed
                    # mid-field: the next value must route through _step/
                    # _deliver, not the name-first drain loop.
                    if (
                        fast
                        and frame.kind == _F_OBJECT
                        and frame.remaining
                        and frame.pending_name is None
                    ):
                        self._drain_object_fields(frame, stack)
                    if frame.remaining == 0:
                        stack.pop()
                        result = self._finish(frame)
                    continue
            if not stack:
                return result
            frame = stack[-1]
            self._deliver(frame, result)
            result = _NO_VALUE
            if (
                fast
                and frame.remaining
                and frame.kind == _F_OBJECT
                and frame.pending_name is None
            ):
                # Back from decoding a non-object field value: resume the
                # direct drain loop before paying full frame-machine
                # cycles for the fields that follow. The drain may leave
                # deeper frames on the stack; *frame* can only hit
                # remaining == 0 when it is back on top.
                self._drain_object_fields(frame, stack)
            if frame.remaining == 0:
                stack.pop()
                result = self._finish(frame)

    def _drain_object_fields(self, frame: _Frame, stack: List[_Frame]) -> None:
        """Decode an object subtree in one direct loop.

        Reads ``name, tag, payload`` triples straight off the buffer — no
        per-field ``_step``/``_deliver`` dispatch — and when a field's
        value is itself a plan-backed object, opens its frame *inside the
        loop* and keeps going, so a tree of objects with scalar leaves
        decodes without ever bouncing through the generic frame machine.
        Frames this loop pushes onto *stack* are in exactly the state
        ``_step`` would have left them, so on any other value shape
        (container, big int, external, ...) the already-read name is
        parked on ``pending_name`` and the generic machinery takes over
        exactly where it would have been. The frame the caller passed in
        is never popped here: ``_read_value`` finishes it.
        """
        buf = self._buf
        set_field = self._set_field
        handles = self._handles
        names = self._names
        names_seen = self._names_seen
        classes = self._classes
        schema_rx = self._schema_rx
        lm_append = self.linear_map.append_new
        capture = self._digest_accessor is not None
        accessor_new = self.profile.accessor.new_instance
        unpack_f64 = _F64_UNPACK
        base = len(stack)
        cur = frame
        shell = cur.shell
        field_dict = cur.field_dict
        remaining = cur.remaining
        # Read through buffer internals directly: one attribute load up
        # front instead of a method call per primitive. Every exit path
        # (including raises) writes the cursor back into the buffer.
        mv = buf._mv
        pos = buf._pos
        length = buf._len
        try:
            while True:
                if not remaining:
                    # The innermost object is complete. The caller's frame
                    # is finished by _read_value; deeper frames finish and
                    # deliver to their parent right here.
                    cur.remaining = 0
                    if len(stack) == base:
                        break
                    stack.pop()
                    if (
                        cur.wire_version is not None
                        or cur.needs_resolve
                        or cur.linear_slot >= 0
                    ):
                        value = self._finish(cur)
                    else:
                        value = cur.shell
                    cur = stack[-1]
                    shell = cur.shell
                    field_dict = cur.field_dict
                    remaining = cur.remaining
                    name = cur.pending_name
                    cur.pending_name = None
                    if field_dict is not None:
                        field_dict[name] = value
                    else:
                        set_field(shell, name, value)
                    remaining -= 1
                    continue
                # -- field-name key (inline uvarint) ----------------------
                byte = mv[pos]
                pos += 1
                if byte & 0x80:
                    key = byte & 0x7F
                    shift = 7
                    while True:
                        byte = mv[pos]
                        pos += 1
                        key |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                        if shift > 70:
                            buf._pos = pos
                            raise WireFormatError(
                                "uvarint too long (corrupt stream)"
                            )
                else:
                    key = byte
                if key:
                    try:
                        name = names[key - 1]
                    except IndexError:
                        buf._pos = pos
                        raise WireFormatError(
                            f"dangling name id {key}"
                        ) from None
                else:
                    buf._pos = pos
                    name = buf.read_str()
                    pos = buf._pos
                    names.append(name)
                    if names_seen is not None:
                        names_seen.add(name)
                # -- value tag + payload ----------------------------------
                tag = mv[pos]
                pos += 1
                if tag == _T_INT:
                    byte = mv[pos]
                    pos += 1
                    if byte & 0x80:
                        raw = byte & 0x7F
                        shift = 7
                        while True:
                            byte = mv[pos]
                            pos += 1
                            raw |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 70:
                                buf._pos = pos
                                raise WireFormatError(
                                    "uvarint too long (corrupt stream)"
                                )
                    else:
                        raw = byte
                    value = (raw >> 1) ^ -(raw & 1)
                elif tag == _T_STR:
                    byte = mv[pos]
                    pos += 1
                    if byte & 0x80:
                        count = byte & 0x7F
                        shift = 7
                        while True:
                            byte = mv[pos]
                            pos += 1
                            count |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 70:
                                buf._pos = pos
                                raise WireFormatError(
                                    "uvarint too long (corrupt stream)"
                                )
                    else:
                        count = byte
                    end = pos + count
                    if end > length:
                        buf._pos = pos
                        raise WireFormatError(
                            f"truncated stream: need {count} bytes at offset "
                            f"{pos}, have {length - pos}"
                        )
                    value = str(mv[pos:end], "utf-8")
                    pos = end
                    handles.append(value)
                elif tag == _T_REF:
                    byte = mv[pos]
                    pos += 1
                    if byte & 0x80:
                        slot = byte & 0x7F
                        shift = 7
                        while True:
                            byte = mv[pos]
                            pos += 1
                            slot |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 70:
                                buf._pos = pos
                                raise WireFormatError(
                                    "uvarint too long (corrupt stream)"
                                )
                    else:
                        slot = byte
                    try:
                        value = handles[slot]
                    except IndexError:
                        buf._pos = pos
                        raise WireFormatError(
                            f"dangling handle {slot}"
                        ) from None
                    if value is _NO_VALUE:
                        buf._pos = pos
                        raise WireFormatError(
                            f"forward reference to handle {slot}"
                        )
                elif tag == _T_FLOAT:
                    end = pos + 8
                    if end > length:
                        buf._pos = pos
                        raise WireFormatError(
                            f"truncated stream: need 8 bytes at offset "
                            f"{pos}, have {length - pos}"
                        )
                    value = unpack_f64(mv, pos)[0]
                    pos = end
                elif tag == _T_NONE:
                    value = None
                elif tag == _T_TRUE:
                    value = True
                elif tag == _T_FALSE:
                    value = False
                elif tag == _T_BYTES:
                    byte = mv[pos]
                    pos += 1
                    if byte & 0x80:
                        count = byte & 0x7F
                        shift = 7
                        while True:
                            byte = mv[pos]
                            pos += 1
                            count |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 70:
                                buf._pos = pos
                                raise WireFormatError(
                                    "uvarint too long (corrupt stream)"
                                )
                    else:
                        count = byte
                    end = pos + count
                    if end > length:
                        buf._pos = pos
                        raise WireFormatError(
                            f"truncated stream: need {count} bytes at offset "
                            f"{pos}, have {length - pos}"
                        )
                    value = bytes(mv[pos:end])
                    pos = end
                    handles.append(value)
                elif tag == _T_OBJECT:
                    # Nested object: decode the class key, open the child
                    # frame in place, and keep draining inside it.
                    byte = mv[pos]
                    pos += 1
                    if byte & 0x80:
                        key = byte & 0x7F
                        shift = 7
                        while True:
                            byte = mv[pos]
                            pos += 1
                            key |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 70:
                                buf._pos = pos
                                raise WireFormatError(
                                    "uvarint too long (corrupt stream)"
                                )
                    else:
                        key = byte
                    if schema_rx is None:
                        if key:
                            try:
                                entry = classes[key - 1]
                            except IndexError:
                                buf._pos = pos
                                raise WireFormatError(
                                    f"dangling class id {key}"
                                ) from None
                        else:
                            buf._pos = pos
                            entry = self._read_inline_class()
                            pos = buf._pos
                    elif key >= CKEY_STREAM_BASE:
                        try:
                            entry = classes[key - CKEY_STREAM_BASE]
                        except IndexError:
                            buf._pos = pos
                            raise WireFormatError(
                                f"dangling class id {key}"
                            ) from None
                    else:
                        buf._pos = pos
                        entry = self._read_schema_class_key(key)
                        pos = buf._pos
                    cls, wire_version, plan = entry
                    # field count (inline uvarint)
                    byte = mv[pos]
                    pos += 1
                    if byte & 0x80:
                        count = byte & 0x7F
                        shift = 7
                        while True:
                            byte = mv[pos]
                            pos += 1
                            count |= (byte & 0x7F) << shift
                            if not byte & 0x80:
                                break
                            shift += 7
                            if shift > 70:
                                buf._pos = pos
                                raise WireFormatError(
                                    "uvarint too long (corrupt stream)"
                                )
                    else:
                        count = byte
                    cur.pending_name = name
                    cur.remaining = remaining
                    child = _Frame(_F_OBJECT, count)
                    if plan is not None:
                        child_shell = plan.factory()
                        needs_resolve = plan.needs_resolve
                        if wire_version != plan.version and plan.has_upgrade:
                            child.wire_version = wire_version
                        if plan.use_dict:
                            child.field_dict = child_shell.__dict__
                    else:
                        child_shell = accessor_new(cls)
                        needs_resolve = has_resolve(cls)
                        if wire_version != class_version(cls) and has_upgrade(
                            cls
                        ):
                            child.wire_version = wire_version
                    child.needs_resolve = needs_resolve
                    child.shell = child_shell
                    child.handle_slot = len(handles)
                    handles.append(child_shell)
                    if not needs_resolve:
                        slot = lm_append(child_shell)
                        if capture:
                            child.linear_slot = slot
                    stack.append(child)
                    cur = child
                    shell = child_shell
                    field_dict = child.field_dict
                    remaining = count
                    continue
                else:
                    # Other value shape: un-consume the tag byte and hand
                    # the parked name to the generic frame machine.
                    pos -= 1
                    cur.pending_name = name
                    break
                if field_dict is not None:
                    field_dict[name] = value
                else:
                    set_field(shell, name, value)
                remaining -= 1
        except IndexError:
            # mv[pos] past the end: the stream ended mid-field.
            buf._pos = min(pos, length)
            raise WireFormatError(
                f"truncated stream: need 1 bytes at offset {length}, have 0"
            ) from None
        except UnicodeDecodeError as exc:
            buf._pos = pos
            raise WireFormatError(f"invalid UTF-8 in string: {exc}") from exc
        buf._pos = pos
        cur.remaining = remaining

    def _spawn_object_frame(self, entry: tuple, count: int) -> _Frame:
        """Open the decoding frame for one object whose class key and
        field count have been consumed (shell registered, digest slot
        noted). Shared by ``_step`` and the generated decoders' bail
        paths."""
        cls, wire_version, plan = entry
        frame = _Frame(_F_OBJECT, count)
        if plan is not None:
            frame.shell = plan.factory()
            frame.needs_resolve = plan.needs_resolve
            if wire_version != plan.version and plan.has_upgrade:
                frame.wire_version = wire_version
            if plan.use_dict:
                frame.field_dict = frame.shell.__dict__
        else:
            frame.shell = self.profile.accessor.new_instance(cls)
            frame.needs_resolve = has_resolve(cls)
            if wire_version != class_version(cls) and has_upgrade(cls):
                frame.wire_version = wire_version
        # Mirrors the writer: readResolve classes are value-like and
        # stay out of the linear map, keeping the maps index-aligned.
        frame.handle_slot = self._register(
            frame.shell, mutable=not frame.needs_resolve
        )
        if self._digest_accessor is not None and not frame.needs_resolve:
            frame.linear_slot = len(self.linear_map) - 1
        return frame

    def _step(self, stack: List[_Frame]) -> Any:
        """Read one value header; return a value or push a frame."""
        if stack:
            frame = stack[-1]
            if frame.kind == _F_OBJECT and frame.pending_name is None:
                frame.pending_name = self._read_name()
        buf = self._buf
        tag = buf.read_u8()
        if tag == Tag.NONE:
            return None
        if tag == Tag.TRUE:
            return True
        if tag == Tag.FALSE:
            return False
        if tag == Tag.INT:
            return buf.read_varint()
        if tag == Tag.INT_BIG:
            negative = buf.read_u8()
            # read_len_view: int.from_bytes consumes the span in place,
            # so no intermediate bytes copy (matters on borrowed input).
            magnitude = int.from_bytes(buf.read_len_view(), "big")
            return -magnitude if negative else magnitude
        if tag == Tag.FLOAT:
            return buf.read_f64()
        if tag == Tag.COMPLEX:
            return complex(buf.read_f64(), buf.read_f64())
        if tag == Tag.STR:
            value = buf.read_str()
            self._register(value, mutable=False)
            return value
        if tag == Tag.BYTES:
            value = buf.read_len_bytes()
            self._register(value, mutable=False)
            return value
        if tag == Tag.BYTEARRAY:
            # read_len_view: the bytearray constructor is the one copy
            # this value needs; read_len_bytes would make it two.
            value = bytearray(buf.read_len_view())
            self._register(value, mutable=True)
            if self._digest_accessor is not None:
                # Complete at registration (no frame): digest immediately.
                self._capture_slot(len(self.linear_map) - 1, value)
            return value
        if tag == Tag.REF:
            slot = buf.read_uvarint()
            try:
                obj = self._handles[slot]
            except IndexError:
                raise WireFormatError(f"dangling handle {slot}") from None
            if obj is _NO_VALUE:
                raise WireFormatError(f"forward reference to handle {slot}")
            return obj
        if tag == Tag.LIST:
            count = buf.read_uvarint()
            frame = _Frame(_F_LIST, count)
            frame.shell = []
            self._register(frame.shell, mutable=True)
            if self._digest_accessor is not None:
                frame.linear_slot = len(self.linear_map) - 1
            stack.append(frame)
            return _FRAME_PUSHED
        if tag == Tag.TUPLE:
            count = buf.read_uvarint()
            frame = _Frame(_F_TUPLE, count)
            frame.items = []
            frame.handle_slot = self._reserve()
            stack.append(frame)
            return _FRAME_PUSHED
        if tag == Tag.SET:
            count = buf.read_uvarint()
            frame = _Frame(_F_SET, count)
            frame.shell = set()
            self._register(frame.shell, mutable=True)
            if self._digest_accessor is not None:
                frame.linear_slot = len(self.linear_map) - 1
            stack.append(frame)
            return _FRAME_PUSHED
        if tag == Tag.FROZENSET:
            count = buf.read_uvarint()
            frame = _Frame(_F_FROZENSET, count)
            frame.items = []
            frame.handle_slot = self._reserve()
            stack.append(frame)
            return _FRAME_PUSHED
        if tag == Tag.DICT:
            count = buf.read_uvarint()
            frame = _Frame(_F_DICT, count * 2)
            frame.shell = {}
            self._register(frame.shell, mutable=True)
            if self._digest_accessor is not None:
                frame.linear_slot = len(self.linear_map) - 1
            stack.append(frame)
            return _FRAME_PUSHED
        if tag == Tag.OBJECT:
            entry = self._read_class()
            plan = entry[2]
            if plan is not None and plan.decode_fn is not None:
                # Generated decoder: reads its own field count, returns the
                # finished object — or BAIL after parking frames in exactly
                # the mid-object state the machine expects.
                value = plan.decode_fn(self, stack, entry[1])
                if value is BAIL:
                    return _FRAME_PUSHED
                return value
            count = buf.read_uvarint()
            stack.append(self._spawn_object_frame(entry, count))
            return _FRAME_PUSHED
        if tag == Tag.EXTERNAL:
            ext_name = self._read_name()
            payload = buf.read_len_bytes()
            ext = self._local_externalizers.get(ext_name)
            if ext is None:
                ext = self.registry.externalizer_named(ext_name)
            resolved = ext.resolve(payload)
            self._register(resolved, mutable=False)
            return resolved
        raise WireFormatError(f"unknown tag byte 0x{tag:02x}")

    def _deliver(self, frame: _Frame, value: Any) -> None:
        frame.remaining -= 1
        kind = frame.kind
        if kind == _F_LIST:
            frame.shell.append(value)
        elif kind == _F_DICT:
            if frame.has_pending_key:
                frame.shell[frame.pending_key] = value
                frame.pending_key = None
                frame.has_pending_key = False
            else:
                frame.pending_key = value
                frame.has_pending_key = True
        elif kind == _F_SET:
            frame.shell.add(value)
        elif kind == _F_OBJECT:
            if frame.pending_name is None:
                raise WireFormatError("object field value without a field name")
            self._set_field(frame.shell, frame.pending_name, value)
            frame.pending_name = None
        else:  # tuple / frozenset accumulate
            frame.items.append(value)

    def _finish(self, frame: _Frame) -> Any:
        kind = frame.kind
        if kind == _F_TUPLE:
            value = tuple(frame.items)
            self._handles[frame.handle_slot] = value
            return value
        if kind == _F_FROZENSET:
            value = frozenset(frame.items)
            self._handles[frame.handle_slot] = value
            return value
        if frame.wire_version is not None:
            # Schema evolution: the stream was written by a different
            # class version; let the class migrate the decoded state.
            apply_upgrade(frame.shell, frame.wire_version)
        if frame.needs_resolve:
            # readResolve analogue: the canonical object replaces the
            # decoded shell everywhere (later back references included;
            # references inside a cycle through the shell are the same
            # documented limitation Java's readResolve has).
            resolved = apply_resolve(frame.shell)
            self._handles[frame.handle_slot] = resolved
            return resolved
        if frame.linear_slot >= 0:
            # Fused digest capture: the slot's shallow state is final once
            # its frame finishes (its children are decoded; cycles enter
            # the token as identity refs), so digest it here instead of
            # re-walking the linear map after decoding.
            self._capture_slot(frame.linear_slot, frame.shell)
        return frame.shell

    # ------------------------------------------------- fused digest capture

    def _capture_slot(self, index: int, obj: Any) -> None:
        tokens = self._digest_tokens
        while len(tokens) <= index:
            tokens.append(None)
        writer = self._digest_writer
        writer.reset()
        _encode_slot(writer, obj, self._digest_accessor, self._digest_pins)
        tokens[index] = writer.getvalue()

    def digest_table(self, indices: List[int]) -> SlotDigestTable:
        """The fused "before" digest table for *indices* (linear-map
        positions), equivalent to ``digest_slots`` over those slots.

        Only valid when the reader was built with ``digest_accessor``.
        Slots that somehow escaped capture (defensive: e.g. registered by
        a hook outside the frame machine) are digested on demand.
        """
        captured = self._digest_tokens
        captured_len = len(captured)
        slots = self.linear_map
        accessor = self._digest_accessor
        pins = self._digest_pins
        tokens: List[bytes] = []
        sizes: List[int] = []
        for index in indices:
            token = captured[index] if index < captured_len else None
            if token is None:
                writer = self._digest_writer
                writer.reset()
                _encode_slot(writer, slots[index], accessor, pins)
                token = writer.getvalue()
            tokens.append(token)
            sizes.append(len(token))
        return SlotDigestTable(tokens, sizes, pins)


def decode_graph(
    data,
    count: int = 1,
    profile: SerializationProfile = MODERN_PROFILE,
    registry: Optional[ClassRegistry] = None,
) -> tuple:
    """Decode *count* roots; return ``(roots_list, linear_map)``."""
    reader = ObjectReader(data, profile=profile, registry=registry)
    roots = [reader.read_root() for _ in range(count)]
    return roots, reader.linear_map
