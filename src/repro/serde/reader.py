"""The decoder: reconstructs object graphs from the NRMI wire format.

Like the writer, the reader is **iterative** — a frame stack instead of
recursion — and it rebuilds the handle table (and therefore the linear map)
as a side effect of decoding, in exactly the order the writer allocated
handles. This is the paper's optimization 5.2.4 #1: the linear map is never
transmitted; the receiving side reconstructs it during deserialization.

Cycles are handled by registering *shells* for mutable containers and
objects before their contents are read; back references resolve to the
shell, which is filled in as decoding proceeds. Immutable containers
(tuples, frozensets) cannot be shelled, but a cycle through an immutable
container is unconstructable in Python in the first place.

Profile split (mirrors the writer): the legacy profile reads through the
slice-copying buffer that models JDK 1.3's stream layer and re-derives
per-class facts for every object; the modern profile reads through a
``memoryview`` with no per-primitive copies, caches per-class decode plans
(:mod:`repro.serde.plans`), and drains runs of scalar fields in a tight
inline loop instead of one full frame-machine cycle per field.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import WireFormatError
from repro.serde.hooks import (
    apply_resolve,
    apply_upgrade,
    class_version,
    has_resolve,
    has_upgrade,
)
from repro.serde.linear_map import LinearMap
from repro.serde.profiles import MODERN_PROFILE, SerializationProfile
from repro.serde.registry import ClassRegistry, global_registry
from repro.serde.tags import Tag, WIRE_MAGIC, WIRE_VERSION
from repro.util.buffers import BufferReader, SlicingBufferReader

_NO_VALUE = object()
_FRAME_PUSHED = object()

# Frame kinds.
_F_LIST = 0
_F_TUPLE = 1
_F_SET = 2
_F_FROZENSET = 3
_F_DICT = 4
_F_OBJECT = 5

# Tag bytes as plain ints for the scalar drain loop (mirrors Tag; enum
# attribute access and __eq__ are measurable in the per-field hot path).
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x05
_T_STR = 0x07
_T_BYTES = 0x08
_T_REF = 0x09


class _Frame:
    """Decoding state for one container whose children are still arriving."""

    __slots__ = (
        "kind",
        "remaining",
        "shell",
        "items",
        "handle_slot",
        "pending_key",
        "has_pending_key",
        "pending_name",
        "needs_resolve",
        "wire_version",
    )

    def __init__(self, kind: int, remaining: int) -> None:
        self.kind = kind
        self.remaining = remaining
        self.shell: Any = None
        self.items: Optional[List[Any]] = None
        self.handle_slot = -1
        self.pending_key: Any = None
        self.has_pending_key = False
        self.pending_name: Optional[str] = None
        self.needs_resolve = False
        self.wire_version: Optional[int] = None


class ObjectReader:
    """Decodes a stream produced by :class:`repro.serde.writer.ObjectWriter`.

    *data* may be ``bytes``, ``bytearray``, or a ``memoryview`` — the modern
    profile decodes through a view without copying the payload.
    """

    def __init__(
        self,
        data,
        profile: SerializationProfile = MODERN_PROFILE,
        registry: Optional[ClassRegistry] = None,
        externalizers: tuple = (),
    ) -> None:
        self.profile = profile
        self.registry = registry if registry is not None else global_registry
        self._local_externalizers = {ext.name: ext for ext in externalizers}
        self.linear_map = LinearMap()
        if profile.chunked_buffers:
            self._buf = SlicingBufferReader(data)
        else:
            self._buf = BufferReader(data)
        self._handles: List[Any] = []
        self._classes: List[tuple] = []  # (class, wire_version, plan-or-None)
        self._names: List[str] = []
        # Decode plans mirror the writer's gating: they bake in interned
        # descriptors and no per-object validation.
        self._use_plans = (
            profile.use_compiled_plans
            and profile.intern_descriptors
            and not profile.per_object_validation
        )
        self._set_field = profile.accessor.set_field
        magic = self._buf.read_bytes(len(WIRE_MAGIC))
        if magic != WIRE_MAGIC:
            raise WireFormatError(f"bad magic {magic!r}; not an NRMI stream")
        version = self._buf.read_u8()
        if version != WIRE_VERSION:
            raise WireFormatError(
                f"unsupported wire version {version} (expected {WIRE_VERSION})"
            )
        self._buf.read_u8()  # reserved flags

    # ------------------------------------------------------------------ API

    def read_root(self) -> Any:
        """Decode and return the next root value in the stream."""
        return self._read_value()

    def at_end(self) -> bool:
        return self._buf.remaining == 0

    def expect_end(self) -> None:
        self._buf.expect_end()

    # ------------------------------------------------------------ internals

    def _register(self, obj: Any, mutable: bool) -> int:
        slot = len(self._handles)
        self._handles.append(obj)
        if mutable:
            self.linear_map.append(obj)
        return slot

    def _reserve(self) -> int:
        slot = len(self._handles)
        self._handles.append(_NO_VALUE)
        return slot

    def _read_class(self) -> tuple:
        """Return (class, wire_version, decode_plan_or_None) for a class key."""
        key = self._buf.read_uvarint()
        if key == 0:
            cls = self.registry.class_for(self._buf.read_str())
            plan = self.registry.decode_plan_for(cls) if self._use_plans else None
            entry = (cls, self._buf.read_uvarint(), plan)
            self._classes.append(entry)
            return entry
        try:
            return self._classes[key - 1]
        except IndexError:
            raise WireFormatError(f"dangling class id {key}") from None

    def _read_name(self) -> str:
        key = self._buf.read_uvarint()
        if key == 0:
            name = self._buf.read_str()
            self._names.append(name)
            return name
        try:
            return self._names[key - 1]
        except IndexError:
            raise WireFormatError(f"dangling name id {key}") from None

    def _read_value(self) -> Any:
        fast = self._use_plans
        stack: List[_Frame] = []
        result: Any = _NO_VALUE
        while True:
            if result is _NO_VALUE:
                result = self._step(stack)
                if result is _FRAME_PUSHED:
                    result = _NO_VALUE
                    frame = stack[-1]
                    if fast and frame.kind == _F_OBJECT and frame.remaining:
                        self._drain_object_fields(frame)
                    if frame.remaining == 0:
                        stack.pop()
                        result = self._finish(frame)
                    continue
            if not stack:
                return result
            frame = stack[-1]
            self._deliver(frame, result)
            result = _NO_VALUE
            if (
                fast
                and frame.remaining
                and frame.kind == _F_OBJECT
                and frame.pending_name is None
            ):
                # Back from decoding a non-scalar field value: resume the
                # inline scalar drain before paying full frame-machine
                # cycles for the (typically scalar) fields that follow.
                self._drain_object_fields(frame)
            if frame.remaining == 0:
                stack.pop()
                result = self._finish(frame)

    def _drain_object_fields(self, frame: _Frame) -> None:
        """Consume consecutive scalar-valued fields of an object frame.

        Reads ``name, tag, payload`` triples directly — no `_Frame`
        bookkeeping, no ``_deliver`` dispatch — until a field's value is a
        container/object/rarity, at which point the already-read name is
        parked on ``frame.pending_name`` and the generic machinery takes
        over exactly where it would have been.
        """
        buf = self._buf
        shell = frame.shell
        set_field = self._set_field
        read_name = self._read_name
        handles = self._handles
        peek = buf.peek_u8
        read_u8 = buf.read_u8
        remaining = frame.remaining
        while remaining:
            name = read_name()
            tag = peek()
            if tag == _T_INT:
                read_u8()
                value = buf.read_varint()
            elif tag == _T_STR:
                read_u8()
                value = buf.read_str()
                handles.append(value)
            elif tag == _T_REF:
                read_u8()
                slot = buf.read_uvarint()
                try:
                    value = handles[slot]
                except IndexError:
                    raise WireFormatError(f"dangling handle {slot}") from None
                if value is _NO_VALUE:
                    raise WireFormatError(f"forward reference to handle {slot}")
            elif tag == _T_FLOAT:
                read_u8()
                value = buf.read_f64()
            elif tag == _T_NONE:
                read_u8()
                value = None
            elif tag == _T_TRUE:
                read_u8()
                value = True
            elif tag == _T_FALSE:
                read_u8()
                value = False
            elif tag == _T_BYTES:
                read_u8()
                value = buf.read_len_bytes()
                handles.append(value)
            else:
                frame.pending_name = name
                break
            set_field(shell, name, value)
            remaining -= 1
        frame.remaining = remaining

    def _step(self, stack: List[_Frame]) -> Any:
        """Read one value header; return a value or push a frame."""
        if stack:
            frame = stack[-1]
            if frame.kind == _F_OBJECT and frame.pending_name is None:
                frame.pending_name = self._read_name()
        buf = self._buf
        tag = buf.read_u8()
        if tag == Tag.NONE:
            return None
        if tag == Tag.TRUE:
            return True
        if tag == Tag.FALSE:
            return False
        if tag == Tag.INT:
            return buf.read_varint()
        if tag == Tag.INT_BIG:
            negative = buf.read_u8()
            magnitude = int.from_bytes(buf.read_len_bytes(), "big")
            return -magnitude if negative else magnitude
        if tag == Tag.FLOAT:
            return buf.read_f64()
        if tag == Tag.COMPLEX:
            return complex(buf.read_f64(), buf.read_f64())
        if tag == Tag.STR:
            value = buf.read_str()
            self._register(value, mutable=False)
            return value
        if tag == Tag.BYTES:
            value = buf.read_len_bytes()
            self._register(value, mutable=False)
            return value
        if tag == Tag.BYTEARRAY:
            value = bytearray(buf.read_len_bytes())
            self._register(value, mutable=True)
            return value
        if tag == Tag.REF:
            slot = buf.read_uvarint()
            try:
                obj = self._handles[slot]
            except IndexError:
                raise WireFormatError(f"dangling handle {slot}") from None
            if obj is _NO_VALUE:
                raise WireFormatError(f"forward reference to handle {slot}")
            return obj
        if tag == Tag.LIST:
            count = buf.read_uvarint()
            frame = _Frame(_F_LIST, count)
            frame.shell = []
            self._register(frame.shell, mutable=True)
            stack.append(frame)
            return _FRAME_PUSHED
        if tag == Tag.TUPLE:
            count = buf.read_uvarint()
            frame = _Frame(_F_TUPLE, count)
            frame.items = []
            frame.handle_slot = self._reserve()
            stack.append(frame)
            return _FRAME_PUSHED
        if tag == Tag.SET:
            count = buf.read_uvarint()
            frame = _Frame(_F_SET, count)
            frame.shell = set()
            self._register(frame.shell, mutable=True)
            stack.append(frame)
            return _FRAME_PUSHED
        if tag == Tag.FROZENSET:
            count = buf.read_uvarint()
            frame = _Frame(_F_FROZENSET, count)
            frame.items = []
            frame.handle_slot = self._reserve()
            stack.append(frame)
            return _FRAME_PUSHED
        if tag == Tag.DICT:
            count = buf.read_uvarint()
            frame = _Frame(_F_DICT, count * 2)
            frame.shell = {}
            self._register(frame.shell, mutable=True)
            stack.append(frame)
            return _FRAME_PUSHED
        if tag == Tag.OBJECT:
            cls, wire_version, plan = self._read_class()
            count = buf.read_uvarint()
            frame = _Frame(_F_OBJECT, count)
            if plan is not None:
                frame.shell = plan.factory()
                frame.needs_resolve = plan.needs_resolve
                if wire_version != plan.version and plan.has_upgrade:
                    frame.wire_version = wire_version
            else:
                frame.shell = self.profile.accessor.new_instance(cls)
                frame.needs_resolve = has_resolve(cls)
                if wire_version != class_version(cls) and has_upgrade(cls):
                    frame.wire_version = wire_version
            # Mirrors the writer: readResolve classes are value-like and
            # stay out of the linear map, keeping the maps index-aligned.
            frame.handle_slot = self._register(
                frame.shell, mutable=not frame.needs_resolve
            )
            stack.append(frame)
            return _FRAME_PUSHED
        if tag == Tag.EXTERNAL:
            ext_name = self._read_name()
            payload = buf.read_len_bytes()
            ext = self._local_externalizers.get(ext_name)
            if ext is None:
                ext = self.registry.externalizer_named(ext_name)
            resolved = ext.resolve(payload)
            self._register(resolved, mutable=False)
            return resolved
        raise WireFormatError(f"unknown tag byte 0x{tag:02x}")

    def _deliver(self, frame: _Frame, value: Any) -> None:
        frame.remaining -= 1
        kind = frame.kind
        if kind == _F_LIST:
            frame.shell.append(value)
        elif kind == _F_DICT:
            if frame.has_pending_key:
                frame.shell[frame.pending_key] = value
                frame.pending_key = None
                frame.has_pending_key = False
            else:
                frame.pending_key = value
                frame.has_pending_key = True
        elif kind == _F_SET:
            frame.shell.add(value)
        elif kind == _F_OBJECT:
            if frame.pending_name is None:
                raise WireFormatError("object field value without a field name")
            self._set_field(frame.shell, frame.pending_name, value)
            frame.pending_name = None
        else:  # tuple / frozenset accumulate
            frame.items.append(value)

    def _finish(self, frame: _Frame) -> Any:
        kind = frame.kind
        if kind == _F_TUPLE:
            value = tuple(frame.items)
            self._handles[frame.handle_slot] = value
            return value
        if kind == _F_FROZENSET:
            value = frozenset(frame.items)
            self._handles[frame.handle_slot] = value
            return value
        if frame.wire_version is not None:
            # Schema evolution: the stream was written by a different
            # class version; let the class migrate the decoded state.
            apply_upgrade(frame.shell, frame.wire_version)
        if frame.needs_resolve:
            # readResolve analogue: the canonical object replaces the
            # decoded shell everywhere (later back references included;
            # references inside a cycle through the shell are the same
            # documented limitation Java's readResolve has).
            resolved = apply_resolve(frame.shell)
            self._handles[frame.handle_slot] = resolved
            return resolved
        return frame.shell


def decode_graph(
    data,
    count: int = 1,
    profile: SerializationProfile = MODERN_PROFILE,
    registry: Optional[ClassRegistry] = None,
) -> tuple:
    """Decode *count* roots; return ``(roots_list, linear_map)``."""
    reader = ObjectReader(data, profile=profile, registry=registry)
    roots = [reader.read_root() for _ in range(count)]
    return roots, reader.linear_map
