"""Per-slot digests for the dirty-slot delta reply protocol.

After the server deserializes a call's arguments, every retained
linear-map slot gets a *digest*: a canonical shallow encoding of the
slot's state (primitives by value, references by pinned identity). When
the reply is built, the digests are recomputed and compared — slots whose
digests still match are **clean** and are elided from the reply; the rest
are **dirty** and ship in full. The guarantee is conservative: equal
digests imply the slot is unchanged, while a false "dirty" merely costs
bytes, never correctness.

Why not reuse the request-stream bytes directly? A slot's stream encoding
embeds handle numbers assigned in stream order, so re-encoding the same
unchanged slot inside a *reply* stream yields different bytes. The
canonical shallow token below is order-independent: value-encode
primitives, recurse through immutable containers, and reduce every other
reference to its ``id()``. Identity tokens are sound because every
id-tokenized object is *pinned* (a strong reference is kept for the life
of the digest table), so CPython cannot recycle its id for a new object
allocated during the call.
"""

from __future__ import annotations

from typing import Any, List

from repro.errors import RestoreError
from repro.serde.accessors import FieldAccessor
from repro.serde.kinds import Kind, classify
from repro.util.buffers import BufferWriter

# Token tags for the canonical shallow encoding. These never travel on the
# wire — both digest passes run on the same server — but keeping them
# disjoint makes the encoding prefix-free and unambiguous.
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_COMPLEX = 5
_T_STR = 6
_T_BYTES = 7
_T_TUPLE = 8
_T_FROZENSET = 9
_T_REF = 10
_T_BIGINT = 11

_MAX_IMMUTABLE_DEPTH = 16

#: Number of full linear-map walks :func:`digest_slots` has performed in
#: this process. Test observability for the fused decode+digest pass: a
#: delta-slots call whose "before" table was captured during decoding
#: performs exactly one walk (reply time) instead of two.
walk_count = 0


class SlotDigestTable:
    """Digests for one retained list, plus the pins keeping ids stable."""

    __slots__ = ("tokens", "sizes", "_pins")

    def __init__(self, tokens: List[bytes], sizes: List[int], pins: List[Any]) -> None:
        self.tokens = tokens
        self.sizes = sizes
        self._pins = pins

    def __len__(self) -> int:
        return len(self.tokens)

    def dirty_indices(self, current: "SlotDigestTable") -> List[int]:
        """Positions whose digest changed between this table and *current*."""
        if len(current.tokens) != len(self.tokens):
            raise RestoreError(
                "digest tables cover different retained lists: "
                f"{len(self.tokens)} vs {len(current.tokens)} slots"
            )
        return [
            index
            for index, (before, after) in enumerate(
                zip(self.tokens, current.tokens)
            )
            if before != after
        ]


def _encode_value(writer: BufferWriter, value: Any, pins: List[Any], depth: int) -> None:
    """Append the shallow token of one referenced *value*."""
    value_type = type(value)
    if value is None:
        writer.write_u8(_T_NONE)
    elif value_type is bool:
        writer.write_u8(_T_TRUE if value else _T_FALSE)
    elif value_type is int:
        if -(1 << 63) <= value < (1 << 63):
            writer.write_u8(_T_INT)
            writer.write_varint(value)
        else:
            writer.write_u8(_T_BIGINT)
            writer.write_len_bytes(repr(value).encode("ascii"))
    elif value_type is float:
        writer.write_u8(_T_FLOAT)
        writer.write_f64(value)
    elif value_type is complex:
        writer.write_u8(_T_COMPLEX)
        writer.write_f64(value.real)
        writer.write_f64(value.imag)
    elif value_type is str:
        writer.write_u8(_T_STR)
        writer.write_str(value)
    elif value_type is bytes:
        writer.write_u8(_T_BYTES)
        writer.write_len_bytes(value)
    elif value_type is tuple and depth < _MAX_IMMUTABLE_DEPTH:
        writer.write_u8(_T_TUPLE)
        writer.write_uvarint(len(value))
        for item in value:
            _encode_value(writer, item, pins, depth + 1)
    elif value_type is frozenset and depth < _MAX_IMMUTABLE_DEPTH:
        # Order-insensitive: XOR the per-element token hashes so two equal
        # frozensets digest identically whatever their iteration order.
        writer.write_u8(_T_FROZENSET)
        writer.write_uvarint(len(value))
        mixed = 0
        for item in value:
            item_writer = BufferWriter()
            _encode_value(item_writer, item, pins, depth + 1)
            mixed ^= hash(item_writer.getvalue())
        writer.write_i64(mixed & ((1 << 63) - 1))
    else:
        # Everything else (mutable objects, subclasses of primitives,
        # remote stubs, deep immutables) compares by identity. Pin the
        # object so its id stays unique for the table's lifetime.
        writer.write_u8(_T_REF)
        writer.write_uvarint(id(value))
        pins.append(value)


def _encode_slot(writer: BufferWriter, obj: Any, accessor: FieldAccessor, pins: List[Any]) -> None:
    """Append the canonical shallow encoding of one linear-map slot."""
    kind = classify(obj)
    if kind is Kind.OBJECT:
        state = accessor.get_state(obj)
        writer.write_uvarint(len(state))
        for name, value in state:
            writer.write_str(name)
            _encode_value(writer, value, pins, 0)
    elif kind is Kind.LIST:
        writer.write_uvarint(len(obj))
        for item in obj:
            _encode_value(writer, item, pins, 0)
    elif kind is Kind.DICT:
        writer.write_uvarint(len(obj))
        for key, value in obj.items():
            _encode_value(writer, key, pins, 0)
            _encode_value(writer, value, pins, 0)
    elif kind is Kind.SET:
        # Order-insensitive mix, same trick as frozensets above.
        writer.write_uvarint(len(obj))
        mixed = 0
        for item in obj:
            item_writer = BufferWriter()
            _encode_value(item_writer, item, pins, 0)
            mixed ^= hash(item_writer.getvalue())
        writer.write_i64(mixed & ((1 << 63) - 1))
    elif kind is Kind.BYTEARRAY:
        writer.write_len_bytes(obj)
    else:
        raise RestoreError(f"cannot digest linear-map slot of kind {kind}")


def digest_slots(slots: List[Any], accessor: FieldAccessor) -> SlotDigestTable:
    """Digest every slot of a retained list.

    Historically ran twice per delta-slots call: once right after
    deserialization (the "before" picture) and once at reply-encode time.
    With the fused decode+digest pass the "before" table is captured
    during deserialization itself, leaving only the reply-time walk here.
    """
    global walk_count
    walk_count += 1
    tokens: List[bytes] = []
    sizes: List[int] = []
    pins: List[Any] = []
    writer = BufferWriter()
    for obj in slots:
        writer.reset()
        _encode_slot(writer, obj, accessor, pins)
        token = writer.getvalue()
        tokens.append(token)
        sizes.append(len(token))
    return SlotDigestTable(tokens, sizes, pins)
