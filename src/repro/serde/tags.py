"""Wire-format type tags.

Every encoded value starts with one tag byte; every tag's payload is
self-describing, so the stream can be decoded in a single pass.
"""

from __future__ import annotations

from enum import IntEnum

WIRE_MAGIC = b"NRM1"
WIRE_VERSION = 1


class Tag(IntEnum):
    """One byte of type information preceding each encoded value."""

    NONE = 0x00
    TRUE = 0x01
    FALSE = 0x02
    INT = 0x03        # zig-zag varint, fits in 64 bits
    INT_BIG = 0x04    # sign byte + magnitude bytes (arbitrary precision)
    FLOAT = 0x05      # IEEE-754 double
    COMPLEX = 0x06    # two doubles
    STR = 0x07        # registers a handle (value-memoized by the writer)
    BYTES = 0x08      # registers a handle
    REF = 0x09        # uvarint back reference into the handle table
    LIST = 0x0A       # mutable: enters the linear map
    TUPLE = 0x0B
    SET = 0x0C        # mutable: enters the linear map
    FROZENSET = 0x0D
    DICT = 0x0E       # mutable: enters the linear map
    BYTEARRAY = 0x0F  # mutable: enters the linear map
    OBJECT = 0x10     # mutable: enters the linear map
    EXTERNAL = 0x11   # externalizer hook (e.g. remote references)


# Tags that allocate a new handle when encountered in the stream, in the
# exact order the writer allocated them. The decoder mirrors this rule to
# reconstruct the handle table (and linear map) without transmitting either.
HANDLE_TAGS = frozenset(
    {
        Tag.STR,
        Tag.BYTES,
        Tag.LIST,
        Tag.TUPLE,
        Tag.SET,
        Tag.FROZENSET,
        Tag.DICT,
        Tag.BYTEARRAY,
        Tag.OBJECT,
        Tag.EXTERNAL,
    }
)

# Handle-bearing tags whose objects are mutable, i.e. members of the linear
# map (the objects copy-restore can overwrite in place).
MUTABLE_TAGS = frozenset(
    {Tag.LIST, Tag.SET, Tag.DICT, Tag.BYTEARRAY, Tag.OBJECT}
)
