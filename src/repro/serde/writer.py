"""The encoder: serializes object graphs into the NRMI wire format.

The writer is **iterative** (explicit work stack) so arbitrarily deep
structures — a 100 000-node linked list, a degenerate tree — serialize
without touching the interpreter recursion limit. The traversal is
pre-order; the decoder replays the same order, which is what keeps the two
endpoints' handle tables (and therefore linear maps) index-aligned.

Profiles select the implementation, not the format:

* the **legacy** profile routes every byte through the chunk-list buffer
  that models JDK 1.3's allocation-heavy stream layer and re-derives all
  per-object facts reflectively;
* the **modern** profile writes into a single pooled ``bytearray`` and
  dispatches registered classes through compiled per-class plans
  (:mod:`repro.serde.plans`) — same bytes, a fraction of the work.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import NotSerializableError, SerializationError
from repro.serde.hooks import (
    apply_replace,
    class_version,
    has_replace,
    has_resolve,
    transient_fields,
)
from repro.serde.kinds import Kind, classify
from repro.serde.linear_map import LinearMap
from repro.serde.profiles import MODERN_PROFILE, SerializationProfile
from repro.serde.registry import ClassRegistry, global_registry
from repro.serde.schema import (
    CKEY_SCHEMA_REF,
    CKEY_STREAM_BASE,
    STREAM_FLAG_SCHEMA_CACHE,
    SchemaTxCache,
)
from repro.serde.tags import Tag, WIRE_MAGIC, WIRE_VERSION
from repro.util.buffers import BufferWriter, ChunkedBufferWriter
from repro.util.identity import IdentityMap

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

# Work-stack task opcodes.
_EMIT_VALUE = 0
_EMIT_NAME = 1

_MISSING = object()

#: Default cap on the writer's string/bytes value memos. Memoization keeps
#: equal strings shared on the wire; the cap bounds memory for long-lived
#: writers streaming many distinct values. Past the cap, values are written
#: in full again — byte streams stay decodable, only dedup stops.
DEFAULT_MEMO_LIMIT = 4096


class ObjectWriter:
    """Serializes one or more root values into a single stream.

    All roots written through one ``ObjectWriter`` share one handle table,
    so aliasing *across* the parameters of a remote call is preserved — the
    property Section 4.1 of the paper calls out as wrongly believed
    impossible for copy-restore middleware.

    *buffer* lets callers (the invocation pipeline) supply recycled
    ``bytearray`` storage from a :class:`repro.util.buffers.BufferPool`;
    it is ignored for profiles that use the chunked legacy buffer.

    *out* goes one step further: an externally supplied writer (the
    zero-copy path passes a ``SinkBufferWriter`` over a shm ring
    reservation) becomes the stream destination as-is — nothing is
    cleared and the stream header is appended after whatever the caller
    already wrote (a CALL envelope header). Mutually exclusive with
    *buffer*, and only meaningful for non-chunked profiles.
    """

    def __init__(
        self,
        profile: SerializationProfile = MODERN_PROFILE,
        registry: Optional[ClassRegistry] = None,
        externalizers: Tuple = (),
        collect_stats: bool = False,
        buffer: Optional[bytearray] = None,
        memo_limit: int = DEFAULT_MEMO_LIMIT,
        schema_tx: Optional[SchemaTxCache] = None,
        out: Optional[BufferWriter] = None,
    ) -> None:
        self.profile = profile
        self.registry = registry if registry is not None else global_registry
        self._local_externalizers = tuple(externalizers)
        #: Optional per-tag value counts (opt-in: costs one dict update
        #: per encoded value, so benchmarks leave it off).
        self.stats: Optional[Dict[str, int]] = {} if collect_stats else None
        self.linear_map = LinearMap()
        if out is not None:
            if profile.chunked_buffers:
                raise ValueError("external sinks require a non-chunked profile")
            self._buf = out
        elif profile.chunked_buffers:
            self._buf = ChunkedBufferWriter()
        else:
            self._buf = BufferWriter(buffer)
        self._handles: IdentityMap[int] = IdentityMap()
        self._str_memo: Dict[str, int] = {}
        self._bytes_memo: Dict[bytes, int] = {}
        self._memo_limit = memo_limit
        self._next_handle = 0
        self._class_ids: Dict[type, int] = {}
        self._name_ids: Dict[str, int] = {}
        self._replacements: IdentityMap[Any] = IdentityMap()
        self._root_count = 0
        # Lazily-built tuple of hot internals (buffer storage, handle/memo
        # tables, linear-map internals) bound in one load by generated
        # encoders (repro.serde.codegen). Invalidated whenever any member
        # is *rebound* (discard); in-place mutation keeps it valid.
        self._codegen_ctx: Optional[tuple] = None
        # Compiled-plan fast path. Requires the plan's baked-in assumptions
        # to hold: interned descriptors, no per-object validation pass, and
        # stats collection off (the fast path skips per-value counting).
        if (
            profile.use_compiled_plans
            and profile.intern_descriptors
            and not profile.per_object_validation
            and self.stats is None
        ):
            self._plan_cache: Optional[Dict[type, Any]] = {}
        else:
            self._plan_cache = None
        # exec-generated encoders (repro.serde.codegen) ride on top of the
        # plan pipeline; byte-identical, so the knob is purely perf.
        self._use_codegen = profile.use_codegen
        # Per-class externalizer-claim cache, valid only while every
        # externalizer in play (writer-local and registry) declares its
        # claim a pure function of type.
        if self._plan_cache is not None and all(
            ext.type_based
            for ext in self._local_externalizers + self.registry.externalizers()
        ):
            self._ext_cache: Optional[Dict[type, Any]] = {}
        else:
            self._ext_cache = None
        # Session schema cache (repro.serde.schema): only engaged when the
        # compiled-plan pipeline is fully on — the plan closures are where
        # schema keys are emitted. On other configurations the stream goes
        # out unflagged and byte-identical to a session-less writer.
        if schema_tx is not None and self._ext_cache is not None:
            self._schema_tx: Optional[SchemaTxCache] = schema_tx
            self._class_key_offset = CKEY_STREAM_BASE - 1
        else:
            self._schema_tx = None
            self._class_key_offset = 0
        #: Schema definitions this stream carries (the caller confirms them
        #: once the peer provably decoded this stream).
        self.schemas_defined: List[Any] = []
        self._buf.write_bytes(WIRE_MAGIC)
        self._buf.write_u8(WIRE_VERSION)
        self._buf.write_u8(
            STREAM_FLAG_SCHEMA_CACHE if self._schema_tx is not None else 0
        )

    # ------------------------------------------------------------------ API

    def write_root(self, value: Any) -> None:
        """Serialize one root value (appended after any previous roots)."""
        self._write_value(value)
        self._root_count += 1

    @property
    def root_count(self) -> int:
        return self._root_count

    @property
    def bytes_written(self) -> int:
        return len(self._buf)

    def getvalue(self) -> bytes:
        return self._buf.getvalue()

    def view(self) -> memoryview:
        """Zero-copy view of the stream (see ``BufferWriter.view``)."""
        return self._buf.view()

    def reset_memos(self) -> None:
        """Drop the string/bytes value memos (not the object handle table).

        Long-lived writers encoding many independent roots — e.g. a batch
        pipeline reusing one writer across entries — call this between
        roots to stop memo state accumulating across logically separate
        payloads. Streams written after a reset stay fully decodable.
        """
        self._str_memo.clear()
        self._bytes_memo.clear()

    def discard(self, pool: Optional[Any] = None, buffer: Optional[bytearray] = None) -> None:
        """Abandon a failed encode, returning pooled storage to *pool*.

        The error-path counterpart of the normal send-then-release flow:
        when marshalling raises mid-stream (an unregistered argument, an
        externalizer failure), the half-written pooled *buffer* and the
        writer's memo tables would otherwise leak until the garbage
        collector got around to them — under a chaos run injecting encode
        faults every call, that starves the pool. Clears the memo/handle
        state so the pinned objects are dropped immediately, then hands
        the buffer back.
        """
        self._str_memo.clear()
        self._bytes_memo.clear()
        self._handles = IdentityMap()
        self._replacements = IdentityMap()
        self.linear_map = LinearMap()
        self._codegen_ctx = None
        if pool is not None:
            pool.release(buffer)

    # ------------------------------------------------------------ internals

    def _alloc_handle(self, obj: Any, mutable: bool) -> int:
        handle = self._next_handle
        self._next_handle += 1
        self._handles[obj] = handle
        if mutable:
            self.linear_map.append(obj)
        return handle

    def _write_class_key(self, cls: type) -> None:
        """Write a class reference: interned id, or 0 + name + version."""
        if self.profile.intern_descriptors:
            class_id = self._class_ids.get(cls)
            if class_id is not None:
                # Schema-mode streams shift back references past the
                # def/ref discriminators (CKEY_STREAM_BASE); offset is 0
                # on classic streams.
                self._buf.write_uvarint(class_id + self._class_key_offset)
                return
            self._class_ids[cls] = len(self._class_ids) + 1
        self._buf.write_uvarint(0)
        self._buf.write_str(self.registry.name_of(cls))
        self._buf.write_uvarint(class_version(cls))

    def _write_name_key(self, name: str) -> None:
        """Write a field/externalizer name: interned id, or 0 + inline str."""
        if self.profile.intern_descriptors:
            name_id = self._name_ids.get(name)
            if name_id is not None:
                self._buf.write_uvarint(name_id)
                return
            self._name_ids[name] = len(self._name_ids) + 1
        self._buf.write_uvarint(0)
        self._buf.write_str(name)

    def _emit_schema_class(
        self,
        cls: type,
        version: int,
        class_blob: bytes,
        registered_name: str,
        field_names: List[str],
    ) -> None:
        """Write a first-occurrence class key on a schema-mode stream.

        Emits a 2-3 byte schema reference when the peer provably holds the
        definition, a (re)definition while confirmation is pending, and the
        classic inline descriptor when the id space is exhausted. Either
        schema form also seeds the per-stream field-name table (the reader
        mirrors this), so field-name strings stop crossing the wire.
        """
        entry = self._schema_tx.lookup(cls, version, registered_name, field_names)
        buf = self._buf.raw
        if entry is None:
            buf += class_blob
            return
        if entry.confirmed:
            buf.append(CKEY_SCHEMA_REF)
            schema_id = entry.schema_id
            while schema_id > 0x7F:
                buf.append((schema_id & 0x7F) | 0x80)
                schema_id >>= 7
            buf.append(schema_id)
        else:
            buf += entry.def_blob
            self.schemas_defined.append(entry)
        name_ids = self._name_ids
        for name in entry.field_names:
            if name not in name_ids:
                name_ids[name] = len(name_ids) + 1

    def _validate_object(self, obj: Any, state: List[Tuple[str, Any]]) -> None:
        """Legacy-profile per-object pass (models JDK 1.3 security checks)."""
        seen = set()
        for field_name, _value in state:
            if field_name in seen:
                raise SerializationError(
                    f"duplicate field {field_name!r} on {type(obj).__name__}"
                )
            seen.add(field_name)
        # The legacy stack also re-verifies registration on every object.
        self.registry.name_of(type(obj))

    def _count(self, label: str) -> None:
        if self.stats is not None:
            self.stats[label] = self.stats.get(label, 0) + 1

    def _write_value(self, root: Any) -> None:
        buf = self._buf
        plan_cache = self._plan_cache
        handles = self._handles
        stack: List[Tuple[int, Any]] = [(_EMIT_VALUE, root)]
        while stack:
            opcode, payload = stack.pop()
            if opcode == _EMIT_NAME:
                self._write_name_key(payload)
                continue
            obj = payload
            if self.stats is not None:
                self._count(type(obj).__name__)
            # --- scalars ------------------------------------------------
            if obj is None:
                buf.write_u8(Tag.NONE)
                continue
            if obj is True:
                buf.write_u8(Tag.TRUE)
                continue
            if obj is False:
                buf.write_u8(Tag.FALSE)
                continue
            # --- compiled-plan fast path ---------------------------------
            # Classes land in the cache only after the generic path has
            # proven them plan-safe (registered object kind, no replace
            # hook, no externalizer claim), so dispatching here is exact.
            if plan_cache is not None:
                plan = plan_cache.get(obj.__class__)
                if plan is not None:
                    handle = handles.get(obj)
                    if handle is not None:
                        buf.write_u8(Tag.REF)
                        buf.write_uvarint(handle)
                        continue
                    plan.encode(self, obj, stack)
                    continue
            kind = classify(obj)
            if kind is Kind.OBJECT and has_replace(obj):
                # writeReplace analogue: serialize the designated stand-in.
                # Cached per identity so sharing survives the swap.
                replacement = self._replacements.get(obj)
                if replacement is None:
                    replacement = apply_replace(obj)
                    self._replacements[obj] = replacement
                stack.append((_EMIT_VALUE, replacement))
                continue
            if kind is Kind.PRIMITIVE:
                self._emit_primitive(obj)
                continue
            # --- memoized identities -------------------------------------
            handle = handles.get(obj)
            if handle is not None:
                buf.write_u8(Tag.REF)
                buf.write_uvarint(handle)
                continue
            if kind is Kind.LIST:
                self._alloc_handle(obj, mutable=True)
                buf.write_u8(Tag.LIST)
                buf.write_uvarint(len(obj))
                stack.extend((_EMIT_VALUE, item) for item in reversed(obj))
            elif kind is Kind.TUPLE:
                self._alloc_handle(obj, mutable=False)
                buf.write_u8(Tag.TUPLE)
                buf.write_uvarint(len(obj))
                stack.extend((_EMIT_VALUE, item) for item in reversed(obj))
            elif kind is Kind.SET or kind is Kind.FROZENSET:
                mutable = kind is Kind.SET
                self._alloc_handle(obj, mutable=mutable)
                buf.write_u8(Tag.SET if mutable else Tag.FROZENSET)
                items = list(obj)
                buf.write_uvarint(len(items))
                stack.extend((_EMIT_VALUE, item) for item in reversed(items))
            elif kind is Kind.DICT:
                self._alloc_handle(obj, mutable=True)
                buf.write_u8(Tag.DICT)
                buf.write_uvarint(len(obj))
                for key, value in reversed(list(obj.items())):
                    stack.append((_EMIT_VALUE, value))
                    stack.append((_EMIT_VALUE, key))
            elif kind is Kind.BYTEARRAY:
                self._alloc_handle(obj, mutable=True)
                buf.write_u8(Tag.BYTEARRAY)
                buf.write_len_bytes(bytes(obj))
            elif kind is Kind.OBJECT:
                self._emit_object(obj, stack)
            else:
                # Unsupported shapes get one last chance: a value adapter
                # (datetime, Decimal, UUID, application-registered types).
                ext = self._find_externalizer(obj)
                if ext is None:
                    raise NotSerializableError(
                        obj, path=self._describe_context(stack)
                    )
                self._emit_external(obj, ext)
        # stack drained: root fully written

    def _emit_primitive(self, obj: Any) -> None:
        buf = self._buf
        obj_type = type(obj)
        if obj_type is int or isinstance(obj, int):
            if _INT64_MIN <= obj <= _INT64_MAX:
                buf.write_u8(Tag.INT)
                buf.write_varint(int(obj))
            else:
                buf.write_u8(Tag.INT_BIG)
                magnitude = abs(int(obj))
                buf.write_u8(1 if obj < 0 else 0)
                buf.write_len_bytes(
                    magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
                )
        elif obj_type is float:
            buf.write_u8(Tag.FLOAT)
            buf.write_f64(obj)
        elif obj_type is complex:
            buf.write_u8(Tag.COMPLEX)
            buf.write_f64(obj.real)
            buf.write_f64(obj.imag)
        elif obj_type is str:
            memo = self._str_memo.get(obj)
            if memo is not None:
                buf.write_u8(Tag.REF)
                buf.write_uvarint(memo)
                return
            handle = self._alloc_handle(obj, mutable=False)
            if len(self._str_memo) < self._memo_limit:
                self._str_memo[obj] = handle
            buf.write_u8(Tag.STR)
            buf.write_str(obj)
        elif obj_type is bytes:
            memo = self._bytes_memo.get(obj)
            if memo is not None:
                buf.write_u8(Tag.REF)
                buf.write_uvarint(memo)
                return
            handle = self._alloc_handle(obj, mutable=False)
            if len(self._bytes_memo) < self._memo_limit:
                self._bytes_memo[obj] = handle
            buf.write_u8(Tag.BYTES)
            buf.write_len_bytes(obj)
        elif isinstance(obj, float):
            buf.write_u8(Tag.FLOAT)
            buf.write_f64(float(obj))
        else:
            # str/bytes subclasses degrade to their base value.
            if isinstance(obj, str):
                buf.write_u8(Tag.STR)
                self._alloc_handle(obj, mutable=False)
                buf.write_str(str(obj))
            elif isinstance(obj, bytes):
                buf.write_u8(Tag.BYTES)
                self._alloc_handle(obj, mutable=False)
                buf.write_len_bytes(bytes(obj))
            elif isinstance(obj, complex):
                buf.write_u8(Tag.COMPLEX)
                buf.write_f64(obj.real)
                buf.write_f64(obj.imag)
            else:  # pragma: no cover - classify() guarantees coverage above
                raise NotSerializableError(obj)

    def _find_externalizer(self, obj: Any):
        cache = self._ext_cache
        if cache is not None:
            cached = cache.get(type(obj), _MISSING)
            if cached is not _MISSING:
                return cached
        found = None
        for ext in self._local_externalizers:
            if ext.claims(obj):
                found = ext
                break
        if found is None:
            found = self.registry.externalizer_for(obj)
        if cache is not None and (found is None or found.type_based):
            cache[type(obj)] = found
        return found

    def _emit_external(self, obj: Any, ext) -> None:
        self._alloc_handle(obj, mutable=False)
        self._buf.write_u8(Tag.EXTERNAL)
        self._write_name_key(ext.name)
        self._buf.write_len_bytes(ext.replace(obj))

    def _emit_object(self, obj: Any, stack: List[Tuple[int, Any]]) -> None:
        ext = self._find_externalizer(obj)
        if ext is not None:
            self._emit_external(obj, ext)
            return
        cls = type(obj)
        if self._plan_cache is not None and self._ext_cache is not None:
            # First instance of a plan-safe class: compile (or fetch) the
            # plan from the registry and cache it writer-locally so later
            # instances dispatch straight from the hot loop.
            if self._use_codegen:
                plan = self.registry.codegen_encode_plan_for(cls)
            else:
                plan = self.registry.encode_plan_for(cls)
            self._plan_cache[cls] = plan
            plan.encode(self, obj, stack)
            return
        accessor = self.profile.accessor
        state = accessor.get_state(obj)
        transients = transient_fields(cls)
        if transients:
            state = [(name, value) for name, value in state if name not in transients]
        if self.profile.per_object_validation:
            self._validate_object(obj, state)
        # readResolve classes are value-like: the decoded identity is not
        # the shell's, so they must stay out of the linear map on both
        # endpoints (the decoder applies the same rule).
        self._alloc_handle(obj, mutable=not has_resolve(cls))
        self._buf.write_u8(Tag.OBJECT)
        self._write_class_key(type(obj))
        self._buf.write_uvarint(len(state))
        for field_name, value in reversed(state):
            stack.append((_EMIT_VALUE, value))
            stack.append((_EMIT_NAME, field_name))

    @staticmethod
    def _describe_context(stack: List[Tuple[int, Any]]) -> str:
        """Best-effort breadcrumb for error messages."""
        parents = [
            type(payload).__name__
            for opcode, payload in stack[-4:]
            if opcode == _EMIT_VALUE
        ]
        return " > ".join(reversed(parents))


def encode_graph(
    roots: List[Any],
    profile: SerializationProfile = MODERN_PROFILE,
    registry: Optional[ClassRegistry] = None,
) -> Tuple[bytes, LinearMap]:
    """Serialize *roots* into one stream; return (payload, linear map)."""
    writer = ObjectWriter(profile=profile, registry=registry)
    for root in roots:
        writer.write_root(root)
    return writer.getvalue(), writer.linear_map
