"""Classification of Python objects into wire-format kinds.

The classification is shared by the encoder, the graph walker, and the
copy-restore engine, so all three agree on which objects are *mutable
identity-bearing* (linear-map members, restorable in place) and which are
value-like (primitives and immutable containers, rewritten by reference in
their parents instead).
"""

from __future__ import annotations

import types
from enum import Enum, auto
from typing import Any


class Kind(Enum):
    """The serializer's view of an object's shape."""

    PRIMITIVE = auto()   # None, bool, int, float, complex, str, bytes
    LIST = auto()
    TUPLE = auto()
    SET = auto()
    FROZENSET = auto()
    DICT = auto()
    BYTEARRAY = auto()
    OBJECT = auto()      # class instance with fields
    UNSUPPORTED = auto()


_PRIMITIVE_TYPES = (type(None), bool, int, float, complex, str, bytes)

# Exact-type dispatch for containers: subclasses of list/dict/... carry
# class-specific behaviour and must be registered and treated as OBJECTs
# with container state, which this reproduction does not need — the paper's
# RestorableHashMap pattern is modelled by registered classes holding a
# container field.
_EXACT_KIND = {
    list: Kind.LIST,
    tuple: Kind.TUPLE,
    set: Kind.SET,
    frozenset: Kind.FROZENSET,
    dict: Kind.DICT,
    bytearray: Kind.BYTEARRAY,
}

_MUTABLE_KINDS = frozenset(
    {Kind.LIST, Kind.SET, Kind.DICT, Kind.BYTEARRAY, Kind.OBJECT}
)

_IMMUTABLE_CONTAINER_KINDS = frozenset({Kind.TUPLE, Kind.FROZENSET})


_CODE_LIKE_TYPES = (
    type,
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    types.ModuleType,
    types.GeneratorType,
    types.CoroutineType,
)


def classify(obj: Any) -> Kind:
    """Return the wire kind of *obj*.

    Instances of arbitrary classes classify as ``OBJECT``; whether they are
    actually serializable is decided later against the class registry.
    Code-like objects (functions, classes, modules, generators) are
    unsupported: middleware moves data, never code.
    """
    obj_type = type(obj)
    kind = _EXACT_KIND.get(obj_type)
    if kind is not None:
        return kind
    if isinstance(obj, _PRIMITIVE_TYPES):
        # Covers bool/int/... subclasses too: they serialize by value.
        return Kind.PRIMITIVE
    if isinstance(obj, _CODE_LIKE_TYPES):
        return Kind.UNSUPPORTED
    if hasattr(obj, "__dict__") or hasattr(obj_type, "__slots__"):
        return Kind.OBJECT
    return Kind.UNSUPPORTED


def code_like_type_names() -> frozenset:
    """Names of the code-like types the serializer refuses to encode.

    Introspection hook for tooling (the ``repro.analysis`` linter keys its
    unserializable-field rule off this table) — kept next to the kind
    classifier so the lint and the runtime can never disagree about what
    counts as code.
    """
    return frozenset(t.__name__ for t in _CODE_LIKE_TYPES)


def primitive_type_names() -> frozenset:
    """Names of the primitive (by-value) types, for tooling."""
    return frozenset(t.__name__ for t in _PRIMITIVE_TYPES)


def is_mutable_kind(kind: Kind) -> bool:
    """True for kinds whose instances join the linear map."""
    return kind in _MUTABLE_KINDS


def is_immutable_container(kind: Kind) -> bool:
    """True for tuple/frozenset: traversed, but rebuilt rather than mutated."""
    return kind in _IMMUTABLE_CONTAINER_KINDS
