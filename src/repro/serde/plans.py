"""Compiled per-class serialization plans (the modern profile's fast path).

The paper's "optimized" NRMI implementation (Section 5.3.1) wins by
flattening per-field reflection layers into direct access.  This module is
the reproduction's analogue: for each registered class it compiles a
specialized encode closure and a decode descriptor, so the steady-state
hot loop does no per-object reflection — no MRO walks for transients, no
``hasattr`` probes for hooks, no generic per-field dispatch.

An :class:`EncodePlan` captures, at compile time:

* the class's transient-field set, linear-map membership (``has_resolve``
  classes are value-like and stay out), and slot layout;
* the pre-encoded first-occurrence class descriptor blob
  (``uvarint(0) + name + version``) so interning a new class is a single
  buffer append;
* lazily pre-encoded field-name blobs, shared across all instances;
* an inline fast path for scalar field values (``None``/``bool``/``int``/
  ``float``/``str``/``bytes``) that writes tag bytes and varints straight
  into the writer's ``bytearray``; non-scalar values fall back to the
  writer's generic work-stack, preserving pre-order byte-for-byte.

A :class:`DecodePlan` caches the instance factory and hook flags the
reader would otherwise re-derive per object.

Plans are **cached on the class registry** (each :class:`ClassRegistry`
owns its own caches) and are invalidated when a class's declared
``__nrmi_version__`` changes — redefining a class with a bumped version
recompiles its plan on next use.

Compiled and uncompiled encoding produce **byte-identical** streams; the
wire format is untouched.  Plans are used only by profiles with
``use_compiled_plans`` set (the modern profile); the legacy profile keeps
its truthful per-object reflection cost model.
"""

from __future__ import annotations

import struct
from functools import partial
from typing import Any, Callable, Dict, Tuple

from repro.serde.hooks import class_version, has_resolve, has_upgrade, transient_fields

_F64 = struct.Struct(">d")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

# Wire tag bytes, inlined as plain ints (enum attribute access is hot-loop
# overhead). Values mirror repro.serde.tags.Tag.
_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_INT_BIG = 0x04
_TAG_FLOAT = 0x05
_TAG_STR = 0x07
_TAG_BYTES = 0x08
_TAG_REF = 0x09
_TAG_OBJECT = 0x10

# Work-stack opcodes, mirrored from repro.serde.writer.
_EMIT_VALUE = 0
_EMIT_NAME = 1


def _uvarint_bytes(value: int) -> bytes:
    out = bytearray()
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def _collect_slot_names(cls: type) -> Tuple[str, ...]:
    names = []
    seen = set()
    for klass in reversed(cls.__mro__):
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name in ("__dict__", "__weakref__") or name in seen:
                continue
            seen.add(name)
            names.append(name)
    return tuple(names)


class EncodePlan:
    """A compiled per-class encoder: ``plan.encode(writer, obj, stack)``."""

    __slots__ = ("cls", "version", "encode")

    def __init__(self, cls: type, version: int, encode: Callable) -> None:
        self.cls = cls
        self.version = version
        self.encode = encode


def _dict_store_safe(cls: type) -> bool:
    """Whether plain ``__dict__`` stores are equivalent to ``setattr``.

    True when no class in the MRO declares ``__slots__`` and no non-dunder
    class attribute is a data descriptor (its type defines ``__set__``) —
    then every attribute store lands in the instance dict, so the decode
    fast path may batch field stores with a single ``dict`` update.
    (Dunder names are skipped: every class carries ``__dict__`` and
    ``__weakref__`` getset descriptors, which are not field stores.)
    """
    for klass in cls.__mro__[:-1]:
        if "__slots__" in klass.__dict__:
            return False
        for name, attr in klass.__dict__.items():
            if name.startswith("__") and name.endswith("__"):
                continue
            if hasattr(type(attr), "__set__"):
                return False
    return True


class DecodePlan:
    """Cached per-class decoding facts: factory and hook flags."""

    __slots__ = (
        "cls",
        "version",
        "factory",
        "needs_resolve",
        "has_upgrade",
        "use_dict",
        "decode_fn",
    )

    def __init__(self, cls: type, version: int) -> None:
        self.cls = cls
        self.version = version
        self.factory = partial(object.__new__, cls)
        self.needs_resolve = has_resolve(cls)
        self.has_upgrade = has_upgrade(cls)
        self.use_dict = _dict_store_safe(cls)
        # Optional generated decoder (repro.serde.codegen); None means the
        # reader's frame machine decodes this class from the plan facts.
        self.decode_fn = None


def compile_decode_plan(cls: type) -> DecodePlan:
    return DecodePlan(cls, class_version(cls))


def compile_encode_plan(cls: type, registered_name: str) -> EncodePlan:
    """Build the specialized encode closure for *cls*.

    *registered_name* is the class's name in the registry the plan is
    cached on (resolving it here means an unregistered class fails at
    compile time, exactly where the generic path would fail).
    """
    version = class_version(cls)
    transients = transient_fields(cls)
    mutable = not has_resolve(cls)
    slot_names = _collect_slot_names(cls)

    name_utf8 = registered_name.encode("utf-8")
    class_blob = (
        b"\x00" + _uvarint_bytes(len(name_utf8)) + name_utf8 + _uvarint_bytes(version)
    )
    name_blobs: Dict[str, bytes] = {}

    f64_pack = _F64.pack

    def encode(writer: Any, obj: Any, stack: list) -> None:
        buf = writer._buf.raw
        # -- handle allocation (mirrors ObjectWriter._alloc_handle) --------
        handle = writer._next_handle
        writer._next_handle = handle + 1
        writer._handles[obj] = handle
        if mutable:
            writer.linear_map.append(obj)
        # -- state extraction (mirrors OptimizedAccessor.get_state) --------
        instance_dict = getattr(obj, "__dict__", None)
        if slot_names:
            state = list(instance_dict.items()) if instance_dict else []
            for field_name in slot_names:
                try:
                    state.append((field_name, getattr(obj, field_name)))
                except AttributeError:
                    continue
        else:
            state = list(instance_dict.items()) if instance_dict else []
        if transients:
            state = [(n, v) for n, v in state if n not in transients]
        # -- object header --------------------------------------------------
        buf.append(_TAG_OBJECT)
        class_ids = writer._class_ids
        class_id = class_ids.get(cls)
        if class_id is None:
            class_ids[cls] = len(class_ids) + 1
            if writer._schema_tx is None:
                buf += class_blob
            else:
                # Session schema cache in force: emit a schema def/ref
                # instead of the inline descriptor (repro.serde.schema).
                writer._emit_schema_class(
                    cls, version, class_blob, registered_name,
                    [n for n, _ in state],
                )
        else:
            # Back references shift past the schema-mode discriminators
            # (offset 0 on classic streams).
            class_id += writer._class_key_offset
            while class_id > 0x7F:
                buf.append((class_id & 0x7F) | 0x80)
                class_id >>= 7
            buf.append(class_id)
        count = len(state)
        value = count
        while value > 0x7F:
            buf.append((value & 0x7F) | 0x80)
            value >>= 7
        buf.append(value)
        # -- fields ---------------------------------------------------------
        name_ids = writer._name_ids
        i = 0
        while i < count:
            field_name, value = state[i]
            name_id = name_ids.get(field_name)
            if name_id is None:
                name_ids[field_name] = len(name_ids) + 1
                blob = name_blobs.get(field_name)
                if blob is None:
                    encoded = field_name.encode("utf-8")
                    blob = b"\x00" + _uvarint_bytes(len(encoded)) + encoded
                    name_blobs[field_name] = blob
                buf += blob
            else:
                while name_id > 0x7F:
                    buf.append((name_id & 0x7F) | 0x80)
                    name_id >>= 7
                buf.append(name_id)
            value_cls = value.__class__
            if value is None:
                buf.append(_TAG_NONE)
            elif value_cls is bool:
                buf.append(_TAG_TRUE if value else _TAG_FALSE)
            elif value_cls is int:
                if _INT64_MIN <= value <= _INT64_MAX:
                    buf.append(_TAG_INT)
                    encoded = (value << 1) ^ (value >> 63)
                    while encoded > 0x7F:
                        buf.append((encoded & 0x7F) | 0x80)
                        encoded >>= 7
                    buf.append(encoded)
                else:
                    buf.append(_TAG_INT_BIG)
                    magnitude = -value if value < 0 else value
                    buf.append(1 if value < 0 else 0)
                    payload = magnitude.to_bytes(
                        (magnitude.bit_length() + 7) // 8, "big"
                    )
                    length = len(payload)
                    while length > 0x7F:
                        buf.append((length & 0x7F) | 0x80)
                        length >>= 7
                    buf.append(length)
                    buf += payload
            elif value_cls is float:
                buf.append(_TAG_FLOAT)
                buf += f64_pack(value)
            elif value_cls is str:
                memo = writer._str_memo.get(value)
                if memo is not None:
                    buf.append(_TAG_REF)
                    while memo > 0x7F:
                        buf.append((memo & 0x7F) | 0x80)
                        memo >>= 7
                    buf.append(memo)
                else:
                    str_handle = writer._next_handle
                    writer._next_handle = str_handle + 1
                    writer._handles[value] = str_handle
                    if len(writer._str_memo) < writer._memo_limit:
                        writer._str_memo[value] = str_handle
                    buf.append(_TAG_STR)
                    encoded = value.encode("utf-8")
                    length = len(encoded)
                    while length > 0x7F:
                        buf.append((length & 0x7F) | 0x80)
                        length >>= 7
                    buf.append(length)
                    buf += encoded
            elif value_cls is bytes:
                memo = writer._bytes_memo.get(value)
                if memo is not None:
                    buf.append(_TAG_REF)
                    while memo > 0x7F:
                        buf.append((memo & 0x7F) | 0x80)
                        memo >>= 7
                    buf.append(memo)
                else:
                    bytes_handle = writer._next_handle
                    writer._next_handle = bytes_handle + 1
                    writer._handles[value] = bytes_handle
                    if len(writer._bytes_memo) < writer._memo_limit:
                        writer._bytes_memo[value] = bytes_handle
                    buf.append(_TAG_BYTES)
                    length = len(value)
                    while length > 0x7F:
                        buf.append((length & 0x7F) | 0x80)
                        length >>= 7
                    buf.append(length)
                    buf += value
            else:
                # Non-scalar (container, nested object, subclassed scalar):
                # hand the remaining fields back to the generic work-stack in
                # exactly the order _emit_object would have pushed them.
                j = count - 1
                while j > i:
                    later_name, later_value = state[j]
                    stack.append((_EMIT_VALUE, later_value))
                    stack.append((_EMIT_NAME, later_name))
                    j -= 1
                stack.append((_EMIT_VALUE, value))
                return
            i += 1

    return EncodePlan(cls, version, encode)
