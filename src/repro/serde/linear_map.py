"""The linear map: the data structure at the heart of copy-restore.

Paper, Section 3, step 1: *"Create a linear map of all objects reachable
from the reference parameter. Keep a reference to it."* The map is an
ordered list of every **mutable** object the serializer met, in handle
order. Because the decoder allocates objects in exactly the stream order the
encoder wrote them, both endpoints hold index-aligned maps without the map
itself ever crossing the wire (paper optimization 5.2.4 #1).

Index alignment is what makes step 4 ("match up the two linear maps")
trivial: ``original.objects[i]`` and ``modified.objects[i]`` are the two
versions of the same logical object.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from repro.util.identity import IdentityMap


class LinearMap:
    """An ordered, identity-indexed list of the mutable reachable objects."""

    __slots__ = ("_objects", "_index")

    def __init__(self, objects: Optional[List[Any]] = None) -> None:
        self._objects: List[Any] = []
        self._index: IdentityMap[int] = IdentityMap()
        if objects:
            for obj in objects:
                self.append(obj)

    def append(self, obj: Any) -> int:
        """Add *obj* and return its position; each object appears once."""
        existing = self._index.get(obj)
        if existing is not None:
            return existing
        position = len(self._objects)
        self._objects.append(obj)
        self._index[obj] = position
        return position

    def append_new(self, obj: Any) -> int:
        """Unchecked append for objects known to be absent.

        The decoder's case: every shell it registers is freshly
        allocated, so the membership probe in :meth:`append` is a wasted
        dict lookup on the hottest decode path.
        """
        objects = self._objects
        position = len(objects)
        objects.append(obj)
        self._index[obj] = position
        return position

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._objects)

    def __getitem__(self, position: int) -> Any:
        return self._objects[position]

    def __contains__(self, obj: object) -> bool:
        return obj in self._index

    def position_of(self, obj: Any) -> Optional[int]:
        """The object's position, or None if it is not in the map."""
        return self._index.get(obj)

    @property
    def objects(self) -> List[Any]:
        """The underlying ordered list (do not mutate)."""
        return self._objects

    def __repr__(self) -> str:
        return f"LinearMap({len(self)} objects)"
