"""Serialization substrate: an alias- and cycle-preserving wire format.

This package plays the role Java Serialization plays for RMI/NRMI in the
paper. The design points that matter for the reproduction:

* **Handle table.** Every identity-bearing object gets a *handle* the first
  time the encoder meets it; later occurrences are written as back
  references. This preserves shared structure (aliases) and cycles within a
  single stream — and therefore across all parameters of one remote call,
  which is how NRMI answers the "copy-restore duplicates shared arguments"
  myth (paper Section 4.1).

* **Linear map for free** (paper Section 5.2.1). The ordered sequence of
  *mutable* objects assigned handles during encoding is exactly the linear
  map the copy-restore algorithm needs; the decoder rebuilds the same
  sequence in the same order while deserializing (paper optimization
  5.2.4 #1 — the map itself is never transmitted).

* **Profiles.** The same format can be written by a ``legacy`` profile
  (per-field reflective access, no descriptor caching, per-object validation
  — modelling JDK 1.3 RMI) or a ``modern`` profile (cached class plans,
  interned descriptors — modelling JDK 1.4's flattened, "Unsafe"-based
  serialization).

* **Safety.** Unlike ``pickle``, decoding never imports or executes
  anything: only classes registered with :mod:`repro.serde.registry` can be
  instantiated, and instances are built without running ``__init__``.
"""

from repro.serde.registry import (
    ClassRegistry,
    global_registry,
    register_class,
    register_externalizer,
)
from repro.serde.accessors import FieldAccessor, PortableAccessor, OptimizedAccessor
from repro.serde.kinds import Kind, classify, is_mutable_kind
from repro.serde.linear_map import LinearMap
from repro.serde.profiles import (
    SerializationProfile,
    LEGACY_PROFILE,
    MODERN_PROFILE,
    profile_by_name,
)
from repro.serde.writer import ObjectWriter, encode_graph
from repro.serde.reader import ObjectReader, decode_graph
from repro.serde.adapters import install_default_adapters, register_value_adapter

# Both endpoints of this library always agree on the stdlib value types.
install_default_adapters()

__all__ = [
    "ClassRegistry",
    "global_registry",
    "register_class",
    "register_externalizer",
    "FieldAccessor",
    "PortableAccessor",
    "OptimizedAccessor",
    "Kind",
    "classify",
    "is_mutable_kind",
    "LinearMap",
    "SerializationProfile",
    "LEGACY_PROFILE",
    "MODERN_PROFILE",
    "profile_by_name",
    "ObjectWriter",
    "ObjectReader",
    "encode_graph",
    "decode_graph",
]
