"""Session-cached wire schemas: ship class descriptors once per connection.

Every stream the writer produces is self-describing: class descriptors
(registered name + ``__nrmi_version__``) and field-name strings are
written inline on first use *per stream* and back-referenced afterwards.
That is correct and stateless — and wasteful on a long-lived connection,
where the same handful of classes crosses the wire thousands of times.

This module adds a negotiated, per-connection cache layered *under* the
stream format:

* the stream header's flags byte gains :data:`STREAM_FLAG_SCHEMA_CACHE`;
  a flagged stream encodes class keys in **schema mode** (see below);
* the encoder keeps a :class:`SchemaTxCache` per connection assigning a
  compact u16 *schema id* to each ``(class, version)`` pair; the first
  flagged stream carries a full **schema definition** (id + descriptor +
  field-name table), later streams carry a 2-3 byte **schema reference**;
* the decoder keeps a :class:`SchemaRxCache` per connection resolving
  references back to descriptors.

Schema-mode class keys (the uvarint that follows ``Tag.OBJECT``)::

    0 (CKEY_INLINE)       name str + version uvarint   (classic inline form)
    1 (CKEY_SCHEMA_DEF)   schema_id, name, version, field-name table
    2 (CKEY_SCHEMA_REF)   schema_id
    k >= 3                per-stream back reference to class k - CKEY_STREAM_BASE

Unflagged streams keep the classic encoding (0 = inline, k >= 1 =
back reference) untouched, so legacy peers and stateless transports are
unaffected — the cache is pure negotiated opt-in.

Both a definition and a reference also **seed the per-stream field-name
table** with the schema's field names (appending only names not already
present, on both sides in the same order), so field-name strings stop
crossing the wire entirely once a schema id is in force: every per-field
name key collapses to a 1-2 byte back reference.

Consistency protocol (why this is safe under concurrency, retries and
reconnects):

* definitions are **idempotent** — an entry keeps one stable id and one
  frozen definition blob for its lifetime, and the receiver's ``define``
  accepts redefinitions that match byte-for-byte;
* a pending entry's definition is re-sent on *every* flagged stream until
  the client sees a ``Status.OK`` reply for a request that carried it
  (the server decodes arguments before replying, so an OK proves the
  definition is registered on this connection);
* references are emitted only for confirmed entries, so a reference is
  never decoded before its definition — on any channel ordering;
* a version bump allocates a **new id** (ids are never reused); the old
  id stays resolvable on the receiver, and stale streams simply decode
  to the old version (the reader's ``__nrmi_upgrade__`` path applies);
* a connection drop resets the client session (:meth:`SchemaSession.reset`)
  — everything re-negotiates from scratch on the new connection.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WireFormatError

#: Stream-header flags-byte bit: class keys use the schema-mode encoding.
STREAM_FLAG_SCHEMA_CACHE = 0x01

#: Schema-mode class-key discriminators (see module docstring).
CKEY_INLINE = 0
CKEY_SCHEMA_DEF = 1
CKEY_SCHEMA_REF = 2
#: First per-stream back-reference key; key k refers to stream class
#: ``k - CKEY_STREAM_BASE``.
CKEY_STREAM_BASE = 3

#: Schema ids are u16: one connection can define at most 65536 schemas;
#: past that the encoder transparently falls back to inline descriptors.
MAX_SCHEMA_ID = 0xFFFF


def _uvarint(value: int) -> bytes:
    out = bytearray()
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def _str_blob(text: str) -> bytes:
    encoded = text.encode("utf-8")
    return _uvarint(len(encoded)) + encoded


class WireSchema:
    """One negotiated schema as the *receiver* sees it."""

    __slots__ = ("schema_id", "class_name", "version", "field_names")

    def __init__(
        self,
        schema_id: int,
        class_name: str,
        version: int,
        field_names: Tuple[str, ...],
    ) -> None:
        self.schema_id = schema_id
        self.class_name = class_name
        self.version = version
        self.field_names = field_names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WireSchema(id={self.schema_id}, class={self.class_name!r}, "
            f"version={self.version})"
        )


class TxSchemaEntry:
    """Encoder-side state for one ``(class, version)`` pair.

    ``def_blob`` is the frozen, pre-encoded CKEY_SCHEMA_DEF key (complete
    with id, descriptor, and field-name table) so re-sending a pending
    definition is a single buffer append. ``confirmed`` flips once the
    peer provably holds the definition; only then may references be sent.
    """

    __slots__ = ("schema_id", "cls", "version", "field_names", "def_blob", "confirmed")

    def __init__(
        self, schema_id: int, cls: type, version: int, field_names: Tuple[str, ...],
        class_name: str,
    ) -> None:
        self.schema_id = schema_id
        self.cls = cls
        self.version = version
        self.field_names = field_names
        blob = bytearray()
        blob.append(CKEY_SCHEMA_DEF)
        blob += _uvarint(schema_id)
        blob += _str_blob(class_name)
        blob += _uvarint(version)
        blob += _uvarint(len(field_names))
        for name in field_names:
            blob += _str_blob(name)
        self.def_blob = bytes(blob)
        self.confirmed = False


class SchemaTxCache:
    """Encoder-side schema table for one connection (thread-safe).

    Keyed on class identity; a version mismatch (the class's declared
    ``__nrmi_version__`` changed since the entry was made) allocates a
    fresh entry under a fresh id — ids are never reused, so streams
    encoded against the old entry stay decodable.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[type, TxSchemaEntry] = {}
        self._next_id = 0

    def lookup(
        self, cls: type, version: int, class_name: str,
        field_names: Sequence[str],
    ) -> Optional[TxSchemaEntry]:
        """The entry for ``(cls, version)``, created on first use.

        Returns ``None`` when the u16 id space is exhausted — the caller
        falls back to the inline descriptor form.
        """
        with self._lock:
            entry = self._entries.get(cls)
            if entry is not None and entry.version == version:
                return entry
            if self._next_id > MAX_SCHEMA_ID:
                return None
            entry = TxSchemaEntry(
                self._next_id, cls, version, tuple(field_names), class_name
            )
            self._next_id += 1
            self._entries[cls] = entry
            return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class SchemaRxCache:
    """Decoder-side schema table for one connection (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._schemas: Dict[int, WireSchema] = {}

    def define(
        self,
        schema_id: int,
        class_name: str,
        version: int,
        field_names: Tuple[str, ...],
    ) -> WireSchema:
        """Register a definition; idempotent for identical redefinitions.

        Pending definitions are re-sent on every stream until confirmed,
        so duplicates are the normal case. A *conflicting* redefinition
        means the peer broke the id-stability contract: reject it rather
        than silently decode against the wrong descriptor.
        """
        with self._lock:
            existing = self._schemas.get(schema_id)
            if existing is not None:
                if (
                    existing.class_name != class_name
                    or existing.version != version
                    or existing.field_names != field_names
                ):
                    raise WireFormatError(
                        f"conflicting redefinition of schema id {schema_id}: "
                        f"{existing.class_name!r} v{existing.version} vs "
                        f"{class_name!r} v{version}"
                    )
                return existing
            schema = WireSchema(schema_id, class_name, version, field_names)
            self._schemas[schema_id] = schema
            return schema

    def lookup(self, schema_id: int) -> WireSchema:
        with self._lock:
            schema = self._schemas.get(schema_id)
        if schema is None:
            raise WireFormatError(f"dangling schema id {schema_id}")
        return schema

    def __len__(self) -> int:
        with self._lock:
            return len(self._schemas)


class SchemaSession:
    """Client-side negotiation state for one channel.

    ``peer_ok`` flips when the server acknowledges the capability (the
    high bit of the reply's applied-policy byte); until then every stream
    goes out unflagged, so a legacy peer never sees schema-mode bytes.
    ``reset`` (connection drop) discards everything: the next connection
    renegotiates from zero, which keeps the tx table and the server's rx
    table trivially consistent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.tx = SchemaTxCache()
        self._peer_ok = False
        self.generation = 0

    @property
    def peer_ok(self) -> bool:
        return self._peer_ok

    def record_ack(self) -> None:
        with self._lock:
            self._peer_ok = True

    def confirm(self, entries: List[TxSchemaEntry]) -> None:
        """Mark definitions as held by the peer (an OK reply arrived for a
        request whose stream carried them)."""
        for entry in entries:
            entry.confirmed = True

    def reset(self) -> None:
        """Forget the negotiation (the connection it covered is gone)."""
        with self._lock:
            self.tx = SchemaTxCache()
            self._peer_ok = False
            self.generation += 1
