"""Session-cached wire schemas: ship class descriptors once per connection.

Every stream the writer produces is self-describing: class descriptors
(registered name + ``__nrmi_version__``) and field-name strings are
written inline on first use *per stream* and back-referenced afterwards.
That is correct and stateless — and wasteful on a long-lived connection,
where the same handful of classes crosses the wire thousands of times.

This module adds a negotiated, per-connection cache layered *under* the
stream format:

* the stream header's flags byte gains :data:`STREAM_FLAG_SCHEMA_CACHE`;
  a flagged stream encodes class keys in **schema mode** (see below);
* the encoder keeps a :class:`SchemaTxCache` per connection assigning a
  compact u16 *schema id* to each ``(class, version)`` pair; the first
  flagged stream carries a full **schema definition** (id + descriptor +
  field-name table), later streams carry a 2-3 byte **schema reference**;
* the decoder keeps a :class:`SchemaRxCache` per connection resolving
  references back to descriptors.

Schema-mode class keys (the uvarint that follows ``Tag.OBJECT``)::

    0 (CKEY_INLINE)       name str + version uvarint   (classic inline form)
    1 (CKEY_SCHEMA_DEF)   schema_id, name, version, field-name table
    2 (CKEY_SCHEMA_REF)   schema_id
    k >= 3                per-stream back reference to class k - CKEY_STREAM_BASE

Unflagged streams keep the classic encoding (0 = inline, k >= 1 =
back reference) untouched, so legacy peers and stateless transports are
unaffected — the cache is pure negotiated opt-in.

Both a definition and a reference also **seed the per-stream field-name
table** with the schema's field names (appending only names not already
present, on both sides in the same order), so field-name strings stop
crossing the wire entirely once a schema id is in force: every per-field
name key collapses to a 1-2 byte back reference.

Consistency protocol (why this is safe under concurrency, retries and
reconnects):

* definitions are **idempotent** — an entry keeps one stable id and one
  frozen definition blob for its lifetime, and the receiver's ``define``
  accepts redefinitions that match byte-for-byte;
* a pending entry's definition is re-sent on *every* flagged stream until
  the client sees a ``Status.OK`` reply for a request that carried it
  (the server decodes arguments before replying, so an OK proves the
  definition is registered on this connection);
* references are emitted only for confirmed entries, so a reference is
  never decoded before its definition — on any channel ordering;
* a version bump allocates a **new id** (ids are never reused); the old
  id stays resolvable on the receiver, and stale streams simply decode
  to the old version (the reader's ``__nrmi_upgrade__`` path applies);
* a connection drop resets the client session (:meth:`SchemaSession.reset`)
  — everything re-negotiates from scratch on the new connection.

Process-wide descriptor table (PR 6): schema ids and definition blobs are
allocated once per process by :data:`global_schema_table` rather than per
connection. Each :class:`SchemaTxCache` is a thin per-connection *view* —
it keeps only the per-connection ``confirmed`` flags, while the id, the
field-name tuple, and the pre-encoded definition blob come from the shared
table. Consequences:

* a class's schema id is stable across every connection in the process,
  and descriptor construction (field-name layout, blob encoding) happens
  exactly once per ``(class, version)`` — new connections re-*send* the
  frozen blob until confirmed, but never re-*compute* it;
* ids are never reused across reconnects either, so a server that kept
  old rx state can never see a conflicting redefinition;
* the table carries an **epoch** counter, bumped by :meth:`~GlobalSchemaTable.reset`;
  generated serde functions (:mod:`repro.serde.codegen`) are stamped with
  the epoch at compile time and recompiled when it moves, so no compiled
  code outlives the descriptor table it baked in.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WireFormatError

#: Stream-header flags-byte bit: class keys use the schema-mode encoding.
STREAM_FLAG_SCHEMA_CACHE = 0x01

#: Schema-mode class-key discriminators (see module docstring).
CKEY_INLINE = 0
CKEY_SCHEMA_DEF = 1
CKEY_SCHEMA_REF = 2
#: First per-stream back-reference key; key k refers to stream class
#: ``k - CKEY_STREAM_BASE``.
CKEY_STREAM_BASE = 3

#: Schema ids are u16: one connection can define at most 65536 schemas;
#: past that the encoder transparently falls back to inline descriptors.
MAX_SCHEMA_ID = 0xFFFF


def _uvarint(value: int) -> bytes:
    out = bytearray()
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def _str_blob(text: str) -> bytes:
    encoded = text.encode("utf-8")
    return _uvarint(len(encoded)) + encoded


class WireSchema:
    """One negotiated schema as the *receiver* sees it."""

    __slots__ = ("schema_id", "class_name", "version", "field_names")

    def __init__(
        self,
        schema_id: int,
        class_name: str,
        version: int,
        field_names: Tuple[str, ...],
    ) -> None:
        self.schema_id = schema_id
        self.class_name = class_name
        self.version = version
        self.field_names = field_names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WireSchema(id={self.schema_id}, class={self.class_name!r}, "
            f"version={self.version})"
        )


class TxSchemaEntry:
    """Encoder-side state for one ``(class, version)`` pair.

    ``def_blob`` is the frozen, pre-encoded CKEY_SCHEMA_DEF key (complete
    with id, descriptor, and field-name table) so re-sending a pending
    definition is a single buffer append. ``confirmed`` flips once the
    peer provably holds the definition; only then may references be sent.
    """

    __slots__ = ("schema_id", "cls", "version", "field_names", "def_blob", "confirmed")

    def __init__(
        self, schema_id: int, cls: type, version: int, field_names: Tuple[str, ...],
        class_name: str, def_blob: Optional[bytes] = None,
    ) -> None:
        self.schema_id = schema_id
        self.cls = cls
        self.version = version
        self.field_names = field_names
        if def_blob is None:
            blob = bytearray()
            blob.append(CKEY_SCHEMA_DEF)
            blob += _uvarint(schema_id)
            blob += _str_blob(class_name)
            blob += _uvarint(version)
            blob += _uvarint(len(field_names))
            for name in field_names:
                blob += _str_blob(name)
            def_blob = bytes(blob)
        self.def_blob = def_blob
        self.confirmed = False


class GlobalSchemaRecord:
    """One process-wide descriptor: id + frozen definition blob."""

    __slots__ = ("schema_id", "cls", "version", "class_name", "field_names", "def_blob")

    def __init__(
        self, schema_id: int, cls: type, version: int, class_name: str,
        field_names: Tuple[str, ...],
    ) -> None:
        self.schema_id = schema_id
        self.cls = cls
        self.version = version
        self.class_name = class_name
        self.field_names = field_names
        blob = bytearray()
        blob.append(CKEY_SCHEMA_DEF)
        blob += _uvarint(schema_id)
        blob += _str_blob(class_name)
        blob += _uvarint(version)
        blob += _uvarint(len(field_names))
        for name in field_names:
            blob += _str_blob(name)
        self.def_blob = bytes(blob)


class GlobalSchemaTable:
    """Process-wide, epoch-stamped descriptor table (thread-safe).

    Allocates schema ids and pre-encodes definition blobs once per
    ``(class, version)`` for the whole process; per-connection
    :class:`SchemaTxCache` views share these records. A version bump
    allocates a fresh record under a fresh id — ids are monotonic and
    never reused while the table lives.

    ``epoch`` changes only on :meth:`reset` (a maintenance/test hook that
    *does* restart the id space); compiled serde functions are stamped
    with it so a reset invalidates anything that baked descriptors in.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: Dict[type, GlobalSchemaRecord] = {}
        self._next_id = 0
        self._epoch = 0

    @property
    def epoch(self) -> int:
        # Lock-free read: torn reads are impossible for a Python int, and
        # callers re-validate under the registry lock before recompiling.
        return self._epoch

    def lookup(
        self, cls: type, version: int, class_name: str,
        field_names: Sequence[str],
    ) -> Optional[GlobalSchemaRecord]:
        """The record for ``(cls, version)``, allocated on first use.

        Returns ``None`` when the u16 id space is exhausted — callers fall
        back to inline descriptors.
        """
        with self._lock:
            record = self._records.get(cls)
            if record is not None and record.version == version:
                return record
            if self._next_id > MAX_SCHEMA_ID:
                return None
            record = GlobalSchemaRecord(
                self._next_id, cls, version, class_name, tuple(field_names)
            )
            self._next_id += 1
            self._records[cls] = record
            return record

    def reset(self) -> None:
        """Drop every record and restart the id space (tests/maintenance).

        Bumps the epoch: live connections renegotiate as their sessions
        reset, and epoch-stamped compiled serde functions recompile.
        """
        with self._lock:
            self._records.clear()
            self._next_id = 0
            self._epoch += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


#: The process-wide descriptor table every connection shares by default.
global_schema_table = GlobalSchemaTable()


def schema_epoch() -> int:
    """The current epoch of :data:`global_schema_table`."""
    return global_schema_table.epoch


class SchemaTxCache:
    """Encoder-side schema view for one connection (thread-safe).

    Ids, field-name tuples, and definition blobs come from the shared
    :class:`GlobalSchemaTable` — this view adds only the per-connection
    ``confirmed`` flags. Keyed on class identity; a version mismatch (the
    class's declared ``__nrmi_version__`` changed since the entry was
    made) fetches a fresh record under a fresh id — ids are never reused,
    so streams encoded against the old entry stay decodable.
    """

    def __init__(self, table: Optional[GlobalSchemaTable] = None) -> None:
        self._lock = threading.Lock()
        self._table = table if table is not None else global_schema_table
        self._entries: Dict[type, TxSchemaEntry] = {}

    def lookup(
        self, cls: type, version: int, class_name: str,
        field_names: Sequence[str],
    ) -> Optional[TxSchemaEntry]:
        """The entry for ``(cls, version)``, created on first use.

        Returns ``None`` when the u16 id space is exhausted — the caller
        falls back to the inline descriptor form.
        """
        with self._lock:
            entry = self._entries.get(cls)
            if entry is not None and entry.version == version:
                return entry
            record = self._table.lookup(cls, version, class_name, field_names)
            if record is None:
                return None
            entry = TxSchemaEntry(
                record.schema_id, cls, version, record.field_names,
                record.class_name, def_blob=record.def_blob,
            )
            self._entries[cls] = entry
            return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class SchemaRxCache:
    """Decoder-side schema table for one connection (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._schemas: Dict[int, WireSchema] = {}

    def define(
        self,
        schema_id: int,
        class_name: str,
        version: int,
        field_names: Tuple[str, ...],
    ) -> WireSchema:
        """Register a definition; idempotent for identical redefinitions.

        Pending definitions are re-sent on every stream until confirmed,
        so duplicates are the normal case. A *conflicting* redefinition
        means the peer broke the id-stability contract: reject it rather
        than silently decode against the wrong descriptor.
        """
        with self._lock:
            existing = self._schemas.get(schema_id)
            if existing is not None:
                if (
                    existing.class_name != class_name
                    or existing.version != version
                    or existing.field_names != field_names
                ):
                    raise WireFormatError(
                        f"conflicting redefinition of schema id {schema_id}: "
                        f"{existing.class_name!r} v{existing.version} vs "
                        f"{class_name!r} v{version}"
                    )
                return existing
            schema = WireSchema(schema_id, class_name, version, field_names)
            self._schemas[schema_id] = schema
            return schema

    def lookup(self, schema_id: int) -> WireSchema:
        with self._lock:
            schema = self._schemas.get(schema_id)
        if schema is None:
            raise WireFormatError(f"dangling schema id {schema_id}")
        return schema

    def __len__(self) -> int:
        with self._lock:
            return len(self._schemas)


class SchemaSession:
    """Client-side negotiation state for one channel.

    ``peer_ok`` flips when the server acknowledges the capability (the
    high bit of the reply's applied-policy byte); until then every stream
    goes out unflagged, so a legacy peer never sees schema-mode bytes.
    ``reset`` (connection drop) discards everything: the next connection
    renegotiates from zero, which keeps the tx table and the server's rx
    table trivially consistent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.tx = SchemaTxCache()
        self._peer_ok = False
        self.generation = 0

    @property
    def peer_ok(self) -> bool:
        return self._peer_ok

    def record_ack(self) -> None:
        with self._lock:
            self._peer_ok = True

    def confirm(self, entries: List[TxSchemaEntry]) -> None:
        """Mark definitions as held by the peer (an OK reply arrived for a
        request whose stream carried them)."""
        for entry in entries:
            entry.confirmed = True

    def reset(self) -> None:
        """Forget the negotiation (the connection it covered is gone)."""
        with self._lock:
            self.tx = SchemaTxCache()
            self._peer_ok = False
            self.generation += 1
