"""Per-class serialization hooks: the Java Serialization feature set NRMI
builds on, reproduced for this wire format.

Classes may customize how their instances travel:

``__nrmi_transient__``
    A class attribute naming fields that never leave the process (like
    Java's ``transient``): caches, open handles, back-pointers to runtime
    objects. Omitted on encode; simply absent after decode.

``__nrmi_replace__(self)``
    Called on encode (like ``writeReplace``): the returned object is
    serialized *instead of* the instance. Must return a serializable
    value.

``__nrmi_resolve__(self)``
    Called after an instance has been fully decoded (like
    ``readResolve``): the returned object replaces the decoded instance
    in the result graph. Canonicalizing enums/singletons is the classic
    use.

Notes on semantics:

* Replacement happens once per identity: if the same instance appears
  multiple times, all occurrences decode to the same resolved object.
* A ``__nrmi_resolve__`` swap means the decoded shell's identity is not
  the final identity, so resolved objects **leave the linear map** —
  they behave as values, like tuples. Copy-restore therefore does not
  overwrite them in place; this matches Java NRMI, where readResolve
  types (enums, interned values) are value-like.
"""

from __future__ import annotations

from typing import Any, FrozenSet

TRANSIENT_ATTR = "__nrmi_transient__"
REPLACE_METHOD = "__nrmi_replace__"
RESOLVE_METHOD = "__nrmi_resolve__"
VERSION_ATTR = "__nrmi_version__"
UPGRADE_METHOD = "__nrmi_upgrade__"


def class_version(cls: type) -> int:
    """The class's declared serialization version (0 when undeclared).

    The writer stamps the version into each class descriptor; a decoder
    holding a *newer* class runs ``__nrmi_upgrade__(wire_version)`` on
    every decoded instance after its fields are set — schema evolution
    without breaking old peers (the serialVersionUID problem, solved by
    migration instead of rejection).
    """
    return int(getattr(cls, VERSION_ATTR, 0))


def has_upgrade(cls: type) -> bool:
    return hasattr(cls, UPGRADE_METHOD)


def apply_upgrade(obj: Any, wire_version: int) -> None:
    getattr(obj, UPGRADE_METHOD)(wire_version)


def transient_fields(cls: type) -> FrozenSet[str]:
    """The union of transient field names declared along the MRO."""
    names: set[str] = set()
    for klass in cls.__mro__:
        declared = klass.__dict__.get(TRANSIENT_ATTR)
        if declared:
            names.update(declared)
    return frozenset(names)


def has_replace(obj: Any) -> bool:
    return hasattr(type(obj), REPLACE_METHOD)


def apply_replace(obj: Any) -> Any:
    return getattr(obj, REPLACE_METHOD)()


def has_resolve(cls: type) -> bool:
    return hasattr(cls, RESOLVE_METHOD)


def apply_resolve(obj: Any) -> Any:
    return getattr(obj, RESOLVE_METHOD)()
