"""Value adapters: stdlib value types over the wire.

Application data is full of ``datetime``, ``Decimal``, ``uuid.UUID`` —
immutable stdlib values the core wire format has no tags for and whose
classes cannot be made ``Serializable``. Adapters bridge them: each is an
externalizer that encodes the value into a compact payload and decodes it
back, registered under a stable name on both endpoints.

Adapters are value-like by construction (externalized objects never join
the linear map), which is semantically right: immutable values cannot be
"restored in place", only referenced.

The default adapters are installed into the global registry on import of
:mod:`repro.serde` — both endpoints of this library always agree on them.
Applications can add their own::

    from repro.serde.adapters import register_value_adapter

    register_value_adapter(
        IPv4Address, "myapp.ipv4",
        encode=lambda a: str(a).encode(),
        decode=lambda b: IPv4Address(b.decode()),
    )
"""

from __future__ import annotations

import datetime
import decimal
import uuid
from typing import Any, Callable, Optional

from repro.serde.registry import ClassRegistry, Externalizer, global_registry


def register_value_adapter(
    cls: type,
    name: str,
    encode: Callable[[Any], bytes],
    decode: Callable[[bytes], Any],
    registry: Optional[ClassRegistry] = None,
) -> None:
    """Teach the wire format a value type via an encode/decode pair.

    Claims are exact-type (subclasses would silently lose information).
    """
    target = registry if registry is not None else global_registry
    target.register_externalizer(
        Externalizer(
            name=name,
            claims=lambda obj: type(obj) is cls,
            replace=encode,
            resolve=decode,
            type_based=True,
        )
    )


# ------------------------------------------------------- default adapters

_EPOCH = datetime.date(1970, 1, 1)


def _encode_datetime(value: datetime.datetime) -> bytes:
    return value.isoformat().encode("ascii")


def _decode_datetime(payload: bytes) -> datetime.datetime:
    return datetime.datetime.fromisoformat(payload.decode("ascii"))


def _encode_date(value: datetime.date) -> bytes:
    return value.isoformat().encode("ascii")


def _decode_date(payload: bytes) -> datetime.date:
    return datetime.date.fromisoformat(payload.decode("ascii"))


def _encode_time(value: datetime.time) -> bytes:
    return value.isoformat().encode("ascii")


def _decode_time(payload: bytes) -> datetime.time:
    return datetime.time.fromisoformat(payload.decode("ascii"))


def _encode_timedelta(value: datetime.timedelta) -> bytes:
    return f"{value.days}:{value.seconds}:{value.microseconds}".encode("ascii")


def _decode_timedelta(payload: bytes) -> datetime.timedelta:
    days, seconds, microseconds = (int(part) for part in payload.split(b":"))
    return datetime.timedelta(days=days, seconds=seconds, microseconds=microseconds)


def _encode_decimal(value: decimal.Decimal) -> bytes:
    return str(value).encode("ascii")


def _decode_decimal(payload: bytes) -> decimal.Decimal:
    return decimal.Decimal(payload.decode("ascii"))


def _encode_uuid(value: uuid.UUID) -> bytes:
    return value.bytes


def _decode_uuid(payload: bytes) -> uuid.UUID:
    return uuid.UUID(bytes=payload)


def install_default_adapters(registry: Optional[ClassRegistry] = None) -> None:
    """Register the stdlib adapters (idempotent per registry)."""
    pairs = (
        (datetime.datetime, "std.datetime", _encode_datetime, _decode_datetime),
        (datetime.date, "std.date", _encode_date, _decode_date),
        (datetime.time, "std.time", _encode_time, _decode_time),
        (datetime.timedelta, "std.timedelta", _encode_timedelta, _decode_timedelta),
        (decimal.Decimal, "std.decimal", _encode_decimal, _decode_decimal),
        (uuid.UUID, "std.uuid", _encode_uuid, _decode_uuid),
    )
    for cls, name, encode, decode in pairs:
        register_value_adapter(cls, name, encode, decode, registry=registry)
