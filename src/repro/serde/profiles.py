"""Serialization runtime profiles.

The paper evaluates every configuration under two JDKs:

* **JDK 1.3** — RMI layered over slow general-purpose facilities: reflective
  field access with security checks and no descriptor caching;
* **JDK 1.4** — serialization flattened onto direct memory access
  ("Unsafe"), roughly 50-60% faster in the paper's LAN setting.

The reproduction models the pair as *profiles* of one wire format. A profile
bundles the field accessor, whether class/field descriptors are interned
(cached) in the stream, and whether a per-object validation pass runs. The
``legacy`` profile therefore does strictly more work and writes strictly
more bytes per object — the same mechanism, and hence the same *shape* of
speedup, as the JDK 1.3 to 1.4 transition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serde.accessors import (
    FieldAccessor,
    OPTIMIZED_ACCESSOR,
    PORTABLE_ACCESSOR,
)


@dataclass(frozen=True)
class SerializationProfile:
    """Immutable bundle of serializer behaviour knobs."""

    name: str
    accessor: FieldAccessor
    intern_descriptors: bool
    per_object_validation: bool
    #: Use compiled per-class encode/decode plans (see repro.serde.plans)
    #: and the zero-copy buffer fast path. The wire format is unchanged —
    #: only the encoder/decoder implementation differs.
    use_compiled_plans: bool = False
    #: Route writes/reads through the chunk-list / slice-copy buffer classes
    #: that model the legacy stack's per-primitive allocation behaviour.
    chunked_buffers: bool = False
    #: Use exec-generated per-class encode/decode functions
    #: (see repro.serde.codegen) on top of compiled plans. Subordinate to
    #: ``use_compiled_plans`` — ignored when plans are off. Byte-identical
    #: to the interpreted plan path.
    use_codegen: bool = False

    def __repr__(self) -> str:
        return f"SerializationProfile({self.name!r})"


#: Models JDK 1.3-era RMI: reflective access, full descriptors per object,
#: per-object validation, allocation-heavy stream layer.
LEGACY_PROFILE = SerializationProfile(
    name="legacy",
    accessor=PORTABLE_ACCESSOR,
    intern_descriptors=False,
    per_object_validation=True,
    use_compiled_plans=False,
    chunked_buffers=True,
)

#: Models JDK 1.4-era RMI: compiled class plans, interned descriptors,
#: single-buffer zero-copy stream layer.
MODERN_PROFILE = SerializationProfile(
    name="modern",
    accessor=OPTIMIZED_ACCESSOR,
    intern_descriptors=True,
    per_object_validation=False,
    use_compiled_plans=True,
    chunked_buffers=False,
    use_codegen=True,
)

_PROFILES = {p.name: p for p in (LEGACY_PROFILE, MODERN_PROFILE)}


def profile_by_name(name: str) -> SerializationProfile:
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; expected one of {sorted(_PROFILES)}"
        ) from None
