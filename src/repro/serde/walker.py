"""Generic object-graph traversal.

Used by the copy-restore engine (classifying new vs old objects), the delta
encoder (change detection), the DGC (reachability of remote refs), and
tests (heap-state assertions). Traversal is iterative and identity-deduped.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.serde.accessors import FieldAccessor, OPTIMIZED_ACCESSOR
from repro.serde.kinds import Kind, classify, is_mutable_kind
from repro.util.identity import IdentitySet


def iter_children(obj: Any, accessor: FieldAccessor = OPTIMIZED_ACCESSOR) -> Iterator[Any]:
    """Yield the objects directly referenced by *obj* (one level deep).

    For dicts both keys and values are children. Primitives (including str
    and bytes) have no children.
    """
    kind = classify(obj)
    if kind in (Kind.LIST, Kind.TUPLE, Kind.SET, Kind.FROZENSET):
        yield from obj
    elif kind is Kind.DICT:
        for key, value in obj.items():
            yield key
            yield value
    elif kind is Kind.OBJECT:
        for _name, value in accessor.get_state(obj):
            yield value


def reachable(
    roots: List[Any],
    accessor: FieldAccessor = OPTIMIZED_ACCESSOR,
    mutable_only: bool = False,
    stop: Optional[Callable[[Any], bool]] = None,
) -> Iterator[Any]:
    """Iterate every object reachable from *roots*, each exactly once.

    Traversal is depth-first pre-order using an explicit stack, so depth is
    unbounded. Primitives (including str/bytes) are not yielded — they are
    values, not identity-bearing heap cells. When *stop* returns True for
    an object, the object is yielded but not descended into (used by the
    RMI layer to stop at remote references).
    """
    seen = IdentitySet()
    stack = list(reversed(roots))
    while stack:
        obj = stack.pop()
        kind = classify(obj)
        if kind is Kind.PRIMITIVE:
            continue
        if obj in seen:
            continue
        seen.add(obj)
        if not mutable_only or is_mutable_kind(kind):
            yield obj
        if stop is not None and stop(obj):
            continue
        children = list(iter_children(obj, accessor))
        stack.extend(reversed(children))


def count_reachable(roots: List[Any], accessor: FieldAccessor = OPTIMIZED_ACCESSOR) -> int:
    """Number of distinct identity-bearing objects reachable from *roots*."""
    return sum(1 for _ in reachable(roots, accessor))
