"""Wire-stream inspector: decode a stream into a human-readable listing.

A debugging tool for the NRMI wire format::

    from repro.serde.dump import dump_stream
    print(dump_stream(payload))

or from the shell::

    python -m repro.serde.dump payload.bin

The inspector is *structural*: it parses tags, handles, class and field
descriptors without instantiating anything, so it works even when the
receiving process has none of the classes registered — exactly when you
need to see what a peer actually sent.
"""

from __future__ import annotations

import sys
from typing import List

from repro.errors import WireFormatError
from repro.serde.tags import Tag, WIRE_MAGIC, WIRE_VERSION
from repro.util.buffers import BufferReader


class _Inspector:
    def __init__(self, data: bytes) -> None:
        self.buf = BufferReader(data)
        self.lines: List[str] = []
        self.next_handle = 0
        self.classes: List[str] = []
        self.names: List[str] = []

    def run(self) -> str:
        magic = self.buf.read_bytes(len(WIRE_MAGIC))
        if magic != WIRE_MAGIC:
            raise WireFormatError(f"not an NRMI stream (magic {magic!r})")
        version = self.buf.read_u8()
        flags = self.buf.read_u8()
        self.lines.append(f"NRMI stream v{version} flags=0x{flags:02x}")
        root = 0
        while self.buf.remaining:
            self.lines.append(f"root[{root}]:")
            self._value(depth=1)
            root += 1
        return "\n".join(self.lines)

    def _emit(self, depth: int, text: str) -> None:
        self.lines.append("  " * depth + text)

    def _alloc(self) -> int:
        handle = self.next_handle
        self.next_handle += 1
        return handle

    def _read_class(self) -> str:
        key = self.buf.read_uvarint()
        if key == 0:
            name = self.buf.read_str()
            version = self.buf.read_uvarint()
            label = f"{name}@v{version}" if version else name
            self.classes.append(label)
            return label
        return self.classes[key - 1]

    def _read_name(self) -> str:
        key = self.buf.read_uvarint()
        if key == 0:
            name = self.buf.read_str()
            self.names.append(name)
            return name
        return self.names[key - 1]

    def _value(self, depth: int) -> None:
        tag = Tag(self.buf.read_u8())
        if tag is Tag.NONE:
            self._emit(depth, "None")
        elif tag is Tag.TRUE:
            self._emit(depth, "True")
        elif tag is Tag.FALSE:
            self._emit(depth, "False")
        elif tag is Tag.INT:
            self._emit(depth, f"int {self.buf.read_varint()}")
        elif tag is Tag.INT_BIG:
            negative = self.buf.read_u8()
            magnitude = int.from_bytes(self.buf.read_len_bytes(), "big")
            self._emit(depth, f"bigint {'-' if negative else ''}{magnitude}")
        elif tag is Tag.FLOAT:
            self._emit(depth, f"float {self.buf.read_f64()!r}")
        elif tag is Tag.COMPLEX:
            self._emit(depth, f"complex({self.buf.read_f64()}, {self.buf.read_f64()})")
        elif tag is Tag.STR:
            handle = self._alloc()
            text = self.buf.read_str()
            shown = text if len(text) <= 40 else text[:37] + "..."
            self._emit(depth, f"str #{handle} {shown!r}")
        elif tag is Tag.BYTES:
            handle = self._alloc()
            data = self.buf.read_len_bytes()
            self._emit(depth, f"bytes #{handle} ({len(data)} bytes)")
        elif tag is Tag.BYTEARRAY:
            handle = self._alloc()
            data = self.buf.read_len_bytes()
            self._emit(depth, f"bytearray #{handle} ({len(data)} bytes)")
        elif tag is Tag.REF:
            self._emit(depth, f"ref -> #{self.buf.read_uvarint()}")
        elif tag in (Tag.LIST, Tag.TUPLE, Tag.SET, Tag.FROZENSET):
            handle = self._alloc()
            count = self.buf.read_uvarint()
            self._emit(depth, f"{tag.name.lower()} #{handle} ({count} items)")
            for _ in range(count):
                self._value(depth + 1)
        elif tag is Tag.DICT:
            handle = self._alloc()
            count = self.buf.read_uvarint()
            self._emit(depth, f"dict #{handle} ({count} entries)")
            for _ in range(count):
                self._value(depth + 1)  # key
                self._value(depth + 1)  # value
        elif tag is Tag.OBJECT:
            handle = self._alloc()
            class_name = self._read_class()
            count = self.buf.read_uvarint()
            self._emit(depth, f"object #{handle} {class_name} ({count} fields)")
            for _ in range(count):
                field = self._read_name()
                self._emit(depth + 1, f".{field} =")
                self._value(depth + 2)
        elif tag is Tag.EXTERNAL:
            handle = self._alloc()
            ext_name = self._read_name()
            payload = self.buf.read_len_bytes()
            self._emit(
                depth, f"external #{handle} {ext_name!r} ({len(payload)} bytes)"
            )
        else:  # pragma: no cover - Tag() above rejects unknown bytes
            raise WireFormatError(f"unhandled tag {tag}")


def dump_stream(data: bytes) -> str:
    """Render an NRMI wire stream as an indented structural listing."""
    try:
        return _Inspector(data).run()
    except ValueError as exc:
        raise WireFormatError(f"unknown tag byte in stream: {exc}") from exc


def main(argv: List[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if len(args) != 1:
        print("usage: python -m repro.serde.dump <stream-file>", file=sys.stderr)
        return 2
    with open(args[0], "rb") as handle:
        print(dump_stream(handle.read()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
