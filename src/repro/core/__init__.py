"""The paper's primary contribution: call-by-copy-restore for object graphs.

Contents:

* :mod:`repro.core.markers` — the marker types that select calling
  semantics per class, mirroring ``java.io.Serializable`` /
  ``java.rmi.Restorable`` / ``java.rmi.Remote``;
* :mod:`repro.core.semantics` — per-parameter passing-mode resolution;
* :mod:`repro.core.matching` — step 4 of the algorithm (linear-map
  match-up, old/new classification);
* :mod:`repro.core.copy_restore` — steps 5-6 (in-place overwrite and
  pointer conversion, single DFS);
* :mod:`repro.core.restore_protocol` — the four restore policies on the
  wire: full map (NRMI), delta (the paper's future-work optimization),
  DCE-RPC partial restore, and none (plain call-by-copy);
* :mod:`repro.core.local` — local-execution baselines.
"""

from repro.core.markers import Remote, Restorable, Serializable, is_restorable
from repro.core.semantics import PassingMode, resolve_mode
from repro.core.copy_restore import RestoreEngine
from repro.core.matching import MatchResult, match_maps
from repro.core.restore_protocol import (
    RestorePolicy,
    NoRestorePolicy,
    FullRestorePolicy,
    DeltaRestorePolicy,
    DceRestorePolicy,
    policy_by_name,
)

__all__ = [
    "Remote",
    "Restorable",
    "Serializable",
    "is_restorable",
    "PassingMode",
    "resolve_mode",
    "RestoreEngine",
    "MatchResult",
    "match_maps",
    "RestorePolicy",
    "NoRestorePolicy",
    "FullRestorePolicy",
    "DeltaRestorePolicy",
    "DceRestorePolicy",
    "policy_by_name",
]
