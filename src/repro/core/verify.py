"""Heap-equivalence checking: the library form of the paper's invariant.

The paper states its benchmark invariant as *"all the changes are visible
to the caller ... as if both the caller and the callee were executing
within the same address space"*. Checking that rigorously means comparing
two heaps up to isomorphism **including aliasing**: not just equal values,
but the same sharing structure.

:func:`fingerprint` projects the heap reachable from given roots into a
canonical, comparable form: objects are numbered by first visit in a
deterministic traversal and every reference becomes the target's number.
Two root-lists have equal fingerprints iff the heaps are isomorphic and
the roots correspond — which is exactly "a local call and a remote call
left the caller in the same state".

Used by the test suite, the benchmark harness's ``verify`` mode, and
available to applications as a debugging aid.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.serde.accessors import FieldAccessor, OPTIMIZED_ACCESSOR
from repro.serde.kinds import Kind, classify
from repro.util.identity import IdentityMap


def fingerprint(
    roots: List[Any],
    accessor: FieldAccessor = OPTIMIZED_ACCESSOR,
    opaque: Optional[Callable[[Any], bool]] = None,
) -> Tuple:
    """A canonical projection of the heap reachable from *roots*.

    ``opaque`` objects (e.g. remote references) are represented by type
    name only and not descended into.
    """
    numbers: IdentityMap[int] = IdentityMap()
    cells: List[Tuple] = []
    iso_cache: IdentityMap[str] = IdentityMap()

    def iso_key(value: Any) -> str:
        """A heap-address-independent ordering key for set members.

        Set iteration order depends on identity hashes, which differ
        between otherwise-isomorphic heaps; numbering members in that
        order would make fingerprints of equivalent heaps diverge. The
        key is the member's own canonical fingerprint computed in an
        isolated numbering context (memoized per outer call). Members
        with value-identical subgraphs tie — their relative order is then
        irrelevant precisely because they are indistinguishable by value.
        """
        cached = iso_cache.get(value)
        if cached is None:
            cached = repr(fingerprint([value], accessor, opaque))
            iso_cache[value] = cached
        return cached

    def token(value: Any):
        kind = classify(value)
        if kind is Kind.PRIMITIVE:
            return ("prim", type(value).__name__, value)
        existing = numbers.get(value)
        if existing is not None:
            return ("ref", existing)
        number = len(numbers)
        numbers[value] = number
        if opaque is not None and opaque(value):
            cells.append((number, "opaque", type(value).__name__))
        elif kind is Kind.OBJECT:
            state = sorted(accessor.get_state(value))
            cells.append(
                (
                    number,
                    "obj",
                    type(value).__name__,
                    tuple((name, token(child)) for name, child in state),
                )
            )
        elif kind is Kind.LIST:
            cells.append((number, "list", tuple(token(item) for item in value)))
        elif kind is Kind.TUPLE:
            cells.append((number, "tuple", tuple(token(item) for item in value)))
        elif kind in (Kind.SET, Kind.FROZENSET):
            ordered_members = sorted(value, key=iso_key)
            member_tokens = [repr(token(item)) for item in ordered_members]
            cells.append((number, kind.name.lower(), tuple(sorted(member_tokens))))
        elif kind is Kind.DICT:
            entries = [(token(key), token(val)) for key, val in value.items()]
            cells.append((number, "dict", tuple(sorted(entries, key=repr))))
        elif kind is Kind.BYTEARRAY:
            cells.append((number, "bytearray", bytes(value)))
        else:
            cells.append((number, "unknown", type(value).__name__))
        return ("ref", number)

    root_tokens = tuple(token(root) for root in roots)
    return (root_tokens, tuple(cells))


def heaps_equivalent(
    roots_a: List[Any],
    roots_b: List[Any],
    accessor: FieldAccessor = OPTIMIZED_ACCESSOR,
    opaque: Optional[Callable[[Any], bool]] = None,
) -> bool:
    """True iff the two heaps are isomorphic with corresponding roots."""
    return fingerprint(roots_a, accessor, opaque) == fingerprint(
        roots_b, accessor, opaque
    )


def explain_difference(
    roots_a: List[Any], roots_b: List[Any], limit: int = 5
) -> str:
    """A short human-readable description of where two heaps diverge."""
    fp_a = fingerprint(roots_a)
    fp_b = fingerprint(roots_b)
    if fp_a == fp_b:
        return "heaps are equivalent"
    lines: List[str] = []
    if fp_a[0] != fp_b[0]:
        lines.append(f"roots differ: {fp_a[0]!r} vs {fp_b[0]!r}")
    cells_a = {cell[0]: cell for cell in fp_a[1]}
    cells_b = {cell[0]: cell for cell in fp_b[1]}
    for number in sorted(set(cells_a) | set(cells_b)):
        if cells_a.get(number) != cells_b.get(number):
            lines.append(
                f"object #{number}: {cells_a.get(number)!r} vs "
                f"{cells_b.get(number)!r}"
            )
            if len(lines) >= limit:
                lines.append("...")
                break
    return "\n".join(lines)
