"""Restore policies: what travels back after the remote method returns.

Four policies, all sharing the request-side machinery (one stream, one
handle table, linear map recorded on both endpoints):

``none``
    Plain call-by-copy: only the return value travels back (Java RMI).

``full``
    NRMI as implemented in the paper: the whole retained linear map travels
    back along with the return value (Section 5.2.2).

``delta``
    The paper's future-work optimization (Section 5.2.4 #2): the server
    snapshots each retained object's shallow state after unmarshalling and
    ships back only the objects that changed, plus new objects. References
    to *unchanged* old objects are encoded as back-references into the
    caller's own linear map, so passing an object by copy-restore and not
    changing it costs almost the same as passing it by copy.

``dce``
    The DCE RPC semantics baseline (Section 4.2): only objects still
    *reachable from the parameters after the call* are restored. Changes to
    data that became unreachable are silently lost — the behaviour the
    paper's Figure 9 illustrates with Microsoft RPC.

A policy runs on both endpoints: ``snapshot``/``build_response`` on the
server, ``parse_response`` on the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.core.copy_restore import RestoreEngine, RestoreStats
from repro.core.matching import match_maps, match_sparse
from repro.errors import RestoreError
from repro.serde.digest import SlotDigestTable, digest_slots
from repro.serde.accessors import FieldAccessor, OPTIMIZED_ACCESSOR
from repro.serde.kinds import Kind, classify
from repro.serde.reader import ObjectReader
from repro.serde.registry import ClassRegistry, Externalizer
from repro.serde.walker import reachable
from repro.serde.writer import ObjectWriter
from repro.serde.profiles import MODERN_PROFILE, SerializationProfile
from repro.util.buffers import BufferReader, BufferWriter
from repro.util.identity import IdentityMap, IdentitySet

_OLDREF_EXT = "nrmi.oldref"

_PRIMITIVE_COMPARABLE = (type(None), bool, int, float, complex, str, bytes)


@dataclass
class ServerRestoreContext:
    """Everything the server side of a policy needs."""

    retained: List[Any]
    restore_roots: List[Any]
    profile: SerializationProfile = MODERN_PROFILE
    registry: Optional[ClassRegistry] = None
    accessor: FieldAccessor = OPTIMIZED_ACCESSOR
    externalizers: Tuple = ()
    # Reachability stop predicate (remote stubs/pointers are leaves).
    stop: Optional[Any] = None
    # Optional MetricsRegistry: delta-slots records dirty/clean counts and
    # an estimate of the reply bytes the elided slots saved.
    metrics: Optional[Any] = None
    # "Before" digests captured *during* argument deserialization (the
    # fused decode+digest pass). When present, delta-slots' snapshot uses
    # them directly instead of re-walking the retained linear map.
    predigested: Optional[SlotDigestTable] = None


@dataclass
class ClientRestoreContext:
    """Everything the caller side of a policy needs."""

    originals: List[Any]
    profile: SerializationProfile = MODERN_PROFILE
    registry: Optional[ClassRegistry] = None
    engine: RestoreEngine = field(default_factory=RestoreEngine)
    externalizers: Tuple = ()
    # Filled by parse_response with reply-shape facts (kind, dirty/total
    # slot counts) so the caller can feed its adaptive policy chooser.
    reply_info: Dict[str, Any] = field(default_factory=dict)


class RestorePolicy:
    """Interface both endpoints agree on (the name travels in the request)."""

    name = "abstract"

    def snapshot(self, context: ServerRestoreContext) -> Any:
        """Capture pre-execution state on the server (default: nothing)."""
        return None

    def build_response(
        self, result: Any, context: ServerRestoreContext, snapshot: Any
    ) -> bytes:
        raise NotImplementedError

    def parse_response(
        self, payload: bytes, context: ClientRestoreContext
    ) -> Tuple[Any, Optional[RestoreStats]]:
        """Apply the restore on the caller; return (result, stats)."""
        raise NotImplementedError


class NoRestorePolicy(RestorePolicy):
    """Plain call-by-copy: the return value is the whole response."""

    name = "none"

    def build_response(
        self, result: Any, context: ServerRestoreContext, snapshot: Any
    ) -> bytes:
        writer = ObjectWriter(
            profile=context.profile,
            registry=context.registry,
            externalizers=context.externalizers,
        )
        writer.write_root(result)
        return writer.getvalue()

    def parse_response(
        self, payload: bytes, context: ClientRestoreContext
    ) -> Tuple[Any, Optional[RestoreStats]]:
        reader = ObjectReader(
            payload,
            profile=context.profile,
            registry=context.registry,
            externalizers=context.externalizers,
        )
        result = reader.read_root()
        reader.expect_end()
        return result, None


class FullRestorePolicy(RestorePolicy):
    """NRMI: ship the whole retained linear map back (paper Section 5.2.2)."""

    name = "full"

    def build_response(
        self, result: Any, context: ServerRestoreContext, snapshot: Any
    ) -> bytes:
        writer = ObjectWriter(
            profile=context.profile,
            registry=context.registry,
            externalizers=context.externalizers,
        )
        writer.write_root(result)
        writer.write_root(context.retained)
        return writer.getvalue()

    def parse_response(
        self, payload: bytes, context: ClientRestoreContext
    ) -> Tuple[Any, Optional[RestoreStats]]:
        reader = ObjectReader(
            payload,
            profile=context.profile,
            registry=context.registry,
            externalizers=context.externalizers,
        )
        result = reader.read_root()
        modifieds = reader.read_root()
        reader.expect_end()
        if not isinstance(modifieds, list):
            raise RestoreError("full-restore payload root is not a list")
        match = match_maps(context.originals, modifieds)
        result, stats = context.engine.restore(match, result)
        return result, stats


def _shallow_state(obj: Any, accessor: FieldAccessor) -> Tuple[Any, ...]:
    """A shallow fingerprint of *obj* holding strong references."""
    kind = classify(obj)
    if kind is Kind.OBJECT:
        return tuple(accessor.get_state(obj))
    if kind is Kind.LIST:
        return tuple(obj)
    if kind is Kind.DICT:
        return tuple(obj.items())
    if kind is Kind.SET:
        return tuple(obj)
    if kind is Kind.BYTEARRAY:
        return (bytes(obj),)
    raise RestoreError(f"cannot snapshot object of kind {kind}")


def _values_equal(old: Any, new: Any) -> bool:
    """Identity for reference values, equality for primitives."""
    if old is new:
        return True
    if type(old) is not type(new):
        return False
    if isinstance(old, _PRIMITIVE_COMPARABLE):
        return old == new
    return False


def _state_changed(old_state: Tuple[Any, ...], new_state: Tuple[Any, ...]) -> bool:
    if len(old_state) != len(new_state):
        return True
    for old_item, new_item in zip(old_state, new_state):
        if _values_equal(old_item, new_item):
            continue
        if (
            isinstance(old_item, tuple)
            and isinstance(new_item, tuple)
            and len(old_item) == 2
            and len(new_item) == 2
        ):
            # (name, value) / (key, value) pairs are rebuilt on every
            # snapshot, so compare their two slots instead of their identity.
            if _values_equal(old_item[0], new_item[0]) and _values_equal(
                old_item[1], new_item[1]
            ):
                continue
        return True
    return False


def _encode_index(index: int) -> bytes:
    writer = BufferWriter()
    writer.write_uvarint(index)
    return writer.getvalue()


def _decode_index(payload: bytes) -> int:
    reader = BufferReader(payload)
    index = reader.read_uvarint()
    reader.expect_end()
    return index


class DeltaRestorePolicy(RestorePolicy):
    """Ship only changed old objects; reference unchanged ones by position."""

    name = "delta"

    def snapshot(self, context: ServerRestoreContext) -> List[Tuple[Any, ...]]:
        accessor = context.accessor
        return [_shallow_state(obj, accessor) for obj in context.retained]

    def build_response(
        self, result: Any, context: ServerRestoreContext, snapshot: Any
    ) -> bytes:
        accessor = context.accessor
        changed_indices: List[int] = []
        unchanged: IdentityMap[int] = IdentityMap()
        for index, (obj, before) in enumerate(zip(context.retained, snapshot)):
            if _state_changed(before, _shallow_state(obj, accessor)):
                changed_indices.append(index)
            else:
                unchanged[obj] = index
        oldref = Externalizer(
            name=_OLDREF_EXT,
            claims=lambda obj: obj in unchanged,
            replace=lambda obj: _encode_index(unchanged[obj]),
            resolve=lambda payload: None,  # never used on the server
        )
        writer = ObjectWriter(
            profile=context.profile,
            registry=context.registry,
            externalizers=(oldref,) + tuple(context.externalizers),
        )
        writer.write_root(result)
        writer.write_root(changed_indices)
        writer.write_root([context.retained[i] for i in changed_indices])
        return writer.getvalue()

    def parse_response(
        self, payload: bytes, context: ClientRestoreContext
    ) -> Tuple[Any, Optional[RestoreStats]]:
        originals = context.originals
        resolved = IdentitySet()

        def resolve(raw: bytes) -> Any:
            index = _decode_index(raw)
            try:
                obj = originals[index]
            except IndexError:
                raise RestoreError(f"delta payload references old object {index}") from None
            resolved.add(obj)
            return obj

        oldref = Externalizer(
            name=_OLDREF_EXT,
            claims=lambda obj: False,  # never used on the caller
            replace=lambda obj: b"",
            resolve=resolve,
        )
        reader = ObjectReader(
            payload,
            profile=context.profile,
            registry=context.registry,
            externalizers=(oldref,) + tuple(context.externalizers),
        )
        result = reader.read_root()
        changed_indices = reader.read_root()
        changed_objects = reader.read_root()
        reader.expect_end()
        match = match_maps(
            [originals[i] for i in changed_indices], changed_objects
        )
        result, stats = context.engine.restore(match, result, skip=resolved)
        return result, stats


class DeltaSlotsRestorePolicy(RestorePolicy):
    """Dirty-slot replies: digest every retained slot at deserialization
    time, re-digest at reply-encode time, and ship only the slots whose
    digests changed (plus all new objects reachable from them and the
    return value).

    This is the negotiated evolution of :class:`DeltaRestorePolicy`: the
    caller advertises :data:`repro.rmi.protocol.CAP_DELTA_SLOTS` in the
    CALL flags byte, and the server answers with reply kind 4 — a compact
    header of delta-coded dirty indices followed by one serde stream.
    Non-advertising callers transparently get the legacy object-delta or
    full-map reply instead.
    """

    name = "delta-slots"

    def snapshot(self, context: ServerRestoreContext) -> SlotDigestTable:
        # The "before" picture every slot is compared against at reply
        # time. The invocation pipeline usually captures it *during*
        # argument deserialization (the fused decode+digest pass), so the
        # retained map is not walked a second time here; the explicit
        # walk remains for callers that decode without fusion (shipped
        # maps, direct policy use in tests).
        if context.predigested is not None:
            return context.predigested
        return digest_slots(context.retained, context.accessor)

    def build_response(
        self, result: Any, context: ServerRestoreContext, snapshot: Any
    ) -> bytes:
        current = digest_slots(context.retained, context.accessor)
        dirty = snapshot.dirty_indices(current)
        dirty_set = set(dirty)
        clean: IdentityMap[int] = IdentityMap()
        bytes_saved = 0
        for index, obj in enumerate(context.retained):
            if index not in dirty_set:
                clean[obj] = index
                bytes_saved += snapshot.sizes[index]
        oldref = Externalizer(
            name=_OLDREF_EXT,
            claims=lambda obj: obj in clean,
            replace=lambda obj: _encode_index(clean[obj]),
            resolve=lambda payload: None,  # never used on the server
        )
        header = BufferWriter()
        header.write_uvarint(len(context.retained))
        header.write_uvarint(len(dirty))
        previous = -1
        for index in dirty:
            header.write_uvarint(index - previous - 1)
            previous = index
        writer = ObjectWriter(
            profile=context.profile,
            registry=context.registry,
            externalizers=(oldref,) + tuple(context.externalizers),
        )
        writer.write_root(result)
        writer.write_root([context.retained[i] for i in dirty])
        metrics = context.metrics
        if metrics is not None:
            metrics.counter("delta.slots_dirty").add(len(dirty))
            metrics.counter("delta.slots_clean").add(
                len(context.retained) - len(dirty)
            )
            # Estimate: each elided slot would have cost at least its
            # shallow-token length in a full-map reply.
            metrics.counter("delta.reply_bytes_saved").add(bytes_saved)
            if context.retained:
                metrics.distribution("delta.dirty_ratio").record(
                    len(dirty) / len(context.retained)
                )
        return header.getvalue() + writer.getvalue()

    def parse_response(
        self, payload: bytes, context: ClientRestoreContext
    ) -> Tuple[Any, Optional[RestoreStats]]:
        originals = context.originals
        header = BufferReader(payload)
        total = header.read_uvarint()
        if total != len(originals):
            raise RestoreError(
                f"delta-slots reply covers {total} slots, caller retained "
                f"{len(originals)}"
            )
        dirty_count = header.read_uvarint()
        dirty_indices: List[int] = []
        previous = -1
        for _ in range(dirty_count):
            index = previous + 1 + header.read_uvarint()
            dirty_indices.append(index)
            previous = index
        stream = header.read_view(header.remaining)

        resolved = IdentitySet()

        def resolve(raw: bytes) -> Any:
            index = _decode_index(raw)
            try:
                obj = originals[index]
            except IndexError:
                raise RestoreError(
                    f"delta-slots payload references old object {index}"
                ) from None
            resolved.add(obj)
            return obj

        oldref = Externalizer(
            name=_OLDREF_EXT,
            claims=lambda obj: False,  # never used on the caller
            replace=lambda obj: b"",
            resolve=resolve,
        )
        reader = ObjectReader(
            stream,
            profile=context.profile,
            registry=context.registry,
            externalizers=(oldref,) + tuple(context.externalizers),
        )
        result = reader.read_root()
        dirty_objects = reader.read_root()
        reader.expect_end()
        if not isinstance(dirty_objects, list):
            raise RestoreError("delta-slots payload root is not a list")
        match = match_sparse(originals, dirty_indices, dirty_objects)
        result, stats = context.engine.restore(match, result, skip=resolved)
        context.reply_info.update(
            kind=self.name, dirty=dirty_count, total=total
        )
        return result, stats


class DceRestorePolicy(RestorePolicy):
    """DCE RPC semantics: restore only what the parameters still reach.

    Old objects that became unreachable from the parameters keep their
    *original* (stale) values on the caller — the Figure 9 behaviour.
    """

    name = "dce"

    def build_response(
        self, result: Any, context: ServerRestoreContext, snapshot: Any
    ) -> bytes:
        still_reachable = IdentitySet()
        for obj in reachable(
            list(context.restore_roots),
            context.accessor,
            mutable_only=True,
            stop=context.stop,
        ):
            still_reachable.add(obj)
        kept_indices = [
            index
            for index, obj in enumerate(context.retained)
            if obj in still_reachable
        ]
        writer = ObjectWriter(
            profile=context.profile,
            registry=context.registry,
            externalizers=context.externalizers,
        )
        writer.write_root(result)
        writer.write_root(kept_indices)
        writer.write_root([context.retained[i] for i in kept_indices])
        return writer.getvalue()

    def parse_response(
        self, payload: bytes, context: ClientRestoreContext
    ) -> Tuple[Any, Optional[RestoreStats]]:
        reader = ObjectReader(
            payload,
            profile=context.profile,
            registry=context.registry,
            externalizers=context.externalizers,
        )
        result = reader.read_root()
        kept_indices = reader.read_root()
        kept_objects = reader.read_root()
        reader.expect_end()
        match = match_maps(
            [context.originals[i] for i in kept_indices], kept_objects
        )
        result, stats = context.engine.restore(match, result)
        return result, stats


_POLICIES: Dict[str, Type[RestorePolicy]] = {
    policy.name: policy
    for policy in (
        NoRestorePolicy,
        FullRestorePolicy,
        DeltaRestorePolicy,
        DeltaSlotsRestorePolicy,
        DceRestorePolicy,
    )
}


def policy_by_name(name: str) -> RestorePolicy:
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown restore policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
