"""Per-parameter calling-semantics resolution.

Given an argument value, decide how it travels (paper Section 5.1):

========================  =======================================
argument                  mode
========================  =======================================
primitive                 BY_VALUE (plain copy of the value)
``Remote`` instance       BY_REFERENCE (stub travels)
``Restorable`` instance   BY_COPY_RESTORE
anything serializable     BY_COPY
========================  =======================================

The mode is decided by the *top-level* type of each parameter; everything
reachable from a copy-restore parameter is itself copy-restored (and must
be serializable), per the paper's parent-object policy.
"""

from __future__ import annotations

from enum import Enum
from typing import Any

from repro.core.markers import Remote, Restorable
from repro.serde.kinds import Kind, classify


class PassingMode(Enum):
    """How one argument of a remote call travels."""

    BY_VALUE = "value"
    BY_COPY = "copy"
    BY_COPY_RESTORE = "copy-restore"
    BY_REFERENCE = "reference"

    @property
    def restores(self) -> bool:
        return self is PassingMode.BY_COPY_RESTORE


def resolve_mode(arg: Any) -> PassingMode:
    """Resolve the passing mode for one argument value."""
    if isinstance(arg, Remote):
        return PassingMode.BY_REFERENCE
    if isinstance(arg, Restorable):
        return PassingMode.BY_COPY_RESTORE
    if classify(arg) is Kind.PRIMITIVE:
        return PassingMode.BY_VALUE
    return PassingMode.BY_COPY


def resolve_modes(args: tuple) -> tuple:
    """Resolve the passing mode of every positional argument."""
    return tuple(resolve_mode(arg) for arg in args)
