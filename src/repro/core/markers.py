"""Marker base classes selecting per-type calling semantics.

NRMI follows RMI's design of letting the programmer pick the semantics per
type (paper Section 5.1):

* subclasses of ``java.rmi.server.UnicastRemoteObject`` pass by reference
  → here, :class:`Remote`;
* types implementing ``java.io.Serializable`` pass by copy
  → here, :class:`Serializable`;
* types implementing ``java.rmi.Restorable`` (NRMI's addition) pass by
  copy-restore → here, :class:`Restorable`.

``Restorable`` extends ``Serializable``, reflecting that copy-restore is an
extension of copy. Subclassing a marker auto-registers the class with the
global serialization registry, so a single line —
``class Box(Restorable): ...`` — is all a programmer writes, matching the
paper's "declaring a class to implement java.rmi.Restorable is all that is
required".

Plain containers (lists, dicts, sets, ...) and registered non-marker
classes pass by copy; everything reachable from a restorable parameter is
passed by copy-restore, mirroring the paper's parent-object policy for JDK
types like arrays.
"""

from __future__ import annotations

from typing import Any

from repro.serde.registry import global_registry


class Serializable:
    """Marker: instances pass by-copy in remote calls (deep copy).

    Subclasses are automatically registered for serialization.
    """

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        global_registry.register(cls)


class Restorable(Serializable):
    """Marker: instances pass by-copy-restore in remote calls.

    After the remote method returns, every mutation the server made to data
    reachable from the parameter is reproduced in place on the caller's
    original objects — visible through all aliases, exactly as a local call
    would be.
    """


class Remote:
    """Marker: instances are remotely accessible and pass by-reference.

    The analogue of ``java.rmi.Remote`` + ``UnicastRemoteObject``: when an
    exported instance appears in a remote call, a remote reference (stub)
    travels instead of a copy.
    """


def is_restorable(obj: Any) -> bool:
    """True if *obj* selects call-by-copy-restore semantics."""
    return isinstance(obj, Restorable)
