"""Steps 5-6 of the algorithm: in-place overwrite and pointer conversion.

Given the match between original and modified linear-map entries (step 4),
the engine:

* **step 5** — for each old object, overwrites the *original* version's
  state with the *modified* version's state, converting any pointer to a
  modified-old object into a pointer to the corresponding original;
* **step 6** — for each new object (allocated by the server), converts its
  pointers to modified-old objects into pointers to the originals.

Both steps run in a single traversal of the modified graph, as the paper's
Section 5.2.3 describes. The only subtlety Python adds over Java is hashed
containers: overwriting an object that is a key in a dict (or member of a
set) can change its hash, so the engine applies rewrites in two waves —
field/sequence overwrites first, dict/set rebuilds last — so every key is
hashed exactly once, after its final state is in place.

Immutable containers (tuples, frozensets) cannot be overwritten; they are
rebuilt with converted elements, preserving sharing, and the *parents* get
the rebuilt value. This mirrors how Java treats Strings and boxed
primitives as values.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.core.matching import MatchResult
from repro.errors import RestoreError
from repro.serde.accessors import FieldAccessor, OPTIMIZED_ACCESSOR
from repro.serde.hooks import transient_fields
from repro.serde.kinds import Kind, classify, is_immutable_container
from repro.util.identity import IdentityMap, IdentitySet


class RestoreStats:
    """What a restore pass did — used by tests and the benchmark report."""

    __slots__ = ("old_overwritten", "new_adopted", "immutables_rebuilt")

    def __init__(self) -> None:
        self.old_overwritten = 0
        self.new_adopted = 0
        self.immutables_rebuilt = 0

    def __repr__(self) -> str:
        return (
            f"RestoreStats(old={self.old_overwritten}, new={self.new_adopted}, "
            f"immutables={self.immutables_rebuilt})"
        )


class RestoreEngine:
    """Applies the restore phase on the caller site.

    The engine is configured with a field accessor — the portable or the
    optimized one — which is the axis the paper's two NRMI implementations
    differ on (Section 5.3.1).
    """

    def __init__(
        self,
        accessor: FieldAccessor = OPTIMIZED_ACCESSOR,
        opaque: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self._accessor = accessor
        # Objects the engine must treat as leaves: neither overwritten nor
        # descended into. The RMI layer marks remote stubs and pointers
        # opaque — they pass by reference and own no restorable state.
        self._opaque = opaque

    def restore(
        self,
        match: MatchResult,
        result: Any = None,
        skip: Optional[IdentitySet] = None,
    ) -> Tuple[Any, RestoreStats]:
        """Reproduce the server's mutations on the caller's originals.

        ``match`` pairs each original object with its returned modified
        version; ``result`` is the (deep-copied) return value, whose
        pointers into the structure are converted too so the caller's view
        is seamless; ``skip`` holds objects that are *already* originals
        (delta restore resolves unchanged objects directly) and must be
        neither overwritten nor descended into.

        Returns ``(converted_result, stats)``.
        """
        accessor = self._accessor
        m2o = match.modified_to_original
        skip_set = skip if skip is not None else IdentitySet()
        stats = RestoreStats()
        rebuilt: IdentityMap[Any] = IdentityMap()  # modified immutable -> rebuilt

        def convert(value: Any) -> Any:
            """Map a value in the modified graph to its caller-site value."""
            kind = classify(value)
            if kind is Kind.PRIMITIVE:
                return value
            original = m2o.get(value)
            if original is not None:
                return original
            if is_immutable_container(kind):
                cached = rebuilt.get(value)
                if cached is not None:
                    return cached
                if kind is Kind.TUPLE:
                    replacement = tuple(convert(item) for item in value)
                else:
                    replacement = frozenset(convert(item) for item in value)
                rebuilt[value] = replacement
                stats.immutables_rebuilt += 1
                return replacement
            # New object (server-allocated) or an already-original object:
            # keep identity; its own slots are fixed by the traversal.
            return value

        # ---- traversal of the modified graph, collecting rewrite actions
        sequence_actions: List[Callable[[], None]] = []
        hashed_actions: List[Callable[[], None]] = []

        visited = IdentitySet()
        stack: List[Any] = [result]
        stack.extend(reversed(match.modifieds))
        while stack:
            obj = stack.pop()
            kind = classify(obj)
            if kind is Kind.PRIMITIVE or kind is Kind.UNSUPPORTED:
                continue
            if obj in visited or obj in skip_set:
                continue
            if self._opaque is not None and self._opaque(obj):
                continue
            visited.add(obj)

            if is_immutable_container(kind):
                # Not rewritable; just keep walking through it.
                stack.extend(reversed(list(obj)))
                continue

            original = m2o.get(obj)
            target = original if original is not None else obj
            if original is not None:
                stats.old_overwritten += 1
            else:
                stats.new_adopted += 1

            if kind is Kind.OBJECT:
                state = accessor.get_state(obj)
                stack.extend(value for _name, value in reversed(state))
                sequence_actions.append(
                    self._make_object_action(target, state, convert, accessor)
                )
            elif kind is Kind.LIST:
                stack.extend(reversed(obj))
                items = list(obj)
                sequence_actions.append(self._make_list_action(target, items, convert))
            elif kind is Kind.BYTEARRAY:
                data = bytes(obj)
                sequence_actions.append(self._make_bytearray_action(target, data))
            elif kind is Kind.DICT:
                pairs = list(obj.items())
                for key, value in reversed(pairs):
                    stack.append(value)
                    stack.append(key)
                hashed_actions.append(self._make_dict_action(target, pairs, convert))
            elif kind is Kind.SET:
                items = list(obj)
                stack.extend(reversed(items))
                hashed_actions.append(self._make_set_action(target, items, convert))
            else:  # pragma: no cover - kinds are exhaustive above
                raise RestoreError(f"cannot restore object of kind {kind}")

        # ---- apply: fields and sequences first, hashed containers last
        for action in sequence_actions:
            action()
        for action in hashed_actions:
            action()

        return convert(result), stats

    # ----------------------------------------------------- action builders

    @staticmethod
    def _make_object_action(
        target: Any,
        state: List[Tuple[str, Any]],
        convert: Callable[[Any], Any],
        accessor: FieldAccessor,
    ) -> Callable[[], None]:
        def apply() -> None:
            new_state = [(name, convert(value)) for name, value in state]
            transients = transient_fields(type(target))
            preserved = []
            if transients:
                # Transient fields never travel, so the caller's local
                # values must survive the overwrite untouched.
                preserved = [
                    (name, value)
                    for name, value in accessor.get_state(target)
                    if name in transients
                ]
            stale = {name for name, _ in accessor.get_state(target)}
            stale.difference_update(name for name, _ in new_state)
            stale.difference_update(transients)
            accessor.set_state(target, new_state + preserved)
            for name in stale:
                try:
                    object.__delattr__(target, name)
                except AttributeError:
                    pass

        return apply

    @staticmethod
    def _make_list_action(
        target: list, items: List[Any], convert: Callable[[Any], Any]
    ) -> Callable[[], None]:
        def apply() -> None:
            target[:] = [convert(item) for item in items]

        return apply

    @staticmethod
    def _make_bytearray_action(target: bytearray, data: bytes) -> Callable[[], None]:
        def apply() -> None:
            target[:] = data

        return apply

    @staticmethod
    def _make_dict_action(
        target: dict, pairs: List[Tuple[Any, Any]], convert: Callable[[Any], Any]
    ) -> Callable[[], None]:
        def apply() -> None:
            converted = [(convert(key), convert(value)) for key, value in pairs]
            target.clear()
            target.update(converted)

        return apply

    @staticmethod
    def _make_set_action(
        target: set, items: List[Any], convert: Callable[[Any], Any]
    ) -> Callable[[], None]:
        def apply() -> None:
            converted = [convert(item) for item in items]
            target.clear()
            target.update(converted)

        return apply
