"""Local-execution baselines (paper Table 1 and semantic oracle).

``call_local`` is Baseline 1: the method runs in the caller's address
space, so Python's ordinary call-by-reference-value semantics applies — the
gold standard every remote configuration is compared against.

``call_by_copy_local`` runs the method on a serialization round-tripped
deep copy of the arguments *without* restoring, which is what plain RMI
gives a caller who ignores the return value. Tests use it to demonstrate
the mutations call-by-copy silently drops.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.serde.profiles import MODERN_PROFILE, SerializationProfile
from repro.serde.reader import ObjectReader
from repro.serde.registry import ClassRegistry
from repro.serde.writer import ObjectWriter


def call_local(method: Callable, *args: Any) -> Any:
    """Baseline 1: plain local invocation (call-by-reference)."""
    return method(*args)


def copy_graph(
    value: Any,
    profile: SerializationProfile = MODERN_PROFILE,
    registry: Optional[ClassRegistry] = None,
) -> Any:
    """Deep-copy *value* through the middleware's own serializer."""
    writer = ObjectWriter(profile=profile, registry=registry)
    writer.write_root(value)
    reader = ObjectReader(writer.getvalue(), profile=profile, registry=registry)
    copy = reader.read_root()
    reader.expect_end()
    return copy


def call_by_copy_local(
    method: Callable,
    args: Tuple[Any, ...],
    profile: SerializationProfile = MODERN_PROFILE,
    registry: Optional[ClassRegistry] = None,
) -> Any:
    """Run *method* on serialized copies of *args*; mutations are dropped."""
    writer = ObjectWriter(profile=profile, registry=registry)
    for arg in args:
        writer.write_root(arg)
    reader = ObjectReader(writer.getvalue(), profile=profile, registry=registry)
    copies = [reader.read_root() for _ in args]
    reader.expect_end()
    return method(*copies)
