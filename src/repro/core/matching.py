"""Step 4 of the algorithm: match up the two linear maps.

The caller recorded the original linear map while marshalling; the restore
payload carries the modified versions of (a subset of) those objects, in
the same positional order. Matching is therefore index-wise; this module
validates the match and builds the identity mapping
``modified object -> original object`` that steps 5-6 consume.
"""

from __future__ import annotations

from typing import Any, List

from repro.errors import LinearMapMismatchError, RestoreError
from repro.util.identity import IdentityMap


class MatchResult:
    """The outcome of matching: aligned (original, modified) pairs."""

    __slots__ = ("originals", "modifieds", "modified_to_original")

    def __init__(self, originals: List[Any], modifieds: List[Any]) -> None:
        self.originals = originals
        self.modifieds = modifieds
        self.modified_to_original: IdentityMap[Any] = IdentityMap()
        for original, modified in zip(originals, modifieds):
            self.modified_to_original[modified] = original

    def __len__(self) -> int:
        return len(self.originals)

    def pairs(self):
        return zip(self.originals, self.modifieds)


def match_maps(originals: List[Any], modifieds: List[Any]) -> MatchResult:
    """Validate and build the positional match between map versions.

    Raises :class:`LinearMapMismatchError` when the lengths differ and
    :class:`RestoreError` when positions disagree on type — either means
    the server and client linear maps got out of sync, which the algorithm
    guarantees cannot happen unless the payload is corrupt.
    """
    if len(originals) != len(modifieds):
        raise LinearMapMismatchError(expected=len(originals), received=len(modifieds))
    for position, (original, modified) in enumerate(zip(originals, modifieds)):
        if original is modified:
            # Delta restore resolves unchanged objects straight to the
            # caller's originals; those positions are trivially matched.
            continue
        if type(original) is not type(modified):
            raise RestoreError(
                f"linear map position {position}: original is "
                f"{type(original).__name__}, payload carries "
                f"{type(modified).__name__}"
            )
    return MatchResult(originals, modifieds)


def match_sparse(
    originals: List[Any], dirty_indices: List[int], modifieds: List[Any]
) -> MatchResult:
    """Match only the transmitted dirty positions of a delta-slots reply.

    ``dirty_indices`` are positions into the caller's full retained list;
    ``modifieds`` carries the server's versions of exactly those slots, in
    the same order. Clean positions never enter the match, so the restore
    engine does not touch (or even look at) their originals — the
    overwrite work of steps 4-5 is skipped for them entirely.
    """
    if len(dirty_indices) != len(modifieds):
        raise LinearMapMismatchError(
            expected=len(dirty_indices), received=len(modifieds)
        )
    previous = -1
    for index in dirty_indices:
        if index <= previous:
            raise RestoreError(
                f"dirty indices not strictly increasing at {index}"
            )
        if index >= len(originals):
            raise RestoreError(
                f"dirty index {index} outside retained list of "
                f"{len(originals)} slots"
            )
        previous = index
    return match_maps([originals[i] for i in dirty_indices], modifieds)
