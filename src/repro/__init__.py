"""repro — a reproduction of "NRMI: Natural and Efficient Middleware".

NRMI (Tilevich & Smaragdakis, ICDCS 2003) is a drop-in replacement for Java
RMI that adds *call-by-copy-restore* semantics for arbitrary linked data
structures. This package reimplements the full system in Python:

* :mod:`repro.serde` — alias/cycle-preserving serialization (the Java
  Serialization analogue), from which the linear map falls out for free;
* :mod:`repro.core` — the copy-restore algorithm itself, the delta
  extension, and the DCE RPC partial-restore baseline;
* :mod:`repro.transport` — in-process, TCP, and simulated-network channels;
* :mod:`repro.rmi` — the RMI substrate: registry, exported objects, stubs,
  remote-pointer references, and reference-counting distributed GC;
* :mod:`repro.nrmi` — the NRMI drop-in API (``Restorable``, ``export``,
  ``lookup``) and the invocation pipeline;
* :mod:`repro.bench` — workloads and drivers reproducing the paper's
  Tables 1-6 and Figures 1-9.

Quickstart::

    from repro import nrmi
    from repro.core import Restorable

    class Box(Restorable):          # passed by copy-restore
        def __init__(self, items):
            self.items = items

    class Service:
        def fill(self, box):
            box.items.append("added remotely")

    with nrmi.serve(Service(), name="svc") as endpoint:
        svc = nrmi.lookup(endpoint, "svc")
        box = Box([])
        svc.fill(box)
        assert box.items == ["added remotely"]   # restored in place
"""

from repro._version import __version__
from repro.core.markers import Restorable, Serializable
from repro.serde.registry import register_class

__all__ = ["__version__", "Restorable", "Serializable", "register_class"]
