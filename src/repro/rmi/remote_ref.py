"""Remote references: stubs and remote pointers.

Two proxy flavours, matching the paper's discussion:

* :class:`RemoteStub` — the RMI model: a *method-level* proxy for an
  exported service object. Calling a method on the stub marshals the
  arguments to the owner and runs the method there. This is how NRMI
  clients talk to servers.

* :class:`RemotePointer` — the naive call-by-reference of the paper's
  Figure 3: a *field-level* proxy. Every attribute read or write is one
  network round trip to the data's owner; reading a non-primitive field
  exports it on the owner and hands back another pointer. The paper's
  Table 6 shows why nobody should want this — it exists here as the
  faithful baseline.

Both are *opaque* to serialization walks and to the restore engine: they
travel as descriptors via externalizers and own no restorable state.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.markers import Remote
from repro.util.buffers import BufferReader, BufferWriter

#: Externalizer names, shared by both endpoints.
REMOTE_EXT = "rmi.remote"
POINTER_EXT = "rmi.pointer"

#: Attribute values a remote pointer transfers by value rather than by
#: reference (immutable leaves; everything else stays on its owner).
POINTER_VALUE_TYPES = (type(None), bool, int, float, complex, str, bytes)


class RemoteDescriptor:
    """The wire form of a remote reference: owner address + object id."""

    __slots__ = ("address", "object_id")

    def __init__(self, address: str, object_id: int) -> None:
        self.address = address
        self.object_id = object_id

    def encode(self) -> bytes:
        writer = BufferWriter()
        writer.write_str(self.address)
        writer.write_uvarint(self.object_id)
        return writer.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "RemoteDescriptor":
        reader = BufferReader(payload)
        address = reader.read_str()
        object_id = reader.read_uvarint()
        reader.expect_end()
        return cls(address, object_id)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RemoteDescriptor)
            and self.address == other.address
            and self.object_id == other.object_id
        )

    def __hash__(self) -> int:
        return hash((self.address, self.object_id))

    def __repr__(self) -> str:
        return f"RemoteDescriptor({self.address!r}, {self.object_id})"


class RemoteStub:
    """Method-level proxy to an object exported at another endpoint.

    ``stub.method(*args)`` marshals the call through the local endpoint's
    invocation pipeline; the configured calling semantics (copy,
    copy-restore, reference — per argument type) apply exactly as they
    would for a directly looked-up service.
    """

    def __init__(self, endpoint: Any, descriptor: RemoteDescriptor) -> None:
        self._endpoint = endpoint
        self._descriptor = descriptor

    @property
    def descriptor(self) -> RemoteDescriptor:
        return self._descriptor

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name.startswith("_"):
            raise AttributeError(name)
        endpoint = self.__dict__["_endpoint"]
        descriptor = self.__dict__["_descriptor"]

        def remote_method(*args: Any, **kwargs: Any) -> Any:
            return endpoint.invoke(descriptor, name, args, kwargs=kwargs)

        remote_method.__name__ = name
        return remote_method

    def __repr__(self) -> str:
        return f"RemoteStub({self._descriptor.address!r}#{self._descriptor.object_id})"


class RemotePointer:
    """Field-level proxy: every attribute access is a network round trip."""

    def __init__(self, endpoint: Any, descriptor: RemoteDescriptor) -> None:
        object.__setattr__(self, "_endpoint", endpoint)
        object.__setattr__(self, "_descriptor", descriptor)

    @property
    def descriptor(self) -> RemoteDescriptor:
        return object.__getattribute__(self, "_descriptor")

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        endpoint = object.__getattribute__(self, "_endpoint")
        descriptor = object.__getattribute__(self, "_descriptor")
        return endpoint.pointer_field_get(descriptor, name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name.startswith("_"):
            object.__setattr__(self, name, value)
            return
        endpoint = object.__getattribute__(self, "_endpoint")
        descriptor = object.__getattribute__(self, "_descriptor")
        endpoint.pointer_field_set(descriptor, name, value)

    def __repr__(self) -> str:
        descriptor = object.__getattribute__(self, "_descriptor")
        return f"RemotePointer({descriptor.address!r}#{descriptor.object_id})"


def is_opaque_remote(obj: Any) -> bool:
    """True for objects graph algorithms must treat as leaves."""
    return isinstance(obj, (Remote, RemoteStub, RemotePointer))
