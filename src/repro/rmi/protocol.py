"""Wire protocol: request/response envelopes for every operation.

Operations:

=============  =====================================================
``CALL``       invoke a method on an exported object (NRMI semantics)
``FIELD_GET``  read an attribute through a remote pointer
``FIELD_SET``  write an attribute through a remote pointer
``DGC_RELEASE``drop remote references (distributed GC)
``PING``       liveness probe
=============  =====================================================

A ``CALL`` request carries the target object id, method name, the agreed
restore policy and serialization profile, the per-argument passing modes,
and the single serde stream containing every argument (one handle table —
cross-argument aliasing preserved). Responses are ``OK`` with an
operation-specific payload, ``EXCEPTION`` with the remote error, or
``PROTOCOL_ERROR`` with a message.

At-most-once header: every ``CALL`` leads with a one-byte attempt counter
(at a **fixed offset** right after the op byte, so the retry layer can
re-stamp it in place without re-marshalling the arguments) followed by a
varint client-generated call ID. Call ID 0 means "not tracked" — the
dispatcher's reply cache only deduplicates non-zero IDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Tuple

from repro.core.semantics import PassingMode
from repro.errors import ServerBusyError, UnmarshalError, WireFormatError
from repro.util.buffers import BufferReader, BufferWriter


class Op(IntEnum):
    CALL = 1
    FIELD_GET = 2
    FIELD_SET = 3
    DGC_RELEASE = 4
    PING = 5
    DGC_RENEW = 6
    CALL_BATCH = 7


class Status(IntEnum):
    OK = 0
    EXCEPTION = 1
    PROTOCOL_ERROR = 2
    # Load shedding: the server refused the request before deserializing
    # it (bounded queue full, or draining for shutdown). The frame is
    # status byte + one reason byte and nothing else — built by the net
    # loop without touching the payload, so shedding stays O(1) under
    # overload. Clients surface it as the retryable ServerBusyError.
    BUSY = 3


_MODE_TO_ID = {
    PassingMode.BY_VALUE: 0,
    PassingMode.BY_COPY: 1,
    PassingMode.BY_COPY_RESTORE: 2,
    PassingMode.BY_REFERENCE: 3,
}
_ID_TO_MODE = {v: k for k, v in _MODE_TO_ID.items()}

# "delta-slots" (id 4) is a *reply* kind only: servers pick it when the
# caller advertised CAP_DELTA_SLOTS and the effective policy is "delta";
# callers never request it directly.
_POLICY_TO_ID = {"none": 0, "full": 1, "delta": 2, "dce": 3, "delta-slots": 4}
_ID_TO_POLICY = {v: k for k, v in _POLICY_TO_ID.items()}

# ------------------------------------------------------- capability flags
#
# The CALL frame's former ship_map byte is a flags byte: bit 0 keeps the
# ship_map meaning (old encoders only ever wrote 0 or 1), the remaining
# bits advertise caller capabilities. Decoders MUST ignore flag bits they
# do not know — a peer that never advertises (flags & ~1 == 0) simply gets
# the classic full-map / legacy-delta replies.

#: The caller can decode the dirty-slot delta reply frame (kind 4).
CAP_DELTA_SLOTS = 0x02

#: The caller holds a per-connection schema session (repro.serde.schema)
#: and may flag argument streams with STREAM_FLAG_SCHEMA_CACHE once the
#: server acknowledges. Servers that honor the capability OR
#: REPLY_FLAG_SCHEMA_ACK onto the applied-policy byte of OK CALL replies.
CAP_SCHEMA_CACHE = 0x04

_FLAG_SHIP_MAP = 0x01

#: High bit of the applied-policy byte leading an OK CALL reply payload:
#: the server accepted CAP_SCHEMA_CACHE for this connection. Policy wire
#: ids are tiny (0-4), so the bit never collides; legacy clients that
#: never advertise the capability never see it set.
REPLY_FLAG_SCHEMA_ACK = 0x80


def policy_wire_id(name: str) -> int:
    """The one-byte wire id of a restore policy name."""
    try:
        return _POLICY_TO_ID[name]
    except KeyError:
        raise WireFormatError(f"unknown restore policy {name!r}") from None


def policy_from_wire(policy_id: int) -> str:
    try:
        return _ID_TO_POLICY[policy_id]
    except KeyError:
        raise WireFormatError(f"unknown restore policy id {policy_id}") from None

_PROFILE_TO_ID = {"legacy": 0, "modern": 1}
_ID_TO_PROFILE = {v: k for k, v in _PROFILE_TO_ID.items()}


@dataclass
class CallRequest:
    object_id: int
    method: str
    policy: str
    profile: str
    modes: Tuple[PassingMode, ...]
    # bytes-like: the decoder hands back a zero-copy memoryview over the
    # request frame; the encoder accepts any bytes-like object.
    args_payload: bytes
    # Ablation knob (paper 5.2.4 #1): when True the caller transmitted its
    # linear map explicitly as an extra root instead of relying on the
    # receiver reconstructing it during deserialization.
    ship_map: bool = False
    # Names of trailing keyword arguments: the last len(kwarg_names)
    # entries of modes / args_payload roots are the keyword values, in
    # this order.
    kwarg_names: Tuple[str, ...] = ()
    # At-most-once identity: a non-zero client-generated id keys the
    # server's reply cache; attempt counts resends of the same id.
    call_id: int = 0
    attempt: int = 0
    # Capability bits the caller advertised (CAP_* constants above);
    # travels in the flags byte alongside ship_map.
    caps: int = 0


#: Byte offset of the attempt counter inside an encoded CALL frame.
ATTEMPT_OFFSET = 1


def read_call_header(reader: BufferReader) -> Tuple[int, int]:
    """Read ``(call_id, attempt)``; *reader* sits just past the op byte."""
    attempt = reader.read_u8()
    call_id = reader.read_uvarint()
    return call_id, attempt


def set_attempt(frame, attempt: int):
    """Re-stamp the attempt counter of an encoded CALL frame in place.

    Mutable frames (``bytearray`` or a writable ``memoryview`` over a
    pooled encode buffer) are patched without copying; immutable
    ``bytes`` get one copy. Returns the (possibly new) frame.
    """
    if not 0 <= attempt <= 255:
        raise WireFormatError(f"attempt counter out of range: {attempt}")
    if isinstance(frame, memoryview) and not frame.readonly:
        frame[ATTEMPT_OFFSET] = attempt
        return frame
    if isinstance(frame, bytearray):
        frame[ATTEMPT_OFFSET] = attempt
        return frame
    patched = bytearray(frame)
    patched[ATTEMPT_OFFSET] = attempt
    return patched


def encode_call(request: CallRequest, buffer=None):
    """Encode a CALL envelope.

    With *buffer* (a recycled ``bytearray``, e.g. from a
    :class:`repro.util.buffers.BufferPool`), the frame is built in place
    and returned as a ``memoryview`` — no fresh allocation, no final copy.
    The caller owns the buffer's lifecycle and must not release it until
    the view has been sent.
    """
    writer = BufferWriter(buffer)
    encode_call_header(writer, request)
    writer.write_bytes(request.args_payload)
    return writer.view() if buffer is not None else writer.getvalue()


def encode_call_header(writer, request: CallRequest) -> None:
    """Write everything of a CALL envelope except the args payload.

    The args stream is the envelope's final field (no trailing length),
    so the zero-copy path can write this header into a ring reservation
    and then let the serde layer encode the arguments directly after it
    — same wire bytes as :func:`encode_call`, no staging buffer.
    """
    writer.write_u8(Op.CALL)
    if not 0 <= request.attempt <= 255:
        raise WireFormatError(f"attempt counter out of range: {request.attempt}")
    writer.write_u8(request.attempt)
    writer.write_uvarint(request.call_id)
    writer.write_uvarint(request.object_id)
    writer.write_str(request.method)
    writer.write_u8(_POLICY_TO_ID[request.policy])
    writer.write_u8(_PROFILE_TO_ID[request.profile])
    flags = _FLAG_SHIP_MAP if request.ship_map else 0
    flags |= request.caps & ~_FLAG_SHIP_MAP & 0xFF
    writer.write_u8(flags)
    writer.write_uvarint(len(request.modes))
    for mode in request.modes:
        writer.write_u8(_MODE_TO_ID[mode])
    writer.write_uvarint(len(request.kwarg_names))
    for name in request.kwarg_names:
        writer.write_str(name)


def decode_call(
    reader: BufferReader, call_id: int = 0, attempt: int = 0
) -> CallRequest:
    """Decode a CALL body; *reader* sits just past the at-most-once header.

    The dispatcher consumes the header itself (via
    :func:`read_call_header`) before deciding whether to serve the call
    from its reply cache; pass the values through so the decoded request
    round-trips.
    """
    object_id = reader.read_uvarint()
    method = reader.read_str()
    policy_id = reader.read_u8()
    profile_id = reader.read_u8()
    try:
        policy = _ID_TO_POLICY[policy_id]
        profile = _ID_TO_PROFILE[profile_id]
    except KeyError as exc:
        raise WireFormatError(f"unknown policy/profile id: {exc}") from None
    flags = reader.read_u8()
    ship_map = bool(flags & _FLAG_SHIP_MAP)
    caps = flags & ~_FLAG_SHIP_MAP
    argc = reader.read_uvarint()
    modes = []
    for _ in range(argc):
        mode_id = reader.read_u8()
        try:
            modes.append(_ID_TO_MODE[mode_id])
        except KeyError:
            raise WireFormatError(f"unknown passing-mode id {mode_id}") from None
    kwarg_count = reader.read_uvarint()
    kwarg_names = tuple(reader.read_str() for _ in range(kwarg_count))
    if kwarg_count > len(modes):
        raise WireFormatError("more keyword names than argument modes")
    # Zero-copy: the args stream is decoded in place from the request
    # frame (the frame outlives the synchronous handler that decodes it).
    args_payload = reader.read_view(reader.remaining)
    return CallRequest(
        object_id=object_id,
        method=method,
        policy=policy,
        profile=profile,
        modes=tuple(modes),
        args_payload=args_payload,
        ship_map=ship_map,
        kwarg_names=kwarg_names,
        call_id=call_id,
        attempt=attempt,
        caps=caps,
    )


def encode_field_get(object_id: int, name: str) -> bytes:
    writer = BufferWriter()
    writer.write_u8(Op.FIELD_GET)
    writer.write_uvarint(object_id)
    writer.write_str(name)
    return writer.getvalue()


def decode_field_get(reader: BufferReader) -> Tuple[int, str]:
    object_id = reader.read_uvarint()
    name = reader.read_str()
    reader.expect_end()
    return object_id, name


def encode_field_set(object_id: int, name: str, value_payload: bytes) -> bytes:
    writer = BufferWriter()
    writer.write_u8(Op.FIELD_SET)
    writer.write_uvarint(object_id)
    writer.write_str(name)
    writer.write_bytes(value_payload)
    return writer.getvalue()


def decode_field_set(reader: BufferReader) -> Tuple[int, str, bytes]:
    object_id = reader.read_uvarint()
    name = reader.read_str()
    value_payload = reader.read_bytes(reader.remaining)
    return object_id, name, value_payload


def encode_dgc_release(releases: List[Tuple[int, int]]) -> bytes:
    writer = BufferWriter()
    writer.write_u8(Op.DGC_RELEASE)
    writer.write_uvarint(len(releases))
    for object_id, count in releases:
        writer.write_uvarint(object_id)
        writer.write_uvarint(count)
    return writer.getvalue()


def decode_dgc_release(reader: BufferReader) -> List[Tuple[int, int]]:
    count = reader.read_uvarint()
    releases = [(reader.read_uvarint(), reader.read_uvarint()) for _ in range(count)]
    reader.expect_end()
    return releases


def encode_dgc_renew(object_ids: List[int]) -> bytes:
    writer = BufferWriter()
    writer.write_u8(Op.DGC_RENEW)
    writer.write_uvarint(len(object_ids))
    for object_id in object_ids:
        writer.write_uvarint(object_id)
    return writer.getvalue()


def decode_dgc_renew(reader: BufferReader) -> List[int]:
    count = reader.read_uvarint()
    object_ids = [reader.read_uvarint() for _ in range(count)]
    reader.expect_end()
    return object_ids


def encode_batch(sub_requests: List[bytes]) -> bytes:
    """Bundle complete request frames (op byte included) into one frame."""
    writer = BufferWriter()
    writer.write_u8(Op.CALL_BATCH)
    writer.write_uvarint(len(sub_requests))
    for sub in sub_requests:
        writer.write_len_bytes(sub)
    return writer.getvalue()


def decode_batch(reader: BufferReader) -> List[bytes]:
    count = reader.read_uvarint()
    subs = [reader.read_len_bytes() for _ in range(count)]
    reader.expect_end()
    return subs


def encode_batch_responses(sub_responses: List[bytes]) -> bytes:
    writer = BufferWriter()
    writer.write_uvarint(len(sub_responses))
    for sub in sub_responses:
        writer.write_len_bytes(sub)
    return writer.getvalue()


def decode_batch_responses(reader: BufferReader) -> List[bytes]:
    count = reader.read_uvarint()
    subs = [reader.read_len_bytes() for _ in range(count)]
    reader.expect_end()
    return subs


def encode_ping() -> bytes:
    writer = BufferWriter()
    writer.write_u8(Op.PING)
    return writer.getvalue()


# ---------------------------------------------------------------- responses


def ok_response(payload: bytes = b"") -> bytes:
    writer = BufferWriter()
    writer.write_u8(Status.OK)
    writer.write_bytes(payload)
    return writer.getvalue()


def exception_response(exc_type: str, message: str, traceback_text: str) -> bytes:
    writer = BufferWriter()
    writer.write_u8(Status.EXCEPTION)
    writer.write_str(exc_type)
    writer.write_str(message)
    writer.write_str(traceback_text)
    return writer.getvalue()


def protocol_error_response(message: str) -> bytes:
    writer = BufferWriter()
    writer.write_u8(Status.PROTOCOL_ERROR)
    writer.write_str(message)
    return writer.getvalue()


def busy_response(reason: int = ServerBusyError.QUEUE_FULL) -> bytes:
    """The fast load-shedding reply: status byte + one reason byte.

    Deliberately tiny and writer-free — the server's net loop emits it
    inline for requests it never deserialized, so a shed costs two bytes
    of encoding work no matter how large the rejected payload was.
    """
    return bytes((Status.BUSY, reason & 0xFF))


def raise_if_busy(response) -> None:
    """Raise :class:`ServerBusyError` when *response* is a BUSY frame.

    A one-byte peek, cheap enough for the retry layer's send path: BUSY
    must surface *inside* ``call_with_retry`` (as a retryable exception)
    rather than after it, or shedding would never be retried.
    """
    if response and response[0] == _BUSY_BYTE:
        raise ServerBusyError(response[1] if len(response) > 1 else 0)


_BUSY_BYTE = int(Status.BUSY)


def split_response(response: bytes) -> Tuple[Status, BufferReader]:
    """Parse the status byte; the reader is positioned at the payload.

    A BUSY status never reaches the caller as a parsed reply: the server
    refused the request without executing it, so the one correct reaction
    everywhere is the retryable :class:`ServerBusyError`.
    """
    reader = BufferReader(response)
    try:
        status = Status(reader.read_u8())
    except (ValueError, WireFormatError) as exc:
        raise UnmarshalError(f"malformed response: {exc}") from exc
    if status is Status.BUSY:
        raise ServerBusyError(reader.read_u8() if reader.remaining else 0)
    return status, reader
