"""Reference-counting distributed garbage collection.

Java RMI's DGC counts remote references per exported object; when the
count drops to zero the object can be unexported. The well-known weakness
— which the paper's Table 6 runs straight into — is *distributed cycles*:
when a client-exported object and a server-exported object reference each
other through remote pointers, neither count ever reaches zero and the
garbage is unreclaimable. The paper's call-by-reference benchmark leaked
until it exceeded a 1 GB JVM heap at 1024-node trees.

This module reproduces the accounting: every marshalled reference
increments, every explicit release decrements, and an optional *leak
budget* turns unbounded growth into :class:`DistributedLeakError` — the
analogue of the JVM's OutOfMemoryError in the paper's experiment.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.errors import DistributedLeakError
from repro.util.clock import Clock, SYSTEM_CLOCK


class DistributedGC:
    """Per-endpoint reference counts for exported objects.

    When constructed with a ``lease_seconds``, every marshalled reference
    also carries a lease (as in Java RMI's DGC): holders must renew
    before expiry, and :meth:`expire_leases` drops all references of
    objects whose lease lapsed — what protects a server from clients that
    died without releasing.
    """

    def __init__(
        self,
        on_unreferenced: Optional[Callable[[int], None]] = None,
        leak_budget: Optional[int] = None,
        lease_seconds: Optional[float] = None,
        clock: Clock = SYSTEM_CLOCK,
    ) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[int, int] = {}
        self._lease_expiry: Dict[int, float] = {}
        self._on_unreferenced = on_unreferenced
        self.leak_budget = leak_budget
        self.lease_seconds = lease_seconds
        self.clock = clock
        self.total_marshalled = 0
        self.total_released = 0
        self.total_expired = 0

    def on_marshal(self, object_id: int) -> None:
        """A reference to *object_id* just left this endpoint."""
        with self._lock:
            self._counts[object_id] = self._counts.get(object_id, 0) + 1
            self.total_marshalled += 1
            if self.lease_seconds is not None:
                self._lease_expiry[object_id] = (
                    self.clock.now() + self.lease_seconds
                )
            live = len(self._counts)
        if self.leak_budget is not None and live > self.leak_budget:
            raise DistributedLeakError(leaked=live, budget=self.leak_budget)

    def renew(self, object_id: int) -> bool:
        """Extend *object_id*'s lease; False if it is no longer held."""
        with self._lock:
            if object_id not in self._counts:
                return False
            if self.lease_seconds is not None:
                self._lease_expiry[object_id] = (
                    self.clock.now() + self.lease_seconds
                )
            return True

    def expire_leases(self) -> List[int]:
        """Drop every reference whose lease has lapsed; returns the ids."""
        if self.lease_seconds is None:
            return []
        now = self.clock.now()
        expired: List[int] = []
        notify: List[int] = []
        with self._lock:
            for object_id, expiry in list(self._lease_expiry.items()):
                if expiry <= now:
                    expired.append(object_id)
                    del self._lease_expiry[object_id]
                    if self._counts.pop(object_id, 0) > 0:
                        self.total_expired += 1
                        notify.append(object_id)
        if self._on_unreferenced is not None:
            for object_id in notify:
                self._on_unreferenced(object_id)
        return expired

    def release(self, object_id: int, count: int = 1) -> bool:
        """A remote holder dropped *count* references; True if now unreferenced."""
        notify = False
        with self._lock:
            current = self._counts.get(object_id, 0)
            remaining = max(0, current - count)
            self.total_released += min(count, current)
            if remaining:
                self._counts[object_id] = remaining
            else:
                self._counts.pop(object_id, None)
                self._lease_expiry.pop(object_id, None)
                notify = current > 0
        if notify and self._on_unreferenced is not None:
            self._on_unreferenced(object_id)
        return notify

    def refcount(self, object_id: int) -> int:
        with self._lock:
            return self._counts.get(object_id, 0)

    def live_referenced_count(self) -> int:
        """Exported objects still held remotely — the leak metric."""
        with self._lock:
            return len(self._counts)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "live_referenced": len(self._counts),
                "total_marshalled": self.total_marshalled,
                "total_released": self.total_released,
                "total_expired": self.total_expired,
            }
