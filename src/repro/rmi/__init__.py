"""The RMI substrate: object export, remote references, protocol, DGC.

This package plays the role of ``java.rmi`` in the paper: it gives objects
network identity. On top of it, :mod:`repro.nrmi` implements the calling
semantics (copy, copy-restore, reference).

* :mod:`repro.rmi.export` — the exported-object table (object ids);
* :mod:`repro.rmi.dgc` — reference-counting distributed GC, including the
  cycle-leak accounting that reproduces the paper's Table 6 failure;
* :mod:`repro.rmi.remote_ref` — stubs (method-level proxies, the RMI
  remote-object model) and remote pointers (field-level proxies, the naive
  call-by-reference of the paper's Figure 3);
* :mod:`repro.rmi.protocol` — wire encoding of requests and responses;
* :mod:`repro.rmi.registry` — the name registry service;
* :mod:`repro.rmi.dispatcher` — the server-side request router.
"""

from repro.rmi.export import ExportTable
from repro.rmi.dgc import DistributedGC
from repro.rmi.remote_ref import (
    RemoteDescriptor,
    RemotePointer,
    RemoteStub,
    is_opaque_remote,
)
from repro.rmi.registry import RegistryService, REGISTRY_OBJECT_ID

__all__ = [
    "ExportTable",
    "DistributedGC",
    "RemoteDescriptor",
    "RemotePointer",
    "RemoteStub",
    "is_opaque_remote",
    "RegistryService",
    "REGISTRY_OBJECT_ID",
]
