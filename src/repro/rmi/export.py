"""The exported-object table: network identity for local objects.

The analogue of the RMI runtime's object table. Exporting an object assigns
it a stable object id; remote references carry ``(endpoint address,
object id)`` and the dispatcher resolves incoming ids back to the live
object. Export is idempotent per object. When the DGC reports an object
unreferenced it is unexported, unless it was *pinned* (the registry
service is pinned for the endpoint's lifetime).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.errors import NoSuchObjectError
from repro.rmi.dgc import DistributedGC
from repro.util.identity import IdentityMap


class ExportTable:
    """Thread-safe bidirectional map between objects and object ids."""

    def __init__(
        self,
        leak_budget: Optional[int] = None,
        lease_seconds: Optional[float] = None,
        clock=None,
    ) -> None:
        from repro.util.clock import SYSTEM_CLOCK

        self._lock = threading.RLock()
        self._by_id: Dict[int, Any] = {}
        self._ids: IdentityMap[int] = IdentityMap()
        self._pinned: set[int] = set()
        self._allowed: Dict[int, frozenset] = {}
        self._next_id = 1
        self.dgc = DistributedGC(
            on_unreferenced=self._on_unreferenced,
            leak_budget=leak_budget,
            lease_seconds=lease_seconds,
            clock=clock if clock is not None else SYSTEM_CLOCK,
        )

    def export(self, obj: Any, pin: bool = False) -> int:
        """Assign (or return the existing) object id for *obj*."""
        with self._lock:
            object_id = self._ids.get(obj)
            if object_id is None:
                object_id = self._next_id
                self._next_id += 1
                self._by_id[object_id] = obj
                self._ids[obj] = object_id
            if pin:
                self._pinned.add(object_id)
            return object_id

    def export_marshalled(self, obj: Any) -> int:
        """Export *obj* because a reference to it is leaving the endpoint.

        Bumps the DGC count — this is the hook the remote-reference
        externalizer and the pointer protocol use.
        """
        object_id = self.export(obj)
        self.dgc.on_marshal(object_id)
        return object_id

    def get(self, object_id: int) -> Any:
        with self._lock:
            try:
                return self._by_id[object_id]
            except KeyError:
                raise NoSuchObjectError(object_id) from None

    def id_of(self, obj: Any) -> Optional[int]:
        with self._lock:
            return self._ids.get(obj)

    def set_allowed_methods(self, object_id: int, methods: frozenset) -> None:
        """Restrict remote dispatch on *object_id* to *methods*."""
        with self._lock:
            if object_id not in self._by_id:
                raise NoSuchObjectError(object_id)
            self._allowed[object_id] = frozenset(methods)

    def allowed_methods(self, object_id: int):
        """The method whitelist for *object_id*, or None (unrestricted)."""
        with self._lock:
            return self._allowed.get(object_id)

    def unexport(self, object_id: int) -> None:
        with self._lock:
            obj = self._by_id.pop(object_id, None)
            if obj is not None:
                self._ids.pop(obj, None)
            self._pinned.discard(object_id)
            self._allowed.pop(object_id, None)

    def _on_unreferenced(self, object_id: int) -> None:
        with self._lock:
            if object_id in self._pinned:
                return
        self.unexport(object_id)

    def live_count(self) -> int:
        with self._lock:
            return len(self._by_id)
