"""Activation: services that come to life on first use.

The analogue of Java RMI Activation (``java.rmi.activation``): a binding
can hold a *factory* instead of a live instance; the first incoming call
instantiates the service, later calls reuse it, and the server can
deactivate it (dropping state and memory) at any time — the next call
re-activates transparently. Clients cannot tell the difference.

Usage::

    endpoint.bind("reports", Activatable(ReportService))

    # ... later, reclaim the memory:
    slot.deactivate()
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.core.markers import Remote


class Activatable(Remote):
    """A bindable slot that instantiates its service lazily.

    ``factory`` is any zero-argument callable returning the service
    instance (typically the service class itself). Instantiation happens
    at most once per activation, under a lock, on the dispatching thread
    of the first call.
    """

    def __init__(self, factory: Callable[[], Any]) -> None:
        if not callable(factory):
            raise TypeError(f"factory must be callable, got {type(factory).__name__}")
        self._factory = factory
        self._instance: Optional[Any] = None
        self._lock = threading.Lock()
        self._activations = 0

    # -- lifecycle ---------------------------------------------------------

    def ensure_active(self) -> Any:
        """Return the live instance, creating it if necessary."""
        instance = self._instance
        if instance is not None:
            return instance
        with self._lock:
            if self._instance is None:
                self._instance = self._factory()
                self._activations += 1
            return self._instance

    def deactivate(self) -> bool:
        """Drop the live instance (its state with it); True if one existed."""
        with self._lock:
            had_instance = self._instance is not None
            self._instance = None
            return had_instance

    @property
    def is_active(self) -> bool:
        return self._instance is not None

    @property
    def activation_count(self) -> int:
        return self._activations

    # -- dispatch ----------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Only called for attributes not found normally, i.e. the service's
        # methods: activate and forward. Dunder/underscore lookups fall
        # through to AttributeError so the slot never masquerades during
        # serialization walks or debugging.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.ensure_active(), name)

    def __repr__(self) -> str:
        state = "active" if self.is_active else "dormant"
        return f"Activatable({getattr(self._factory, '__name__', self._factory)!r}, {state})"
