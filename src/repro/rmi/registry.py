"""The name registry: ``rmiregistry`` as an ordinary remote service.

The registry is itself an exported :class:`~repro.core.markers.Remote`
object with the well-known object id :data:`REGISTRY_OBJECT_ID`, so
``bind``/``lookup`` ride the same CALL protocol as every application
method — the same bootstrapping trick Java RMI uses.

Bound values are remote references (binding marshals the service as a stub
when the bind call itself is remote); looking a name up returns the
reference, which marshals back to the caller as a stub.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List

from repro.core.markers import Remote
from repro.errors import AlreadyBoundError, NotBoundError

#: The registry's well-known object id at every endpoint.
REGISTRY_OBJECT_ID = 1


class RegistryService(Remote):
    """Name-to-reference bindings, exported at a well-known object id."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._bindings: Dict[str, Any] = {}

    def bind(self, name: str, ref: Any) -> None:
        """Bind *name*; raises :class:`AlreadyBoundError` if taken."""
        with self._lock:
            if name in self._bindings:
                raise AlreadyBoundError(name)
            self._bindings[name] = ref

    def rebind(self, name: str, ref: Any) -> None:
        """Bind *name*, replacing any existing binding."""
        with self._lock:
            self._bindings[name] = ref

    def unbind(self, name: str) -> None:
        with self._lock:
            if name not in self._bindings:
                raise NotBoundError(name)
            del self._bindings[name]

    def lookup(self, name: str) -> Any:
        with self._lock:
            try:
                return self._bindings[name]
            except KeyError:
                raise NotBoundError(name) from None

    def list_names(self) -> List[str]:
        with self._lock:
            return sorted(self._bindings)
