"""Server-side request router.

One dispatcher per endpoint: parses the operation byte and routes to the
call pipeline, the remote-pointer field protocol, or the DGC. Application
exceptions travel back as EXCEPTION responses; anything else that escapes
is reported as a PROTOCOL_ERROR so a buggy peer cannot kill the server.

At-most-once: every CALL frame leads with an attempt counter and a
client-generated call ID. The dispatcher keeps a bounded
:class:`~repro.transport.reliability.ReplyCache`; a request whose call ID
already completed (a retry after a lost reply, or a frame duplicated in
flight) is answered from the cache and the method does **not** run again.
Cached EXCEPTION replies are served too — the first execution's outcome,
whatever it was, is the call's one outcome.
"""

from __future__ import annotations

import traceback
from typing import Any

from repro.errors import ReproError, SerializationError
from repro.rmi.protocol import (
    Op,
    decode_batch,
    decode_dgc_release,
    decode_dgc_renew,
    decode_field_get,
    decode_field_set,
    encode_batch_responses,
    exception_response,
    ok_response,
    protocol_error_response,
    read_call_header,
)
from repro.transport.reliability import ReplyCache
from repro.util.buffers import BufferWriter
from repro.util.buffers import BufferReader
from repro.util.logging import get_logger

logger = get_logger("rmi.dispatcher")


class Dispatcher:
    """Routes framed requests arriving at one endpoint."""

    def __init__(self, endpoint: Any) -> None:
        self._endpoint = endpoint
        cache_size = getattr(
            getattr(endpoint, "config", None), "reply_cache_size", 256
        )
        self.reply_cache = ReplyCache(max_entries=cache_size)

    def _handle_tracked_call(self, reader: BufferReader, session: Any) -> bytes:
        """Serve one CALL with at-most-once dedup on its call ID."""
        # Imported here: the invocation pipeline sits above the RMI
        # substrate, so a module-level import would be cyclic.
        from repro.nrmi.invocation import handle_call

        call_id, attempt = read_call_header(reader)
        metrics = self._endpoint.metrics
        if call_id:
            cached = self.reply_cache.get(call_id)
            if cached is not None:
                metrics.counter("reply_cache.hits").add()
                logger.debug(
                    "serving call %d (attempt %d) from the reply cache",
                    call_id,
                    attempt,
                )
                return cached
        if attempt:
            metrics.counter("calls.retried_executions").add()
        response = handle_call(
            self._endpoint, reader, call_id=call_id, attempt=attempt,
            session=session,
        )
        if call_id:
            # bytes() also flattens any buffer the pipeline handed back,
            # so the cache never pins a pooled buffer.
            self.reply_cache.put(call_id, bytes(response))
            metrics.counter("reply_cache.stores").add()
        return response

    def handle(self, request: bytes, session: Any = None) -> bytes:
        try:
            reader = BufferReader(request)
            op = reader.read_u8()
            if op == Op.CALL:
                return self._handle_tracked_call(reader, session)
            if op == Op.FIELD_GET:
                return self._handle_field_get(reader)
            if op == Op.FIELD_SET:
                return self._handle_field_set(reader)
            if op == Op.DGC_RELEASE:
                return self._handle_dgc_release(reader)
            if op == Op.DGC_RENEW:
                return self._handle_dgc_renew(reader)
            if op == Op.CALL_BATCH:
                # Each sub-request is a complete frame; route recursively
                # (same connection, so the same session) so every
                # operation and its error handling stay uniform.
                sub_responses = [
                    self.handle(sub, session=session)
                    for sub in decode_batch(reader)
                ]
                return ok_response(encode_batch_responses(sub_responses))
            if op == Op.PING:
                return ok_response()
            logger.warning("unknown operation byte %s", op)
            return protocol_error_response(f"unknown operation byte {op}")
        except SerializationError as exc:
            # A frame we could not even decode is the peer's protocol
            # problem, not an application exception.
            logger.warning("undecodable request: %s", exc)
            return protocol_error_response(f"{type(exc).__name__}: {exc}")
        except ReproError as exc:
            logger.debug("middleware error while dispatching: %s", exc)
            return exception_response(type(exc).__name__, str(exc), traceback.format_exc())
        except Exception as exc:  # noqa: BLE001 - never kill the server loop
            logger.warning("protocol error while dispatching: %s", exc, exc_info=True)
            return protocol_error_response(f"{type(exc).__name__}: {exc}")

    # Transports probe this via call_handler: plain bytes->bytes handlers
    # keep working, while this dispatcher receives per-connection state.
    handle.wants_session = True

    def _handle_field_get(self, reader: BufferReader) -> bytes:
        endpoint = self._endpoint
        object_id, name = decode_field_get(reader)
        impl = endpoint.exports.get(object_id)
        try:
            value = getattr(impl, name)
        except AttributeError as exc:
            return exception_response("AttributeError", str(exc), "")
        endpoint.metrics.counter("pointer.field_get").add()
        return ok_response(endpoint.encode_pointer_value(value))

    def _handle_field_set(self, reader: BufferReader) -> bytes:
        endpoint = self._endpoint
        object_id, name, value_payload = decode_field_set(reader)
        impl = endpoint.exports.get(object_id)
        value = endpoint.decode_pointer_value(value_payload)
        setattr(impl, name, value)
        endpoint.metrics.counter("pointer.field_set").add()
        return ok_response()

    def _handle_dgc_release(self, reader: BufferReader) -> bytes:
        endpoint = self._endpoint
        for object_id, count in decode_dgc_release(reader):
            endpoint.exports.dgc.release(object_id, count)
        return ok_response()

    def _handle_dgc_renew(self, reader: BufferReader) -> bytes:
        endpoint = self._endpoint
        out = BufferWriter()
        object_ids = decode_dgc_renew(reader)
        for object_id in object_ids:
            out.write_u8(1 if endpoint.exports.dgc.renew(object_id) else 0)
        return ok_response(out.getvalue())
