"""``nrmi-lint`` — the rmic/serialver analogue for this middleware.

Usage::

    nrmi-lint src examples            # lint trees, human output
    nrmi-lint --json src              # stable machine-readable output
    nrmi-lint --format sarif src      # SARIF 2.1.0 for CI annotation
    nrmi-lint --jobs 0 src            # fan module rules out per CPU
    nrmi-lint --select NRMI031 src    # run one rule
    nrmi-lint --list-rules            # print the rule catalogue

Exit codes: 0 — no error-severity findings (warnings may exist);
1 — at least one error-severity finding; 2 — usage error (bad path,
unknown rule code).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.engine import analyze_paths
from repro.analysis.reporting import render_json, render_sarif, render_text
from repro.analysis.rulebase import ALL_RULES

USAGE_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nrmi-lint",
        description="Static checker for NRMI remote contracts, "
        "serializability, copy-restore hazards, and protocol invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directory trees to lint (e.g. src examples)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the stable JSON schema (alias for --format json)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default=None,
        help="output format (default text; sarif emits SARIF 2.1.0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run module rules in N worker processes (0 = one per CPU)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by # nrmi: disable comments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def _render_catalogue() -> str:
    lines = ["code     severity  family           rule"]
    for descriptor in sorted(ALL_RULES, key=lambda r: r.code):
        lines.append(
            f"{descriptor.code}  {descriptor.severity.label:<8}  "
            f"{descriptor.family:<15}  {descriptor.name}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(_render_catalogue())
        return 0
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("nrmi-lint: error: no paths given", file=sys.stderr)
        return USAGE_ERROR
    output_format = options.format or ("json" if options.json else "text")
    if options.json and options.format not in (None, "json"):
        print(
            "nrmi-lint: error: --json conflicts with "
            f"--format {options.format}",
            file=sys.stderr,
        )
        return USAGE_ERROR
    if options.jobs < 0:
        print("nrmi-lint: error: --jobs must be >= 0", file=sys.stderr)
        return USAGE_ERROR
    try:
        result = analyze_paths(
            options.paths,
            select=_split_codes(options.select),
            ignore=_split_codes(options.ignore),
            jobs=options.jobs,
        )
    except FileNotFoundError as exc:
        print(f"nrmi-lint: error: no such path: {exc}", file=sys.stderr)
        return USAGE_ERROR
    except KeyError as exc:
        print(f"nrmi-lint: error: {exc.args[0]}", file=sys.stderr)
        return USAGE_ERROR
    if output_format == "json":
        print(render_json(result))
    elif output_format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, verbose_suppressed=options.show_suppressed))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
