"""Contract rules (NRMI001–NRMI004): remote interfaces and their impls.

The static mirror of :mod:`repro.nrmi.interfaces`: what
``validate_implementation`` rejects when a service is bound at runtime,
these rules reject at lint time — plus drift the runtime check cannot
see, like two bound contracts whose method names collide on one
dispatcher.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.model import (
    BindSite,
    ClassModel,
    FunctionModel,
    ModuleModel,
    dotted_name,
    last_component,
)
from repro.analysis.rulebase import FAMILY_CONTRACT, rule


@rule("NRMI001", "interface-no-methods", FAMILY_CONTRACT, Severity.ERROR)
def interface_no_methods(module: ModuleModel) -> Iterable[Finding]:
    """A remote interface that declares no public methods binds nothing."""
    for cls in module.interface_classes():
        if not cls.public_method_names():
            yield interface_no_methods.at(
                module.path,
                cls.node,
                f"remote interface {cls.name!r} declares no public methods",
                hint="declare at least one public method stub, or drop the "
                "interface= binding",
            )


def _resolve_impl_class(
    module: ModuleModel, site: BindSite
) -> Optional[ClassModel]:
    """Statically chase ``bind(name, <impl>, ...)`` back to a class."""
    expr = site.impl_expr
    # bind(n, Impl(), ...) or bind(n, Activatable(Impl), ...)
    for _ in range(4):
        if isinstance(expr, ast.Name):
            cls = module.class_named(expr.id)
            if cls is not None:
                return cls
            assigned = _local_assignment(module, site.node, expr.id)
            if assigned is None:
                return None
            expr = assigned
        elif isinstance(expr, ast.Call):
            callee = last_component(dotted_name(expr.func))
            if callee == "Activatable" and expr.args:
                expr = expr.args[0]
                continue
            target = module.class_named(callee or "")
            if target is not None:
                return target
            return None
        else:
            return None
    return None


def _local_assignment(
    module: ModuleModel, call: ast.Call, name: str
) -> Optional[ast.expr]:
    """The last ``name = <expr>`` before *call*, module- or function-local."""
    best: Optional[ast.expr] = None
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        if node.lineno >= call.lineno:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == name:
                best = node.value
    return best


def _capacity_ok(
    declared: FunctionModel, target: FunctionModel
) -> Tuple[bool, str]:
    declared_min, declared_max = declared.positional_capacity()
    target_min, target_max = target.positional_capacity()
    if target_min > declared_min:
        return False, (
            f"impl requires {target_min} positional argument(s) but the "
            f"contract promises callers only {declared_min}"
        )
    if target_max is not None and (declared_max is None or declared_max > target_max):
        promised = "*args" if declared_max is None else str(declared_max)
        return False, (
            f"impl accepts at most {target_max} positional argument(s) but "
            f"the contract allows {promised}"
        )
    return True, ""


@rule("NRMI002", "impl-interface-drift", FAMILY_CONTRACT, Severity.ERROR)
def impl_interface_drift(module: ModuleModel) -> Iterable[Finding]:
    """A bound implementation missing contract methods (or with an
    incompatible arity) fails every call at runtime; catch it here."""
    for site in module.bind_sites:
        interface = module.class_named(site.interface_name)
        impl = _resolve_impl_class(module, site)
        if interface is None or impl is None:
            continue
        for name in sorted(interface.public_method_names()):
            declared = interface.methods[name]
            target = module.resolve_method(impl, name)
            if target is None:
                yield impl_interface_drift.at(
                    module.path,
                    site.node,
                    f"{impl.name!r} bound as {interface.name!r} does not "
                    f"implement {name!r}",
                    hint=f"add a {name} method to {impl.name} or narrow "
                    "the contract",
                )
                continue
            ok, detail = _capacity_ok(declared, target)
            if not ok:
                yield impl_interface_drift.at(
                    module.path,
                    target.node,
                    f"{impl.name}.{name} drifts from "
                    f"{interface.name}.{name}: {detail}",
                    hint="match the contract's positional arity",
                )


@rule("NRMI003", "overlapping-interfaces", FAMILY_CONTRACT, Severity.WARNING)
def overlapping_interfaces(module: ModuleModel) -> Iterable[Finding]:
    """Two interfaces bound in one module sharing method names invite
    calls dispatched against the wrong contract."""
    bound: List[ClassModel] = []
    seen = set()
    for site in module.bind_sites:
        cls = module.class_named(site.interface_name)
        if cls is not None and cls.name not in seen:
            seen.add(cls.name)
            bound.append(cls)
    for index, cls in enumerate(bound):
        for other in bound[:index]:
            overlap = sorted(
                set(cls.public_method_names()) & set(other.public_method_names())
            )
            if overlap:
                yield overlapping_interfaces.at(
                    module.path,
                    cls.node,
                    f"interfaces {other.name!r} and {cls.name!r} are both "
                    f"bound here and share method name(s): {', '.join(overlap)}",
                    hint="rename the colliding methods or merge the contracts",
                )


@rule("NRMI004", "non-function-remote-member", FAMILY_CONTRACT, Severity.ERROR)
def non_function_remote_member(module: ModuleModel) -> Iterable[Finding]:
    """A nested class or callable attribute on an interface/Remote class is
    not a remote method — ``interface_methods`` refuses it, so declaring
    one is always a mistake."""
    suspects = list(module.interface_classes())
    suspects.extend(
        cls for cls in module.classes if cls.is_remote and cls not in suspects
    )
    for cls in suspects:
        for nested in cls.nested_classes:
            if not nested.name.startswith("_"):
                yield non_function_remote_member.at(
                    module.path,
                    nested,
                    f"nested class {cls.name}.{nested.name} would masquerade "
                    "as a remote method",
                    hint="move it to module scope or prefix it with '_'",
                )
        for name, value in cls.class_assigns.items():
            if name.startswith("_"):
                continue
            if _is_callable_attr(value):
                yield non_function_remote_member.at(
                    module.path,
                    value,
                    f"class attribute {cls.name}.{name} is a callable object, "
                    "not a method; it is not remotely invocable",
                    hint="wrap it in a def, or prefix the attribute with '_'",
                )


def _is_callable_attr(value: ast.expr) -> bool:
    if isinstance(value, ast.Lambda):
        return False  # lambdas are real functions; the contract accepts them
    if isinstance(value, ast.Call):
        callee = last_component(dotted_name(value.func))
        return callee in {"partial", "partialmethod", "staticmethod", "classmethod"} and not _wraps_function(value)
    return False


def _wraps_function(call: ast.Call) -> bool:
    """staticmethod(f)/classmethod(f) over a plain name is a real method."""
    callee = last_component(dotted_name(call.func))
    if callee in {"staticmethod", "classmethod"}:
        return bool(call.args) and isinstance(call.args[0], (ast.Name, ast.Lambda))
    return False
