"""AST source model shared by every lint rule.

One :class:`ModuleModel` per parsed file captures what the rules need:
classes with their bases/decorators/methods, module-level names,
``bind(..., interface=...)`` sites, and the ``# nrmi:`` suppression
comments. A :class:`ProjectModel` groups the modules of one run so
cross-file rules (protocol invariants) can find their counterpart
sources.

The model is purely syntactic — nothing here imports the code under
analysis, so the linter can chew on broken, unimportable, or fixture
modules safely.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Marker base-class names selecting serialization semantics (matched on
#: the last component of a dotted base expression).
SERIALIZABLE_BASES = frozenset({"Serializable", "Restorable"})
RESTORABLE_BASES = frozenset({"Restorable"})
REMOTE_BASES = frozenset({"Remote"})

#: Name suffixes identifying remote-interface declarations even when the
#: class never appears in a ``bind(..., interface=...)`` call.
INTERFACE_SUFFIXES = ("Contract", "Interface")

_SUPPRESS_RE = re.compile(
    r"#\s*nrmi:\s*(?P<scope>disable(?:-file)?)"
    r"(?:=(?P<codes>[A-Z0-9, ]+))?"
    r"(?:\s*--\s*(?P<reason>.+))?\s*$"
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def last_component(name: Optional[str]) -> str:
    return name.rsplit(".", 1)[-1] if name else ""


@dataclass
class Suppression:
    """One ``# nrmi: disable[=CODES] -- reason`` directive."""

    line: int
    codes: Optional[frozenset]  # None means "all codes"
    reason: str
    file_level: bool

    def covers(self, code: str, line: int) -> bool:
        if not self.reason:
            return False  # naked suppressions are ineffective (NRMI008)
        if self.codes is not None and code not in self.codes:
            return False
        return self.file_level or line == self.line


@dataclass
class FunctionModel:
    """A def/async-def, with the facts rules ask about pre-extracted."""

    node: ast.AST
    name: str
    lineno: int
    decorators: List[Tuple[str, ast.AST]] = field(default_factory=list)
    is_method: bool = False

    @property
    def params(self) -> List[str]:
        """Positional/keyword parameter names, ``self``/``cls`` excluded."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if self.is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        names.extend(a.arg for a in args.kwonlyargs)
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def positional_capacity(self) -> Tuple[int, Optional[int]]:
        """(min_required, max_allowed_or_None) positionals after self."""
        args = self.node.args
        positional = args.posonlyargs + args.args
        if self.is_method and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        maximum: Optional[int] = len(positional)
        minimum = len(positional) - len(args.defaults)
        if args.vararg is not None:
            maximum = None
        return max(minimum, 0), maximum

    def decorator_names(self) -> List[str]:
        return [name for name, _ in self.decorators]

    def restore_policy(self) -> Optional[str]:
        """The policy pinned by ``@no_restore``/``@restore_policy(...)``."""
        for name, node in self.decorators:
            short = last_component(name)
            if short == "no_restore":
                return "none"
            if short == "restore_policy" and isinstance(node, ast.Call):
                if node.args and isinstance(node.args[0], ast.Constant):
                    value = node.args[0].value
                    if isinstance(value, str):
                        return value
        return None


@dataclass
class ClassModel:
    node: ast.ClassDef
    name: str
    lineno: int
    base_names: List[str] = field(default_factory=list)
    decorator_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionModel] = field(default_factory=dict)
    nested_classes: List[ast.ClassDef] = field(default_factory=list)
    class_assigns: Dict[str, ast.expr] = field(default_factory=dict)

    def base_shorts(self) -> Set[str]:
        return {last_component(b) for b in self.base_names}

    @property
    def is_remote(self) -> bool:
        return bool(self.base_shorts() & REMOTE_BASES)

    @property
    def is_serializable(self) -> bool:
        if self.base_shorts() & SERIALIZABLE_BASES:
            return True
        return any(
            last_component(d) == "register_class" for d in self.decorator_names
        )

    @property
    def is_restorable(self) -> bool:
        return bool(self.base_shorts() & RESTORABLE_BASES)

    def looks_like_interface(self) -> bool:
        return self.name.endswith(INTERFACE_SUFFIXES)

    def transient_names(self) -> frozenset:
        """Literal ``__nrmi_transient__`` declaration, if statically visible."""
        node = self.class_assigns.get("__nrmi_transient__")
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            names = [
                e.value
                for e in node.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            return frozenset(names)
        return frozenset()

    def public_method_names(self) -> List[str]:
        return [n for n in self.methods if not n.startswith("_")]


@dataclass
class BindSite:
    """One ``<endpoint>.bind(name, impl, interface=I)`` call."""

    node: ast.Call
    lineno: int
    interface_name: str
    impl_expr: Optional[ast.expr]


@dataclass
class ModuleModel:
    path: str
    source: str
    tree: ast.Module
    classes: List[ClassModel] = field(default_factory=list)
    module_assigns: Dict[str, ast.expr] = field(default_factory=dict)
    bind_sites: List[BindSite] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    naked_suppressions: List[int] = field(default_factory=list)

    def class_named(self, name: str) -> Optional[ClassModel]:
        short = last_component(name)
        for cls in self.classes:
            if cls.name == short:
                return cls
        return None

    def interface_classes(self) -> List[ClassModel]:
        """Classes used as contracts: named *Contract/*Interface or passed
        as ``interface=`` to a bind call in this module."""
        bound = {last_component(site.interface_name) for site in self.bind_sites}
        return [
            cls
            for cls in self.classes
            if cls.looks_like_interface() or cls.name in bound
        ]

    def is_suppressed(self, code: str, line: int) -> bool:
        return any(s.covers(code, line) for s in self.suppressions)

    def resolve_method(
        self, cls: ClassModel, name: str
    ) -> Optional[FunctionModel]:
        """Look *name* up on *cls*, walking same-module base classes."""
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            if name in current.methods:
                return current.methods[name]
            for base in current.base_names:
                parent = self.class_named(base)
                if parent is not None:
                    stack.append(parent)
        return None


@dataclass
class ProjectModel:
    modules: List[ModuleModel] = field(default_factory=list)

    def module_with_suffix(self, suffix: str) -> Optional[ModuleModel]:
        normalized = suffix.replace("\\", "/")
        for module in self.modules:
            if module.path.replace("\\", "/").endswith(normalized):
                return module
        return None


# ------------------------------------------------------------- construction


def _collect_function(node, is_method: bool) -> FunctionModel:
    decorators = [(dotted_name(d) or _call_name(d) or "", d) for d in node.decorator_list]
    return FunctionModel(
        node=node,
        name=node.name,
        lineno=node.lineno,
        decorators=decorators,
        is_method=is_method,
    )


def _call_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return None


def _collect_class(node: ast.ClassDef) -> ClassModel:
    cls = ClassModel(
        node=node,
        name=node.name,
        lineno=node.lineno,
        base_names=[dotted_name(b) or "" for b in node.bases],
        decorator_names=[
            dotted_name(d) or _call_name(d) or "" for d in node.decorator_list
        ],
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[stmt.name] = _collect_function(stmt, is_method=True)
        elif isinstance(stmt, ast.ClassDef):
            cls.nested_classes.append(stmt)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    cls.class_assigns[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                cls.class_assigns[stmt.target.id] = stmt.value
    return cls


def _collect_bind_sites(tree: ast.Module) -> List[BindSite]:
    sites: List[BindSite] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func_name = dotted_name(node.func)
        if last_component(func_name) != "bind":
            continue
        interface = None
        for keyword in node.keywords:
            if keyword.arg == "interface":
                interface = dotted_name(keyword.value)
        if interface is None:
            continue
        impl = node.args[1] if len(node.args) >= 2 else None
        sites.append(
            BindSite(
                node=node,
                lineno=node.lineno,
                interface_name=interface,
                impl_expr=impl,
            )
        )
    return sites


def _collect_suppressions(source: str) -> Tuple[List[Suppression], List[int]]:
    directives: List[Suppression] = []
    naked: List[int] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return directives, naked
    for line, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = None
        if match.group("codes"):
            codes = frozenset(
                c.strip() for c in match.group("codes").split(",") if c.strip()
            )
        reason = (match.group("reason") or "").strip()
        if not reason:
            naked.append(line)
        directives.append(
            Suppression(
                line=line,
                codes=codes,
                reason=reason,
                file_level=match.group("scope") == "disable-file",
            )
        )
    return directives, naked


def build_module(path: str, source: str) -> ModuleModel:
    """Parse *source* into a ModuleModel. Raises SyntaxError on bad input."""
    tree = ast.parse(source, filename=path)
    module = ModuleModel(path=path, source=source, tree=tree)
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            module.classes.append(_collect_class(stmt))
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    module.module_assigns[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                module.module_assigns[stmt.target.id] = stmt.value
    # Nested classes (inside functions / other classes) still matter for
    # marker-based rules: collect them too, flattened.
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and all(
            node is not cls.node for cls in module.classes
        ):
            module.classes.append(_collect_class(node))
    module.bind_sites = _collect_bind_sites(tree)
    module.suppressions, module.naked_suppressions = _collect_suppressions(source)
    return module


# --------------------------------------------------- shared AST utilities


def iter_methods(cls: ClassModel) -> Iterable[FunctionModel]:
    return cls.methods.values()


#: Constructors whose result is a mutual-exclusion primitive: a ``with``
#: block over one of these attributes counts as a guard.
LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)


def lock_attr_names(cls: ClassModel) -> Set[str]:
    """self attributes initialised to a threading lock in ``__init__``."""
    init = cls.methods.get("__init__")
    if init is None:
        return set()
    locks: Set[str] = set()
    for node in ast.walk(init.node):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        callee = last_component(dotted_name(node.value.func))
        if callee not in LOCK_CONSTRUCTORS:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks.add(target.attr)
    return locks


def lock_aliases(method_node: ast.AST, lock_attrs: Set[str]) -> Dict[str, str]:
    """Local name → lock attribute for ``name = self.<lock>`` bindings.

    ``lock = self._lock`` followed by ``with lock:`` is the same guard as
    ``with self._lock:`` — RLock callers use the alias shape for re-entrant
    sections. Collected over the whole method (flow-insensitive): a name
    aliasing a lock anywhere in the method is treated as that lock, which
    over-approximates guarding but never invents a lock that isn't there.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(method_node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and value.attr in lock_attrs
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases[target.id] = value.attr
    return aliases


def held_locks_of_with(
    node: ast.AST, lock_attrs: Set[str], aliases: Dict[str, str]
) -> Set[str]:
    """Lock attributes acquired by a ``with``/``async with`` statement."""
    held: Set[str] = set()
    for item in getattr(node, "items", ()):
        expr = item.context_expr
        # `with self._lock:` — possibly `with self._lock.acquire_timeout()`
        # style chains are NOT matched: only the bare attribute context.
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in lock_attrs
        ):
            held.add(expr.attr)
        elif isinstance(expr, ast.Name) and expr.id in aliases:
            held.add(aliases[expr.id])
    return held


def stores_in(node: ast.AST) -> Iterable[ast.AST]:
    """Assignment-like statements anywhere under *node*."""
    for child in ast.walk(node):
        if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            yield child


#: Methods that mutate their receiver in place — used by the copy-restore
#: hazard rules to spot writes routed through a call.
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "add", "discard", "update", "setdefault", "popitem",
        "appendleft", "extendleft", "rotate", "__setitem__", "__delitem__",
    }
)


def root_name(node: ast.AST) -> Optional[str]:
    """The base Name of an attribute/subscript chain (``a`` in ``a.b[0].c``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def const_env(module: ModuleModel) -> Dict[str, object]:
    """Constant-fold the module's simple top-level assignments.

    Supports int/str/bytes literals, references to already-folded names,
    unary minus, and the arithmetic the protocol modules actually use
    (``+ - * << >> | &``). Unfoldable values are simply absent.
    """
    env: Dict[str, object] = {}
    for name, value in module.module_assigns.items():
        folded = fold_const(value, env)
        if folded is not None:
            env[name] = folded
    return env


def fold_const(node: ast.AST, env: Dict[str, object]):
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, str, bytes, float)
    ):
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        value = fold_const(node.operand, env)
        return -value if isinstance(value, (int, float)) else None
    if isinstance(node, ast.BinOp):
        left = fold_const(node.left, env)
        right = fold_const(node.right, env)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.LShift):
                return left << right
            if isinstance(node.op, ast.RShift):
                return left >> right
            if isinstance(node.op, ast.BitOr):
                return left | right
            if isinstance(node.op, ast.BitAnd):
                return left & right
        except TypeError:
            return None
    return None


def enum_values(cls: ClassModel) -> Dict[str, int]:
    """NAME → int for an IntEnum-style class body."""
    values: Dict[str, int] = {}
    for name, node in cls.class_assigns.items():
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            values[name] = node.value
        elif (
            isinstance(node, ast.Call)
            and last_component(dotted_name(node.func)) == "auto"
        ):
            values[name] = max(values.values(), default=0) + 1
    return values
