"""Whole-program thread-role model for the concurrency rules.

The staged runtime is a small set of *thread roles*: one selector-driven
net thread, a pool of worker threads, a pipelined reader/demux thread,
the external caller threads that enter through a class's public surface,
and whoever runs ``stop()``/``close()`` at the end. The NRMI04x family
asks a question the per-method rules cannot: *which roles can execute
this statement, and what locks are they guaranteed to hold when they
do?*

This module answers it syntactically. :func:`concurrency_model` parses
nothing new — it reuses the :class:`~repro.analysis.model.ProjectModel`
built once per lint run — and derives, per class:

* an **effective method table** resolved across modules (a subclass in
  ``transport/shm.py`` inherits its net loop from
  ``transport/netloop.py`` and must be analysed with it);
* **role entry points**: methods calling ``self.<selector>.select(...)``
  (net-loop), targets of ``Thread(target=self.x)`` / ``pool.submit(
  self.x)`` spawn sites (worker, or reader-demux when the target name
  says it reads/receives/demuxes), ``stop``/``close``/``shutdown``/
  ``__exit__``/``__del__`` (stop-finalizer), and every remaining public
  method (client-caller);
* a **role-annotated call graph**: roles propagate along
  ``self.<method>()`` edges, and so do *locksets* — a method called only
  from inside ``with self._lock:`` blocks inherits that guard
  (intersection over all call paths, to a fixed point);
* per-field **access records** (read / write / rmw / mutate / iterate /
  ring ops) tagged with the roles that can reach them and the locks held
  when they run.

Happens-before assumptions baked in: ``__init__``/``__new__`` run before
any thread is spawned or any reference escapes, so construction-time
accesses carry no role (NRMI045 separately checks stores *after* a
``start()`` inside ``__init__``). Methods reachable only from
construction are likewise role-free. The model is per-class: state
handed across objects (``self._jobs.spin_hot`` written by another
class's net loop) is out of scope and documented as an
under-approximation in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.model import (
    MUTATING_METHODS,
    ClassModel,
    FunctionModel,
    ModuleModel,
    ProjectModel,
    held_locks_of_with,
    last_component,
    lock_aliases,
    lock_attr_names,
)

# ------------------------------------------------------------------ roles

ROLE_NET = "net-loop"
ROLE_WORKER = "worker"
ROLE_READER = "reader-demux"
ROLE_CLIENT = "client-caller"
ROLE_FINALIZER = "stop-finalizer"

#: Roles executed by threads the class itself spawns or drives. The
#: cross-role rules require one of these to be involved: concurrent
#: calls from *external* threads (client-caller vs stop-finalizer) are
#: assumed to be serialized by the caller — the lifecycle contract every
#: transport in this repo documents.
INTERNAL_ROLES = frozenset({ROLE_NET, ROLE_WORKER, ROLE_READER})

#: Method names that mean teardown when present on a class.
FINALIZER_NAMES = frozenset({"stop", "close", "shutdown", "__exit__", "__del__"})

#: A spawned target whose name says it reads/receives/demuxes is the
#: pipelined reader thread, not a pool worker.
_READERISH = re.compile(r"read|recv|demux", re.IGNORECASE)

#: SPSC ring endpoint APIs (see util/ring.py): exactly one role may sit
#: on each end of a ring.
RING_PRODUCER_OPS = frozenset({"try_write"})
RING_CONSUMER_OPS = frozenset({"try_read_into"})

#: Access kinds recorded per ``self.<field>`` touch.
READ, WRITE, RMW, MUTATE, ITERATE = "read", "write", "rmw", "mutate", "iterate"


# ---------------------------------------------------------------- records


@dataclass
class FieldAccess:
    """One syntactic touch of ``self.<attr>`` inside a method body."""

    attr: str
    kind: str  # READ | WRITE | RMW | MUTATE | ITERATE
    node: ast.AST
    method: str
    locks: FrozenSet[str]  # locks held lexically at the access site
    #: WRITE lexically inside an ``if`` whose test reads the same field —
    #: the check-then-set half of a non-atomic read-modify-write.
    check_then_set: bool = False
    #: For MUTATE: the mutating method name (``append``, ``pop``, ...).
    op: str = ""


@dataclass
class RingOp:
    """A ``self.<field>.try_write(...)`` / ``try_read_into(...)`` call."""

    attr: str
    op: str
    node: ast.AST
    method: str


@dataclass
class SpawnSite:
    """A ``Thread(target=self.x)`` / ``submit(self.x)`` site."""

    target: str
    node: ast.AST
    method: str


@dataclass
class MethodScan:
    """Purely syntactic facts about one method body."""

    accesses: List[FieldAccess] = field(default_factory=list)
    #: (callee, locks held at the call site) for ``self.<callee>()``.
    self_calls: List[Tuple[str, FrozenSet[str]]] = field(default_factory=list)
    spawns: List[SpawnSite] = field(default_factory=list)
    ring_ops: List[RingOp] = field(default_factory=list)
    calls_selector_select: bool = False


def _is_self_name(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _self_attr(node: ast.AST) -> Optional[str]:
    """``x`` when *node* is exactly ``self.x``."""
    if isinstance(node, ast.Attribute) and _is_self_name(node.value):
        return node.attr
    return None


def _chain_root_attr(node: ast.AST) -> Optional[str]:
    """``x`` when *node* is ``self.x[...]...`` or ``self.x.y...`` (deeper
    than the bare attribute — a store through it mutates x's value)."""
    seen_deeper = False
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        parent = node.value
        if isinstance(node, ast.Attribute) and _is_self_name(parent):
            return node.attr if seen_deeper else None
        seen_deeper = True
        node = parent
    return None


def _spawn_targets_in(node: ast.AST, method_names: Set[str]) -> List[Tuple[str, ast.AST]]:
    """Spawn targets rooted at *node*: ``Thread(target=self.x)``,
    ``Thread(target=<nested def>)`` (each self-method the closure calls),
    and ``<pool>.submit(self.x, ...)``."""
    # Nested function definitions, so closure spawn targets resolve.
    nested: Dict[str, ast.AST] = {
        child.name: child
        for child in ast.walk(node)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        and child is not node
    }
    out: List[Tuple[str, ast.AST]] = []
    for call in ast.walk(node):
        if not isinstance(call, ast.Call):
            continue
        callee = last_component(
            call.func.attr
            if isinstance(call.func, ast.Attribute)
            else getattr(call.func, "id", "")
        )
        target_expr: Optional[ast.AST] = None
        if callee == "Thread":
            for kw in call.keywords:
                if kw.arg == "target":
                    target_expr = kw.value
        elif callee == "submit" and isinstance(call.func, ast.Attribute):
            if call.args:
                target_expr = call.args[0]
        if target_expr is None:
            continue
        attr = _self_attr(target_expr)
        if attr is not None and attr in method_names:
            out.append((attr, call))
        elif isinstance(target_expr, ast.Name) and target_expr.id in nested:
            # Thread(target=<closure>): the closure runs on the spawned
            # thread, so every self-method it calls is an entry point.
            closure = nested[target_expr.id]
            for walked in ast.walk(closure):
                if (
                    isinstance(walked, ast.Call)
                    and isinstance(walked.func, ast.Attribute)
                    and _is_self_name(walked.func.value)
                    and walked.func.attr in method_names
                ):
                    out.append((walked.func.attr, call))
    return out


def scan_method(
    method_node: ast.AST,
    lock_attrs: Set[str],
    method_names: Set[str],
) -> MethodScan:
    """One guarded recursive descent over a method body."""
    scan = MethodScan()
    aliases = lock_aliases(method_node, lock_attrs)
    for target, node in _spawn_targets_in(method_node, method_names):
        scan.spawns.append(SpawnSite(target=target, node=node, method=method_node.name))

    def record(attr: str, kind: str, node: ast.AST, locks: FrozenSet[str],
               checked: FrozenSet[str], op: str = "") -> None:
        if attr in lock_attrs or attr in method_names:
            return
        scan.accesses.append(
            FieldAccess(
                attr=attr,
                kind=kind,
                node=node,
                method=method_node.name,
                locks=locks,
                check_then_set=(kind == WRITE and attr in checked),
                op=op,
            )
        )

    def self_attrs_read(node: ast.AST) -> FrozenSet[str]:
        return frozenset(
            a for a in (
                _self_attr(child) for child in ast.walk(node)
                if isinstance(child, ast.Attribute)
                and isinstance(child.ctx, ast.Load)
            ) if a is not None
        )

    def visit(node: ast.AST, locks: FrozenSet[str], checked: FrozenSet[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested defs run on their own schedule / discipline
        if isinstance(node, (ast.With, ast.AsyncWith)):
            held = locks | frozenset(held_locks_of_with(node, lock_attrs, aliases))
            for item in node.items:
                visit(item.context_expr, locks, checked)
            for child in node.body:
                visit(child, held, checked)
            return
        if isinstance(node, ast.If):
            visit(node.test, locks, checked)
            branch_checked = checked | self_attrs_read(node.test)
            for child in node.body:
                visit(child, locks, branch_checked)
            for child in node.orelse:
                visit(child, locks, branch_checked)
            return
        if isinstance(node, ast.Assign):
            targets: List[ast.AST] = []
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    targets.extend(target.elts)
                else:
                    targets.append(target)
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    record(attr, WRITE, node, locks, checked)
                else:
                    root = _chain_root_attr(target)
                    if root is not None:
                        record(root, MUTATE, node, locks, checked, op="[]=")
            visit(node.value, locks, checked)
            return
        if isinstance(node, ast.AugAssign):
            attr = _self_attr(node.target)
            if attr is not None:
                record(attr, RMW, node, locks, checked)
            else:
                root = _chain_root_attr(node.target)
                if root is not None:
                    record(root, MUTATE, node, locks, checked, op="aug")
            visit(node.value, locks, checked)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    record(attr, WRITE, node, locks, checked)
                else:
                    root = _chain_root_attr(target)
                    if root is not None:
                        record(root, MUTATE, node, locks, checked, op="del")
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            for child in ast.walk(node.iter):
                attr = _self_attr(child)
                if attr is not None and isinstance(child.ctx, ast.Load):
                    record(attr, ITERATE, child, locks, checked)
            visit(node.iter, locks, checked)
            for child in node.body + node.orelse:
                visit(child, locks, checked)
            return
        if isinstance(node, ast.comprehension):
            for child in ast.walk(node.iter):
                attr = _self_attr(child)
                if attr is not None and isinstance(child.ctx, ast.Load):
                    record(attr, ITERATE, child, locks, checked)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver_attr = _self_attr(func.value)
                if receiver_attr is not None:
                    if func.attr in RING_PRODUCER_OPS | RING_CONSUMER_OPS:
                        scan.ring_ops.append(
                            RingOp(
                                attr=receiver_attr,
                                op=func.attr,
                                node=node,
                                method=method_node.name,
                            )
                        )
                    if func.attr in MUTATING_METHODS:
                        record(receiver_attr, MUTATE, node, locks, checked,
                               op=func.attr)
                if _is_self_name(func.value) and func.attr in method_names:
                    scan.self_calls.append((func.attr, locks))
                if func.attr == "select" and _self_attr(func.value) is not None:
                    scan.calls_selector_select = True
        elif isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None and isinstance(node.ctx, ast.Load):
                record(attr, READ, node, locks, checked)
        for child in ast.iter_child_nodes(node):
            visit(child, locks, checked)

    for child in method_node.body:
        visit(child, frozenset(), frozenset())
    return scan


# --------------------------------------------------------- class analysis


@dataclass
class ResolvedAccess:
    """A FieldAccess with roles and the full path-insensitive lockset."""

    access: FieldAccess
    roles: FrozenSet[str]
    locks: FrozenSet[str]
    path: str  # module the defining method lives in

    @property
    def kind(self) -> str:
        return self.access.kind

    @property
    def node(self) -> ast.AST:
        return self.access.node

    @property
    def method(self) -> str:
        return self.access.method


@dataclass
class ClassConcurrency:
    """Role/lockset view of one class (own methods, inherited entries)."""

    module: ModuleModel
    cls: ClassModel
    lock_attrs: Set[str] = field(default_factory=set)
    #: Effective method table: name → (defining module, FunctionModel,
    #: True when defined on this class rather than inherited).
    methods: Dict[str, Tuple[ModuleModel, FunctionModel, bool]] = field(
        default_factory=dict
    )
    scans: Dict[str, MethodScan] = field(default_factory=dict)
    roles: Dict[str, Set[str]] = field(default_factory=dict)
    #: Locks held on *every* path from an entry point to the method.
    entry_locks: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    spawns: List[SpawnSite] = field(default_factory=list)
    #: Fields whose ``__init__`` value is a sanctioned-atomic container
    #: (deque / util Counter / Gauge): their in-place ops are the
    #: GIL-atomic handoffs the runtime is built on.
    atomic_fields: Set[str] = field(default_factory=set)

    def roles_of(self, method: str) -> FrozenSet[str]:
        return frozenset(self.roles.get(method, ()))

    def has_multiple_roles(self) -> bool:
        seen: Set[str] = set()
        for roleset in self.roles.values():
            seen |= roleset
        return len(seen) > 1

    def reachable_from(self, entry: str) -> Set[str]:
        """Methods reachable from *entry* along self-call edges."""
        seen: Set[str] = set()
        frontier = [entry]
        while frontier:
            current = frontier.pop()
            if current in seen or current not in self.scans:
                continue
            seen.add(current)
            for callee, _ in self.scans[current].self_calls:
                frontier.append(callee)
        return seen

    def fields_read_by(self, methods: Set[str]) -> Set[str]:
        out: Set[str] = set()
        for name in methods:
            scan = self.scans.get(name)
            if scan is None:
                continue
            for access in scan.accesses:
                if access.kind in (READ, MUTATE, ITERATE, RMW):
                    out.add(access.attr)
        return out

    def field_accesses(self) -> Dict[str, List[ResolvedAccess]]:
        """attr → accesses in *own* methods with a role, construction
        excluded (``__init__`` happens-before every spawn/escape)."""
        out: Dict[str, List[ResolvedAccess]] = {}
        for name, (module, _fn, own) in self.methods.items():
            if not own or name in ("__init__", "__new__"):
                continue
            roleset = self.roles_of(name)
            if not roleset:
                continue  # reachable only from construction, or dead
            inherited_locks = self.entry_locks.get(name, frozenset())
            for access in self.scans[name].accesses:
                out.setdefault(access.attr, []).append(
                    ResolvedAccess(
                        access=access,
                        roles=roleset,
                        locks=access.locks | inherited_locks,
                        path=module.path,
                    )
                )
        return out

    def ring_ops_with_roles(self) -> List[Tuple[RingOp, FrozenSet[str], str]]:
        """(op, roles, path) for ring ops in own, role-bearing methods."""
        out: List[Tuple[RingOp, FrozenSet[str], str]] = []
        for name, (module, _fn, own) in self.methods.items():
            if not own or name in ("__init__", "__new__"):
                continue
            roleset = self.roles_of(name)
            if not roleset:
                continue
            for op in self.scans[name].ring_ops:
                out.append((op, roleset, module.path))
        return out


_ATOMIC_CONSTRUCTORS = frozenset({"deque", "counter", "gauge"})


def _atomic_fields_of(cc: ClassConcurrency) -> Set[str]:
    fields: Set[str] = set()
    for name, (_module, fn, _own) in cc.methods.items():
        if name != "__init__":
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            callee = last_component(
                node.value.func.attr
                if isinstance(node.value.func, ast.Attribute)
                else getattr(node.value.func, "id", "")
            )
            if callee.lower() not in _ATOMIC_CONSTRUCTORS:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    fields.add(attr)
    return fields


# -------------------------------------------------------- project analysis


@dataclass
class ProjectConcurrency:
    classes: List[ClassConcurrency] = field(default_factory=list)


def _class_index(project: ProjectModel) -> Dict[str, List[Tuple[ModuleModel, ClassModel]]]:
    index: Dict[str, List[Tuple[ModuleModel, ClassModel]]] = {}
    for module in project.modules:
        for cls in module.classes:
            index.setdefault(cls.name, []).append((module, cls))
    return index


def _resolve_base(
    module: ModuleModel,
    base_short: str,
    index: Dict[str, List[Tuple[ModuleModel, ClassModel]]],
) -> Optional[Tuple[ModuleModel, ClassModel]]:
    """Same module first; otherwise a unique cross-module match."""
    local = module.class_named(base_short)
    if local is not None:
        return module, local
    candidates = index.get(base_short, [])
    if len(candidates) == 1:
        return candidates[0]
    return None  # absent or ambiguous: stop walking this edge


def _effective_methods(
    module: ModuleModel,
    cls: ClassModel,
    index: Dict[str, List[Tuple[ModuleModel, ClassModel]]],
) -> Tuple[Dict[str, Tuple[ModuleModel, FunctionModel, bool]], Set[str]]:
    """MRO-flattened method table and the union of lock attrs."""
    methods: Dict[str, Tuple[ModuleModel, FunctionModel, bool]] = {}
    locks: Set[str] = set()
    seen: Set[int] = set()
    queue: deque = deque([(module, cls, True)])
    while queue:
        mod, current, own = queue.popleft()
        if id(current) in seen:
            continue
        seen.add(id(current))
        locks |= lock_attr_names(current)
        for name, fn in current.methods.items():
            if name not in methods:  # subclass definition wins
                methods[name] = (mod, fn, own)
        for base in current.base_names:
            resolved = _resolve_base(mod, last_component(base), index)
            if resolved is not None:
                queue.append((resolved[0], resolved[1], False))
    return methods, locks


def _build_class(
    module: ModuleModel,
    cls: ClassModel,
    index: Dict[str, List[Tuple[ModuleModel, ClassModel]]],
) -> ClassConcurrency:
    cc = ClassConcurrency(module=module, cls=cls)
    cc.methods, cc.lock_attrs = _effective_methods(module, cls, index)
    names = set(cc.methods)
    for name, (_mod, fn, _own) in cc.methods.items():
        cc.scans[name] = scan_method(fn.node, cc.lock_attrs, names)
        cc.spawns.extend(cc.scans[name].spawns)
    cc.atomic_fields = _atomic_fields_of(cc)
    _infer_roles(cc)
    return cc


def _spawn_role(cc: ClassConcurrency, target: str) -> str:
    """Classify a spawned entry: a target whose reachable set runs the
    selector loop IS the net thread; a reader-ish name is the demux
    thread; everything else is a pool worker."""
    for name in cc.reachable_from(target):
        if cc.scans[name].calls_selector_select:
            return ROLE_NET
    if _READERISH.search(target):
        return ROLE_READER
    return ROLE_WORKER


def _infer_roles(cc: ClassConcurrency) -> None:
    entries: List[Tuple[str, str]] = []  # (method, role)
    for name, scan in cc.scans.items():
        if name in ("__init__", "__new__"):
            continue
        if scan.calls_selector_select:
            entries.append((name, ROLE_NET))
    spawn_targets = {site.target for site in cc.spawns}
    for target in sorted(spawn_targets):
        if target in cc.scans:
            entries.append((target, _spawn_role(cc, target)))
    entry_names = {name for name, _ in entries}
    for name in cc.methods:
        if name in FINALIZER_NAMES and name not in entry_names:
            entries.append((name, ROLE_FINALIZER))
            entry_names.add(name)
    for name in cc.methods:
        if (
            name not in entry_names
            and not name.startswith("_")
            and name not in ("__init__", "__new__")
        ):
            entries.append((name, ROLE_CLIENT))

    # Propagate (roles, entry lockset) along self-call edges to a fixed
    # point. entry_locks[m] is the *intersection* of locks held on every
    # path reaching m: a helper only ever called under self._lock is as
    # guarded as its callers.
    pending: deque = deque()

    def merge(name: str, roles: Set[str], locks: FrozenSet[str]) -> None:
        changed = False
        have = cc.roles.setdefault(name, set())
        if not roles <= have:
            have |= roles
            changed = True
        if name not in cc.entry_locks:
            cc.entry_locks[name] = locks
            changed = True
        else:
            narrowed = cc.entry_locks[name] & locks
            if narrowed != cc.entry_locks[name]:
                cc.entry_locks[name] = narrowed
                changed = True
        if changed:
            pending.append(name)

    for name, role in entries:
        merge(name, {role}, frozenset())
    while pending:
        current = pending.popleft()
        if current not in cc.scans:
            continue
        roles = set(cc.roles.get(current, ()))
        base_locks = cc.entry_locks.get(current, frozenset())
        for callee, site_locks in cc.scans[current].self_calls:
            if callee in ("__init__", "__new__"):
                continue
            merge(callee, roles, base_locks | site_locks)


def concurrency_model(project: ProjectModel) -> ProjectConcurrency:
    """Build (and cache on the project) the whole-program role model."""
    cached = getattr(project, "_concurrency_cache", None)
    if cached is not None:
        return cached
    index = _class_index(project)
    model = ProjectConcurrency()
    for module in project.modules:
        for cls in module.classes:
            model.classes.append(_build_class(module, cls, index))
    project._concurrency_cache = model
    return model
