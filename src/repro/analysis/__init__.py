"""Static analysis for NRMI programs and for the middleware itself.

The ``rmic``/``serialver`` analogue this reproduction was missing: an
AST/introspection linter that rejects broken remote contracts,
unserializable state, copy-restore hazards, and protocol-constant drift
*before* anything hits the wire. Five rule families:

========  =================  ==============================================
NRMI00x   contract           interfaces, impl drift, fake remote members
NRMI01x   serializability    unencodable fields, walker blind spots, digests
NRMI02x   copy-restore       @no_restore mutation, escapes, mutable defaults
NRMI03x   runtime            lock discipline, wire-constant cross-checks
NRMI04x   concurrency        thread-role races, SPSC ring ownership
========  =================  ==============================================

The NRMI04x family runs on a whole-program thread-role model
(:mod:`repro.analysis.project`): methods are assigned roles (net-loop,
worker, reader-demux, client-caller, stop-finalizer) from their spawn
sites and call graph, and shared fields are checked lockset-style across
roles.

Run it as ``nrmi-lint src examples`` or ``python -m repro.analysis …``;
``--jobs N`` fans module rules out over worker processes and
``--format sarif`` emits SARIF 2.1.0 for CI annotation. See
``docs/static_analysis.md`` for the full catalogue and the suppression
syntax (``# nrmi: disable=NRMI0xx -- reason``).
"""

from repro.analysis.engine import (
    AnalysisResult,
    analyze_paths,
    analyze_project,
    build_project,
    collect_files,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import concurrency_model
from repro.analysis.reporting import (
    render_json,
    render_sarif,
    render_text,
    to_json_payload,
    to_sarif_payload,
)
from repro.analysis.rulebase import ALL_RULES, RULES_BY_CODE, Rule

__all__ = [
    "AnalysisResult",
    "analyze_paths",
    "analyze_project",
    "build_project",
    "collect_files",
    "concurrency_model",
    "Finding",
    "Severity",
    "render_json",
    "render_sarif",
    "render_text",
    "to_json_payload",
    "to_sarif_payload",
    "ALL_RULES",
    "RULES_BY_CODE",
    "Rule",
]
