"""Serializability rules (NRMI011–NRMI014, NRMI033).

What the serde layer will reject (or silently mis-handle) at call time,
surfaced at lint time: code-like fields the kind table refuses, dynamic
attribute tricks the graph walker cannot see, identity-semantics
overrides on linear-map node classes, and unordered iteration feeding a
digest. The unserializable-constructor table is derived from
:func:`repro.serde.kinds.code_like_type_names` so the lint and the
runtime classifier can never drift apart.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.model import (
    ClassModel,
    ModuleModel,
    dotted_name,
    last_component,
)
from repro.analysis.rulebase import FAMILY_RUNTIME, FAMILY_SERDE, rule
from repro.serde.kinds import code_like_type_names

#: Constructor calls whose results the kind table classifies UNSUPPORTED
#: (or that hold OS state no peer can resurrect).
UNSERIALIZABLE_CONSTRUCTORS = frozenset(
    {
        "Lock", "RLock", "Condition", "Event", "Semaphore",
        "BoundedSemaphore", "Barrier", "Thread", "Timer",
        "open", "socket", "socketpair", "Popen", "compile",
        "ThreadPoolExecutor", "ProcessPoolExecutor", "Queue",
        "SimpleQueue", "LifoQueue", "PriorityQueue", "memoryview",
        "iter", "BytesIO", "StringIO", "TextIOWrapper",
    }
)

#: AST expression nodes that evaluate to code-like values outright.
_CODE_LIKE_EXPRS = (ast.Lambda, ast.GeneratorExp)


def _unserializable_reason(module: ModuleModel, value: ast.expr) -> Optional[str]:
    if isinstance(value, _CODE_LIKE_EXPRS):
        # A lambda evaluates to a `function`, a genexp to a `generator` —
        # both in the kind table's code-like set, always UNSUPPORTED.
        kind = "function" if isinstance(value, ast.Lambda) else "generator"
        if kind in code_like_type_names():
            return f"a {kind} is code-like: the kind table classifies it UNSUPPORTED"
    if isinstance(value, ast.Call):
        callee = last_component(dotted_name(value.func))
        if callee in UNSERIALIZABLE_CONSTRUCTORS:
            return f"{callee}() constructs a value the serde kind table cannot encode"
    if isinstance(value, ast.Name):
        target = value.id
        for cls in module.classes:
            if cls.name == target:
                return None  # a class *instance* would be fine; a class ref is not stored here
        assigned = module.module_assigns.get(target)
        if assigned is not None and isinstance(assigned, ast.Lambda):
            return f"{target} is a module-level lambda: code-like, never serializable"
    return None


@rule("NRMI011", "unserializable-field", FAMILY_SERDE, Severity.ERROR)
def unserializable_field(module: ModuleModel) -> Iterable[Finding]:
    """A Serializable/Restorable class storing a lock, file handle, lambda
    or other code-like value in a non-transient field dies at encode time
    on the first remote call that ships the instance."""
    for cls in module.classes:
        if not cls.is_serializable:
            continue
        transient = cls.transient_names()
        for method in cls.methods.values():
            for stmt in ast.walk(method.node):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    field_name = _self_field(target)
                    if field_name is None or field_name in transient:
                        continue
                    reason = _unserializable_reason(module, stmt.value)
                    if reason:
                        yield unserializable_field.at(
                            module.path,
                            stmt,
                            f"field {cls.name}.{field_name} holds an "
                            f"unserializable value: {reason}",
                            hint="declare it in __nrmi_transient__ (and "
                            "rebuild it in __nrmi_resolve__), or store "
                            "plain data instead",
                        )


def _self_field(target: ast.expr) -> Optional[str]:
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


@rule("NRMI012", "dynamic-attr-serializable", FAMILY_SERDE, Severity.WARNING)
def dynamic_attr_serializable(module: ModuleModel) -> Iterable[Finding]:
    """The graph walker reads real storage (``__dict__``/``__slots__``);
    attributes synthesized by ``__getattr__``/``__getattribute__`` are
    silently dropped from the copy, and a computed ``__slots__`` defeats
    the compiled plan's slot layout."""
    for cls in module.classes:
        if not cls.is_serializable:
            continue
        for hook in ("__getattr__", "__getattribute__"):
            method = cls.methods.get(hook)
            if method is not None:
                yield dynamic_attr_serializable.at(
                    module.path,
                    method.node,
                    f"{cls.name} defines {hook} on a serializable class: "
                    "attributes it synthesizes are invisible to the serde "
                    "walker and will not travel",
                    hint="store the data in real fields, or exclude the "
                    "class from serialization",
                )
        slots = cls.class_assigns.get("__slots__")
        if slots is not None and not _is_static_slots(slots):
            yield dynamic_attr_serializable.at(
                module.path,
                slots,
                f"{cls.name}.__slots__ is not a literal tuple/list of "
                "strings: the compiled serde plan cannot derive a stable "
                "slot layout",
                hint="declare __slots__ as a literal tuple of field names",
            )


def _is_static_slots(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return True
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in node.elts
        )
    return False


@rule("NRMI013", "identity-override-restorable", FAMILY_SERDE, Severity.WARNING)
def identity_override_restorable(module: ModuleModel) -> Iterable[Finding]:
    """Copy-restore matches objects by *identity* (the linear map is keyed
    on ``id()``); a Restorable class overriding ``__eq__``/``__hash__``
    invites value-equality assumptions that restore will not honour —
    e.g. dict keys that compare equal but restore as distinct nodes."""
    for cls in module.classes:
        if not cls.is_restorable:
            continue
        for hook in ("__eq__", "__hash__"):
            method = cls.methods.get(hook)
            if method is not None:
                yield identity_override_restorable.at(
                    module.path,
                    method.node,
                    f"{cls.name} overrides {hook} but passes by "
                    "copy-restore, which matches nodes by identity, not "
                    "equality",
                    hint="drop the override, or pass the type by-copy "
                    "(Serializable) if value semantics are intended",
                )


_UNORDERED_ACCESSORS = frozenset({"keys", "values", "items"})
_UNORDERED_CONSTRUCTORS = frozenset({"set", "frozenset"})
_ORDERING_WRAPPERS = frozenset({"sorted", "list", "tuple", "min", "max", "sum", "len"})


def _digest_functions(module: ModuleModel):
    """Functions that feed a digest: they call hashlib.* or *.digest()."""
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        uses_digest = False
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                name = dotted_name(child.func) or ""
                if name.startswith("hashlib.") or last_component(name) in (
                    "digest",
                    "hexdigest",
                ):
                    uses_digest = True
                    break
        if uses_digest:
            yield node


def _unordered_iterable(node: ast.expr) -> Optional[str]:
    """A description of *node* when its iteration order is unstable."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        short = last_component(name)
        if short in _UNORDERED_ACCESSORS and isinstance(node.func, ast.Attribute):
            return f".{short}()"
        if short in _UNORDERED_CONSTRUCTORS and name == short:
            return f"{short}()"
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    return None


@rule("NRMI014", "unsorted-digest-iteration", FAMILY_SERDE, Severity.WARNING)
def unsorted_digest_iteration(module: ModuleModel) -> Iterable[Finding]:
    """Hashing entries in set/dict iteration order makes the digest a
    function of insertion history, not content — two equal structures can
    digest differently. Wrap the iterable in ``sorted(...)`` or mix with
    an order-insensitive fold."""
    for fn in _digest_functions(module):
        for child in ast.walk(fn):
            iterables = []
            if isinstance(child, (ast.For, ast.AsyncFor)):
                iterables.append(child.iter)
            elif isinstance(child, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in child.generators)
            for iterable in iterables:
                described = _unordered_iterable(iterable)
                if described:
                    yield unsorted_digest_iteration.at(
                        module.path,
                        iterable,
                        f"digest-feeding function {fn.name!r} iterates "
                        f"{described} in unspecified order",
                        hint="iterate sorted(...) or combine per-element "
                        "hashes with an order-insensitive XOR",
                    )


@rule("NRMI033", "version-upgrade-drift", FAMILY_RUNTIME, Severity.ERROR)
def version_upgrade_drift(module: ModuleModel) -> Iterable[Finding]:
    """``__nrmi_version__`` and ``__nrmi_upgrade__`` must move together:
    an upgrade hook on a version-0 class is dead code (no wire version is
    ever older than 0), and a non-integer version breaks plan-cache
    invalidation."""
    for cls in module.classes:
        version_node = cls.class_assigns.get("__nrmi_version__")
        has_upgrade = "__nrmi_upgrade__" in cls.methods
        version: Optional[int] = None
        if version_node is not None:
            if isinstance(version_node, ast.Constant) and isinstance(
                version_node.value, int
            ) and not isinstance(version_node.value, bool):
                version = version_node.value
                if version < 0:
                    yield version_upgrade_drift.at(
                        module.path,
                        version_node,
                        f"{cls.name}.__nrmi_version__ is negative; versions "
                        "are unsigned on the wire",
                        hint="use a non-negative integer",
                    )
            else:
                yield version_upgrade_drift.at(
                    module.path,
                    version_node,
                    f"{cls.name}.__nrmi_version__ must be an integer "
                    "literal; anything else breaks serde plan invalidation",
                    hint="declare __nrmi_version__ = <int>",
                )
        if has_upgrade and (version is None or version == 0):
            yield version_upgrade_drift.at(
                module.path,
                cls.methods["__nrmi_upgrade__"].node,
                f"{cls.name} defines __nrmi_upgrade__ but declares no "
                "positive __nrmi_version__: the hook can never fire",
                hint="declare __nrmi_version__ = 1 (or higher) alongside "
                "the upgrade hook",
                severity=Severity.WARNING,
            )
