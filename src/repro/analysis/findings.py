"""Finding and severity model for the NRMI static analyzer.

Every rule violation is a :class:`Finding`: a stable ``NRMI0xx`` code, the
``file:line:col`` it anchors to, a severity, a one-line message, and a fix
hint. Findings are value objects — the engine sorts, deduplicates, filters
(suppressions, ``--select``/``--ignore``) and serializes them without any
rule-specific knowledge.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Matches a well-formed rule code: NRMI + 3 digits.
CODE_PATTERN = re.compile(r"^NRMI\d{3}$")


class Severity(enum.IntEnum):
    """Ordered severities; the CLI exit code keys off ``ERROR``."""

    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: Severity = Severity.ERROR
    hint: str = ""
    rule: str = ""
    family: str = ""
    extra: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def sort_key(self):
        return (self.path, self.line, self.col, self.code, self.message)

    def render(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} {self.severity.label}: {self.message}"
        )
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """The stable JSON shape (``nrmi-lint --json``, schema version 1)."""
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.label,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "rule": self.rule,
            "family": self.family,
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload
