"""Runtime self-check rules (NRMI031–NRMI036).

These lint the middleware's *own* threaded and protocol code:

* **NRMI031** — inconsistent lock discipline: an attribute that is
  written under ``with self._lock`` in one method but bare in another is
  either a race or a missing justification.
* **NRMI032** — protocol invariants: the constants that several modules
  must agree on (restore-policy/mode wire ids, capability bits, the
  pipelined-framing magic vs the frame-size limit, the tag bytes
  ``serde/plans.py``, ``serde/reader.py``, and ``serde/codegen.py``
  mirror from ``serde/tags.py``, and the schema-cache class-key
  discriminators in ``serde/schema.py``) are cross-checked from source,
  so a drifting edit fails the lint gate before it ships a wire
  incompatibility.
* **NRMI034** — blocking call on the net thread: any method reachable
  from a class's ``selector.select()`` loop must stay non-blocking
  (no handler execution, no ``time.sleep``, no blocking frame reads,
  no blocking queue waits) — one blocked callback stalls every
  connection the staged server owns.
* **NRMI035** — blocking call on a ring spin/poll path: any method
  reachable from a loop that re-probes a shared-memory ring
  (``try_read_into``/``try_write``/``readable``/``poll_ready``/...)
  must stay non-blocking — a sleep or blocking wait inside a
  microsecond-scale spin turns the shm transport's latency win into a
  scheduler round trip per call.
* **NRMI036** — borrowed-view escape: a ``memoryview`` handed out by a
  ring borrow/reservation (``reserve``/``peek_record``/``recv_borrow``/
  ``recv_frame_borrow``) is only valid until the matching
  ``consume``/``consume_borrow``/``commit``/``abort``; storing it on
  ``self``, returning it to a caller, or touching it after the release
  reads recycled ring memory. The transport's sanctioned handoffs
  (methods whose contract is "caller must consume") carry explicit
  suppressions.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.model import (
    ClassModel,
    ModuleModel,
    ProjectModel,
    build_module,
    const_env,
    dotted_name,
    enum_values,
    fold_const,
    held_locks_of_with,
    last_component,
    lock_aliases,
    lock_attr_names,
)
from repro.analysis.rulebase import FAMILY_RUNTIME, rule


def _lock_attrs(cls: ClassModel) -> Set[str]:
    """self attributes initialised to a threading lock in __init__."""
    return lock_attr_names(cls)


def _self_attr_of(node: ast.expr) -> Optional[str]:
    """``x`` for a store whose chain is rooted at ``self.x``."""
    while isinstance(node, (ast.Subscript,)):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _attr_stores(
    method_node: ast.AST, lock_attrs: Set[str]
) -> Iterable[Tuple[str, ast.AST, bool]]:
    """(attr, node, guarded) for every store to a ``self.`` attribute.

    *guarded* is True when the store sits inside ``with self.<lock>:`` for
    any of *lock_attrs* — including the alias shape ``lock = self._lock``
    then ``with lock:`` (the idiom RLock callers use for re-entrant
    sections). Implemented as a recursive descent carrying the guard
    state — ``ast.walk`` cannot express scoping.
    """
    aliases = lock_aliases(method_node, lock_attrs)

    def visit(node: ast.AST, guarded: bool):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            holds = guarded or bool(held_locks_of_with(node, lock_attrs, aliases))
            for item in node.items:
                yield from visit(item.context_expr, guarded)
            for child in node.body:
                yield from visit(child, holds)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested defs get their own discipline
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr_of(target)
                if attr is not None:
                    yield attr, node, guarded
        elif isinstance(node, ast.AugAssign):
            attr = _self_attr_of(node.target)
            if attr is not None:
                yield attr, node, guarded
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_attr_of(target)
                if attr is not None:
                    yield attr, node, guarded
        for child in ast.iter_child_nodes(node):
            yield from visit(child, guarded)

    # Descend into the method's body directly: the visitor prunes nested
    # defs, and the method node itself is one.
    for child in ast.iter_child_nodes(method_node):
        yield from visit(child, False)


@rule("NRMI031", "inconsistent-lock-guard", FAMILY_RUNTIME, Severity.WARNING)
def inconsistent_lock_guard(module: ModuleModel) -> Iterable[Finding]:
    """An attribute written both under ``with self._lock`` and bare is the
    classic lost-update shape: either the bare store races, or it is
    single-threaded by construction and deserves a suppression that says
    why."""
    for cls in module.classes:
        locks = _lock_attrs(cls)
        if not locks:
            continue
        guarded_attrs: Set[str] = set()
        bare: List[Tuple[str, ast.AST, str]] = []
        for method in cls.methods.values():
            if method.name in ("__init__", "__new__"):
                continue  # construction happens-before sharing
            for attr, node, is_guarded in _attr_stores(method.node, locks):
                if attr in locks:
                    continue
                if is_guarded:
                    guarded_attrs.add(attr)
                else:
                    bare.append((attr, node, method.name))
        for attr, node, method_name in bare:
            if attr in guarded_attrs:
                yield inconsistent_lock_guard.at(
                    module.path,
                    node,
                    f"{cls.name}.{method_name} writes self.{attr} without "
                    f"holding the lock that guards it elsewhere in the class",
                    hint="take the lock, or suppress with a justification "
                    "if this path is single-threaded by construction",
                )


# ------------------------------------------------- protocol invariants


_PROTOCOL_SUFFIX = "rmi/protocol.py"
_FRAMING_SUFFIX = "transport/framing.py"
_TAGS_SUFFIX = "serde/tags.py"
_PLANS_SUFFIX = "serde/plans.py"
_READER_SUFFIX = "serde/reader.py"
_CODEGEN_SUFFIX = "serde/codegen.py"
_SCHEMA_SUFFIX = "serde/schema.py"


def _load_counterpart(
    project: ProjectModel, anchor: ModuleModel, suffix: str
) -> Optional[ModuleModel]:
    """Find the sibling protocol source belonging to *anchor*'s tree.

    Resolution order: a scanned module under the same package root
    (…/rmi/protocol.py → …/<suffix>), then any scanned module with the
    suffix, then the file on disk beside the anchor. Keeping same-root
    matches first lets a fixture copy of the protocol trio be checked
    against *itself*, not against the real sources."""
    anchor_path = anchor.path.replace("\\", "/")
    root = anchor_path[: -len(_PROTOCOL_SUFFIX)]
    sibling = project.module_with_suffix(root + suffix)
    if sibling is not None:
        return sibling
    module = project.module_with_suffix(suffix)
    if module is not None:
        return module
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(anchor.path)))
    candidate = os.path.join(package_root, *suffix.split("/"))
    if os.path.isfile(candidate):
        try:
            with open(candidate, "r", encoding="utf-8") as handle:
                return build_module(candidate, handle.read())
        except (OSError, SyntaxError):
            return None
    return None


def _dict_literal_values(
    module: ModuleModel, name: str
) -> Optional[Tuple[ast.Dict, List[int]]]:
    node = module.module_assigns.get(name)
    if not isinstance(node, ast.Dict):
        return None
    values = [
        v.value
        for v in node.values
        if isinstance(v, ast.Constant) and isinstance(v.value, int)
    ]
    return node, values


@rule(
    "NRMI032",
    "protocol-invariant-drift",
    FAMILY_RUNTIME,
    Severity.ERROR,
    scope="project",
)
def protocol_invariant_drift(project: ProjectModel) -> Iterable[Finding]:
    """Cross-file consistency of the wire constants. Runs once per
    ``rmi/protocol.py`` in the scanned set (so a fixture tree is checked
    independently of the real one); counterpart modules are pulled from
    the same tree, the scan, or disk — in that order."""
    for protocol in list(project.modules):
        if protocol.path.replace("\\", "/").endswith(_PROTOCOL_SUFFIX):
            yield from _check_protocol_tree(project, protocol)


def _check_protocol_tree(
    project: ProjectModel, protocol: ModuleModel
) -> Iterable[Finding]:
    env = const_env(protocol)

    # 1. Wire-id tables must be injective (ids are decoded back to names).
    for table in ("_POLICY_TO_ID", "_MODE_TO_ID"):
        found = _dict_literal_values(protocol, table)
        if found is None:
            continue
        node, values = found
        duplicates = sorted({v for v in values if values.count(v) > 1})
        if duplicates:
            yield protocol_invariant_drift.at(
                protocol.path,
                node,
                f"{table} maps two entries to the same wire id(s) "
                f"{duplicates}: decoding cannot invert it",
                hint="assign each policy/mode a distinct id",
            )

    # 2. Op/Status enum values must be unique.
    for enum_name in ("Op", "Status"):
        cls = protocol.class_named(enum_name)
        if cls is None:
            continue
        values = enum_values(cls)
        dupes = sorted(
            {v for v in values.values() if list(values.values()).count(v) > 1}
        )
        if dupes:
            yield protocol_invariant_drift.at(
                protocol.path,
                cls.node,
                f"enum {enum_name} reuses wire value(s) {dupes}",
                hint="every operation/status needs a distinct byte",
            )

    # 3. Capability bits: distinct powers of two, one byte, clear of the
    #    ship_map flag bit.
    ship_map = env.get("_FLAG_SHIP_MAP")
    cap_bits: Dict[str, int] = {
        name: value
        for name, value in env.items()
        if name.startswith("CAP_") and isinstance(value, int)
    }
    used = ship_map if isinstance(ship_map, int) else 0
    for name in sorted(cap_bits):
        bit = cap_bits[name]
        node = protocol.module_assigns.get(name)
        where = node if node is not None else 1
        if bit <= 0 or bit > 0xFF or (bit & (bit - 1)) != 0:
            yield protocol_invariant_drift.at(
                protocol.path,
                where,
                f"capability {name} = {bit:#x} is not a single flag bit "
                "inside the one-byte flags field",
                hint="use a distinct power of two below 0x100",
            )
        elif used & bit:
            yield protocol_invariant_drift.at(
                protocol.path,
                where,
                f"capability {name} = {bit:#x} collides with an "
                "already-assigned flag bit",
                hint="pick an unused bit of the flags byte",
            )
        else:
            used |= bit

    # 4. Pipelined framing auto-detect: the magic, read as a length
    #    header, must exceed MAX_FRAME_BYTES or a legal plain frame could
    #    be mistaken for a pipelined preamble.
    framing = _load_counterpart(project, protocol, _FRAMING_SUFFIX)
    if framing is not None:
        fenv = const_env(framing)
        magic = fenv.get("PIPELINE_MAGIC")
        limit = fenv.get("MAX_FRAME_BYTES")
        magic_node = framing.module_assigns.get("PIPELINE_MAGIC")
        if isinstance(magic, bytes) and len(magic) != 4:
            yield protocol_invariant_drift.at(
                framing.path,
                magic_node or 1,
                f"PIPELINE_MAGIC must be exactly 4 bytes (got {len(magic)}): "
                "it doubles as a u32 length header during auto-detect",
                hint="keep the magic 4 bytes long",
            )
        if (
            isinstance(magic, bytes)
            and len(magic) == 4
            and isinstance(limit, int)
            and int.from_bytes(magic, "big") <= limit
        ):
            yield protocol_invariant_drift.at(
                framing.path,
                magic_node or 1,
                "PIPELINE_MAGIC decodes to a frame length within "
                "MAX_FRAME_BYTES: framing auto-detect can misread a legal "
                "plain frame as a pipelined preamble",
                hint="raise the magic's leading byte or lower MAX_FRAME_BYTES",
            )
        preamble = fenv.get("PIPELINE_PREAMBLE")
        version = fenv.get("PIPELINE_VERSION")
        if (
            isinstance(magic, bytes)
            and isinstance(version, bytes)
            and isinstance(preamble, bytes)
            and preamble != magic + version
        ):
            yield protocol_invariant_drift.at(
                framing.path,
                framing.module_assigns.get("PIPELINE_PREAMBLE") or 1,
                "PIPELINE_PREAMBLE is not PIPELINE_MAGIC + PIPELINE_VERSION",
                hint="derive the preamble from the two constants",
            )

    # 5. The tag bytes plans.py (``_TAG_*``), reader.py (``_T_*``), and
    #    codegen.py (both prefixes: generated source interpolates the
    #    writer-side AND reader-side literals) inline must mirror
    #    serde/tags.py.
    tags = _load_counterpart(project, protocol, _TAGS_SUFFIX)
    if tags is not None:
        tag_cls = tags.class_named("Tag")
        if tag_cls is not None:
            canonical = enum_values(tag_cls)
            for suffix, prefix in (
                (_PLANS_SUFFIX, "_TAG_"),
                (_READER_SUFFIX, "_T_"),
                (_CODEGEN_SUFFIX, "_TAG_"),
                (_CODEGEN_SUFFIX, "_T_"),
            ):
                mirror = _load_counterpart(project, protocol, suffix)
                if mirror is None:
                    continue
                menv = const_env(mirror)
                for name in sorted(menv):
                    if not name.startswith(prefix):
                        continue
                    tag_name = name[len(prefix):]
                    mirrored = menv[name]
                    expected = canonical.get(tag_name)
                    node = mirror.module_assigns.get(name)
                    if expected is None:
                        yield protocol_invariant_drift.at(
                            mirror.path,
                            node or 1,
                            f"constant {name} mirrors no Tag.{tag_name} "
                            "member in serde/tags.py",
                            hint="rename the constant to match a Tag member",
                        )
                    elif mirrored != expected:
                        yield protocol_invariant_drift.at(
                            mirror.path,
                            node or 1,
                            f"constant {name} = {mirrored:#x} drifted from "
                            f"Tag.{tag_name} = {expected:#x} in serde/tags.py",
                            hint="keep the inlined tag bytes byte-identical "
                            "to the Tag enum",
                        )

    # 6. Session-cached wire schemas: the schema-mode class-key
    #    discriminators and the stream-header flag bit.
    schema = _load_counterpart(project, protocol, _SCHEMA_SUFFIX)
    if schema is not None:
        senv = const_env(schema)
        inline = senv.get("CKEY_INLINE")
        sdef = senv.get("CKEY_SCHEMA_DEF")
        sref = senv.get("CKEY_SCHEMA_REF")
        base = senv.get("CKEY_STREAM_BASE")

        def _at(name: str):
            return schema.module_assigns.get(name) or 1

        if isinstance(inline, int) and inline != 0:
            # Key 0 is "inline descriptor" in BOTH encodings; anything
            # else and a legacy stream's first class key changes meaning.
            yield protocol_invariant_drift.at(
                schema.path,
                _at("CKEY_INLINE"),
                f"CKEY_INLINE = {inline} but the classic class-key "
                "encoding reserves 0 for inline descriptors",
                hint="keep CKEY_INLINE == 0",
            )
        discriminators = {
            name: value
            for name, value in (
                ("CKEY_INLINE", inline),
                ("CKEY_SCHEMA_DEF", sdef),
                ("CKEY_SCHEMA_REF", sref),
            )
            if isinstance(value, int)
        }
        seen: Dict[int, str] = {}
        for name, value in discriminators.items():
            if value in seen:
                yield protocol_invariant_drift.at(
                    schema.path,
                    _at(name),
                    f"{name} = {value} collides with {seen[value]}: the "
                    "decoder cannot tell the two class-key forms apart",
                    hint="give every CKEY_* discriminator a distinct value",
                )
            else:
                seen[value] = name
        if isinstance(base, int) and any(
            base <= value for value in discriminators.values()
        ):
            yield protocol_invariant_drift.at(
                schema.path,
                _at("CKEY_STREAM_BASE"),
                f"CKEY_STREAM_BASE = {base} overlaps a CKEY_* "
                "discriminator: stream back-references would shadow "
                "schema defs/refs",
                hint="keep CKEY_STREAM_BASE above every discriminator",
            )
        flag = senv.get("STREAM_FLAG_SCHEMA_CACHE")
        if isinstance(flag, int) and (
            flag <= 0 or flag > 0xFF or (flag & (flag - 1)) != 0
        ):
            yield protocol_invariant_drift.at(
                schema.path,
                _at("STREAM_FLAG_SCHEMA_CACHE"),
                f"STREAM_FLAG_SCHEMA_CACHE = {flag:#x} is not a single "
                "flag bit inside the stream header's one-byte flags field",
                hint="use a distinct power of two below 0x100",
            )


# ------------------------------------------- net-loop blocking discipline


#: Callables that block by design: executing a request via the dispatcher,
#: sleeping, or the blocking frame-read helpers (each loops in ``recv``
#: until a full frame arrives — unbounded waiting on peer bytes).
_BLOCKING_CALLABLES = frozenset(
    {
        "call_handler",
        "read_frame",
        "read_frame_body",
        "read_frame_corr",
        "recv_exact",
    }
)

#: Method names that mean a blocking wait when invoked on a queue-like
#: receiver (one whose name mentions queue/job); ``wait``/``join`` block
#: on any receiver (events, conditions, threads).
_BLOCKING_QUEUE_METHODS = frozenset({"get", "put", "pop"})
_BLOCKING_ANY_RECEIVER = frozenset({"wait", "join"})


def _self_method_calls(method_node: ast.AST, known: Set[str]) -> Set[str]:
    """Names of same-class methods invoked as ``self.<name>(...)``."""
    called: Set[str] = set()
    for node in ast.walk(method_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and node.func.attr in known
        ):
            called.add(node.func.attr)
    return called


def _calls_selector_select(method_node: ast.AST) -> bool:
    """True when the method calls ``self.<selector>.select(...)``."""
    for node in ast.walk(method_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "select"
            and dotted_name(node.func.value).startswith("self.")
        ):
            return True
    return False


def _blocking_call_reason(node: ast.Call) -> Optional[str]:
    """Why this call blocks, or None when it is allowed on the net thread."""
    name = dotted_name(node.func)
    if name == "time.sleep" or name == "sleep":
        return "time.sleep (stalls the whole event loop)"
    callee = last_component(name)
    if callee in _BLOCKING_CALLABLES:
        if callee == "call_handler":
            return "call_handler (dispatcher execution belongs on a worker)"
        return f"{callee} (blocking read; the net loop must parse incrementally)"
    if isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        receiver = last_component(dotted_name(node.func.value)).lower()
        if attr in _BLOCKING_ANY_RECEIVER:
            return f".{attr}() (blocking wait on the net thread)"
        if attr in _BLOCKING_QUEUE_METHODS and (
            "queue" in receiver or "job" in receiver
        ):
            return (
                f"{receiver}.{attr}() (blocking queue operation; use a "
                "non-blocking try variant)"
            )
    return None


@rule("NRMI034", "blocking-call-in-net-loop", FAMILY_RUNTIME, Severity.ERROR)
def blocking_call_in_net_loop(module: ModuleModel) -> Iterable[Finding]:
    """One net thread owns every socket of the staged server: a blocking
    call anywhere in its ``select()`` loop's reachable call graph freezes
    all connections at once. Flags dispatcher execution, sleeps, blocking
    frame reads, and blocking queue waits in any method reachable (via
    ``self.<method>()`` calls) from a method that calls
    ``self.<selector>.select(...)``. Worker-thread methods are naturally
    exempt: they are spawned as thread targets, not called."""
    for cls in module.classes:
        known = set(cls.methods)
        roots = {
            name
            for name, method in cls.methods.items()
            if _calls_selector_select(method.node)
        }
        if not roots:
            continue
        reachable = set(roots)
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            for callee in _self_method_calls(cls.methods[current].node, known):
                if callee not in reachable:
                    reachable.add(callee)
                    frontier.append(callee)
        for name in sorted(reachable):
            for node in ast.walk(cls.methods[name].node):
                if not isinstance(node, ast.Call):
                    continue
                reason = _blocking_call_reason(node)
                if reason is not None:
                    yield blocking_call_in_net_loop.at(
                        module.path,
                        node,
                        f"{cls.name}.{name} runs on the net thread "
                        f"(reachable from its selector loop) but calls "
                        f"blocking {reason}",
                        hint="hand the work to a worker thread, or use a "
                        "non-blocking variant with selector readiness",
                    )


# --------------------------------------------- ring spin-path discipline


#: Non-blocking ring/duplex probes: a loop re-invoking one of these is a
#: spin/poll wait, and everything it reaches must stay non-blocking.
#: Deliberately excludes admission helpers like ``try_push`` — a loop
#: retrying queue admission is backpressure handling, not a spin wait.
_RING_POLL_METHODS = frozenset(
    {
        "try_read_into",
        "try_write",
        "readable",
        "writable",
        "poll_ready",
        "try_recv",
        "try_send",
    }
)


def _loops_on_ring_poll(method_node: ast.AST) -> bool:
    """True when the method has a loop re-invoking a ring/duplex probe."""
    for loop in ast.walk(method_node):
        if not isinstance(loop, (ast.While, ast.For)):
            continue
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RING_POLL_METHODS
            ):
                return True
    return False


@rule("NRMI035", "blocking-call-in-ring-spin", FAMILY_RUNTIME, Severity.ERROR)
def blocking_call_in_ring_spin(module: ModuleModel) -> Iterable[Finding]:
    """The shm transport's latency rests on its spin/poll paths staying
    syscall-lean: a loop re-probing a ring (``try_read_into`` /
    ``try_write`` / ``readable`` / ``poll_ready`` ...) is a wait measured
    in microseconds, and a blocking call anywhere in its reachable call
    graph — a sleep, a blocking frame read, a blocking queue wait —
    turns every round trip into a scheduler round trip. Parking on a
    selector after declaring intent (``select.select`` on the doorbell)
    is the sanctioned slow path and is not flagged; ``sched_yield``-style
    GIL donation is invisible to this rule by construction."""
    for cls in module.classes:
        known = set(cls.methods)
        roots = {
            name
            for name, method in cls.methods.items()
            if _loops_on_ring_poll(method.node)
        }
        if not roots:
            continue
        reachable = set(roots)
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            for callee in _self_method_calls(cls.methods[current].node, known):
                if callee not in reachable:
                    reachable.add(callee)
                    frontier.append(callee)
        for name in sorted(reachable):
            for node in ast.walk(cls.methods[name].node):
                if not isinstance(node, ast.Call):
                    continue
                reason = _blocking_call_reason(node)
                if reason is not None:
                    yield blocking_call_in_ring_spin.at(
                        module.path,
                        node,
                        f"{cls.name}.{name} is on a ring spin/poll path "
                        f"but calls blocking {reason}",
                        hint="yield the core between probes and park on "
                        "the doorbell via select for the slow path",
                    )


# --------------------------------------------- borrowed-view lifetime


#: Calls that hand out a memoryview over borrowed/reserved ring memory.
_BORROW_SOURCES = frozenset(
    {"reserve", "peek_record", "recv_borrow", "recv_frame_borrow"}
)

#: Calls that end the borrow/reservation and release the view.
_BORROW_RELEASES = frozenset(
    {"consume", "consume_borrow", "commit", "abort", "abort_frame", "close"}
)


def _borrow_source_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _BORROW_SOURCES
    )


def _call_base(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return dotted_name(func.value)
    return None


def _borrowed_operand(node: ast.expr, borrowed: Dict[str, str]) -> Optional[str]:
    """The borrowed name behind *node*: a direct reference or a slice of
    one (slices share the parent's lifetime without re-exporting it)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name) and node.id in borrowed:
        return node.id
    return None


def _walk_own(func_node: ast.AST) -> Iterable[ast.AST]:
    """``ast.walk`` pruned at nested function boundaries — closures get
    their own pass from the outer module walk, so visiting them here
    would double-report every escape inside them."""
    stack = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@rule("NRMI036", "borrowed-view-escape", FAMILY_RUNTIME, Severity.ERROR)
def borrowed_view_escape(module: ModuleModel) -> Iterable[Finding]:
    """A view from ``reserve``/``peek_record``/``recv_borrow``/
    ``recv_frame_borrow`` borrows mapped ring memory the producer will
    recycle the moment the borrow ends. Three escapes are flagged per
    function: storing the view on ``self`` (it outlives the borrow
    window), returning it (the releasing call invalidates what the
    caller holds — copy with ``bytes(view)`` instead, or document the
    handoff with a suppression), and touching it after the same object's
    ``consume``/``consume_borrow``/``commit``/``abort`` in straight-line
    code (the release already freed the span). The use-after-release
    check is per-block on purpose: a branch that releases and
    immediately returns does not poison the other paths."""
    for func_node in ast.walk(module.tree):
        if not isinstance(func_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # name -> base object the borrow came from (e.g. "self._rx").
        borrowed: Dict[str, str] = {}
        for node in _walk_own(func_node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                name = node.targets[0].id
                if _borrow_source_call(node.value):
                    borrowed[name] = _call_base(node.value) or ""
                else:
                    parent = _borrowed_operand(node.value, borrowed)
                    if parent is not None and isinstance(
                        node.value, ast.Subscript
                    ):
                        borrowed[name] = borrowed[parent]
        has_source_call = any(
            _borrow_source_call(node) for node in _walk_own(func_node)
        )
        if not borrowed and not has_source_call:
            continue

        findings: List[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(
                borrowed_view_escape.at(
                    module.path,
                    node,
                    message,
                    hint="copy with bytes(view) before the borrow ends, "
                    "or keep the view's lifetime inside the "
                    "reserve/peek ... consume/commit window",
                )
            )

        for node in _walk_own(func_node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if _borrow_source_call(node.value) or (
                        _borrowed_operand(node.value, borrowed) is not None
                    ):
                        flag(
                            node,
                            f"borrowed ring view stored on self.{target.attr}"
                            " — it outlives the borrow window",
                        )
            elif isinstance(node, ast.Return) and node.value is not None:
                if _borrow_source_call(node.value):
                    flag(
                        node,
                        "borrowed ring view returned to the caller — the "
                        "borrow's release will invalidate it",
                    )
                else:
                    name = _borrowed_operand(node.value, borrowed)
                    if name is not None:
                        flag(
                            node,
                            f"borrowed ring view {name!r} returned to the "
                            "caller — the borrow's release will invalidate it",
                        )

        # Use-after-release, straight-line per block: once a statement
        # releases base B, later *sibling* statements must not touch a
        # view borrowed from B.
        def scan_block(body: List[ast.stmt]) -> None:
            released: Set[str] = set()
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # closures get their own pass
                if released:
                    for node in ast.walk(stmt):
                        if (
                            isinstance(node, ast.Name)
                            and isinstance(node.ctx, ast.Load)
                            and borrowed.get(node.id) in released
                        ):
                            flag(
                                node,
                                f"borrowed ring view {node.id!r} used after "
                                "its borrow was released",
                            )
                # Only a release at THIS block level ends the view for the
                # statements that follow it here. A release buried in a
                # sub-block (e.g. an early-return fallback branch) does
                # not dominate the siblings — that branch's own scan
                # checks its tail.
                if isinstance(stmt, (ast.Expr, ast.Assign, ast.Return)):
                    for node in ast.walk(stmt):
                        if (
                            isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr in _BORROW_RELEASES
                        ):
                            base = _call_base(node)
                            if base is not None and base in borrowed.values():
                                released.add(base)
                for _field, value in ast.iter_fields(stmt):
                    if not (isinstance(value, list) and value):
                        continue
                    if isinstance(value[0], ast.stmt):
                        scan_block(value)
                    elif isinstance(value[0], ast.excepthandler):
                        for handler in value:
                            scan_block(handler.body)

        if borrowed:
            scan_block(func_node.body)
        yield from findings
