"""Rendering lint results: human text and the stable ``--json`` schema.

The JSON shape is versioned and intentionally boring — CI and the bench
runner diff findings between revisions, so field names, ordering, and
the summary block must stay stable. Additive changes bump
``JSON_SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.engine import AnalysisResult
from repro.analysis.findings import Finding, Severity

JSON_SCHEMA_VERSION = 1


def render_text(result: AnalysisResult, verbose_suppressed: bool = False) -> str:
    lines = [finding.render() for finding in result.findings]
    if verbose_suppressed:
        lines.extend(
            f"{finding.render()} (suppressed)" for finding in result.suppressed
        )
    total = len(result.findings)
    summary = (
        f"{total} finding{'s' if total != 1 else ''} "
        f"({result.errors} error{'s' if result.errors != 1 else ''}, "
        f"{result.warnings} warning{'s' if result.warnings != 1 else ''}) "
        f"in {result.files} file{'s' if result.files != 1 else ''}"
    )
    if result.suppressed:
        summary += f"; {len(result.suppressed)} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def to_json_payload(result: AnalysisResult) -> Dict[str, Any]:
    return {
        "schema": JSON_SCHEMA_VERSION,
        "tool": "nrmi-lint",
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "summary": {
            "files": result.files,
            "findings": len(result.findings),
            "errors": result.errors,
            "warnings": result.warnings,
            "suppressed": len(result.suppressed),
            "exit_code": result.exit_code,
        },
    }


def render_json(result: AnalysisResult) -> str:
    return json.dumps(to_json_payload(result), indent=2, sort_keys=True)


# ------------------------------------------------------------------ SARIF

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVELS = {Severity.WARNING: "warning", Severity.ERROR: "error"}


def _sarif_result(finding: Finding, suppressed: bool) -> Dict[str, Any]:
    message = finding.message
    if finding.hint:
        message += f" ({finding.hint})"
    result: Dict[str, Any] = {
        "ruleId": finding.code,
        "level": _SARIF_LEVELS.get(finding.severity, "warning"),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def to_sarif_payload(result: AnalysisResult) -> Dict[str, Any]:
    """SARIF 2.1.0 — the separate CI-annotation format.

    The rule table lists every registered rule (not just the ones that
    fired) so viewers can resolve ruleIds; in-source suppressions ride
    along as ``suppressions: [{kind: inSource}]`` results. The v1
    ``--json`` schema is unaffected.
    """
    from repro.analysis.rulebase import ALL_RULES

    rules = [
        {
            "id": descriptor.code,
            "name": descriptor.name,
            "shortDescription": {"text": descriptor.name.replace("-", " ")},
            "fullDescription": {"text": descriptor.doc},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(descriptor.severity, "warning")
            },
            "properties": {"family": descriptor.family},
        }
        for descriptor in sorted(ALL_RULES, key=lambda r: r.code)
    ]
    results = [_sarif_result(f, suppressed=False) for f in result.findings]
    results.extend(_sarif_result(f, suppressed=True) for f in result.suppressed)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA_URI,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "nrmi-lint",
                        "informationUri": "https://example.invalid/nrmi-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(result: AnalysisResult) -> str:
    return json.dumps(to_sarif_payload(result), indent=2, sort_keys=True)
