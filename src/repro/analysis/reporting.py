"""Rendering lint results: human text and the stable ``--json`` schema.

The JSON shape is versioned and intentionally boring — CI and the bench
runner diff findings between revisions, so field names, ordering, and
the summary block must stay stable. Additive changes bump
``JSON_SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.engine import AnalysisResult

JSON_SCHEMA_VERSION = 1


def render_text(result: AnalysisResult, verbose_suppressed: bool = False) -> str:
    lines = [finding.render() for finding in result.findings]
    if verbose_suppressed:
        lines.extend(
            f"{finding.render()} (suppressed)" for finding in result.suppressed
        )
    total = len(result.findings)
    summary = (
        f"{total} finding{'s' if total != 1 else ''} "
        f"({result.errors} error{'s' if result.errors != 1 else ''}, "
        f"{result.warnings} warning{'s' if result.warnings != 1 else ''}) "
        f"in {result.files} file{'s' if result.files != 1 else ''}"
    )
    if result.suppressed:
        summary += f"; {len(result.suppressed)} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def to_json_payload(result: AnalysisResult) -> Dict[str, Any]:
    return {
        "schema": JSON_SCHEMA_VERSION,
        "tool": "nrmi-lint",
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "summary": {
            "files": result.files,
            "findings": len(result.findings),
            "errors": result.errors,
            "warnings": result.warnings,
            "suppressed": len(result.suppressed),
            "exit_code": result.exit_code,
        },
    }


def render_json(result: AnalysisResult) -> str:
    return json.dumps(to_json_payload(result), indent=2, sort_keys=True)
