"""``python -m repro.analysis`` — same entry point as ``nrmi-lint``."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
