"""The lint engine: collect files, build models, run rules, filter.

``analyze_paths`` is the one entry point the CLI, the CI gate test, and
ad-hoc callers share. Importing this module pulls in every ``rules_*``
module, which registers the rules as a side effect.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.model import ModuleModel, ProjectModel, build_module
from repro.analysis.rulebase import ALL_RULES, RULES_BY_CODE, Rule

# Importing the rule modules populates ALL_RULES.
from repro.analysis import rules_concurrency  # noqa: F401  (registration import)
from repro.analysis import rules_contract  # noqa: F401
from repro.analysis import rules_restore  # noqa: F401
from repro.analysis import rules_runtime  # noqa: F401
from repro.analysis import rules_serde  # noqa: F401

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hg", ".venv", "node_modules"})

#: Synthetic codes emitted by the engine itself (not rules).
PARSE_ERROR_CODE = "NRMI000"
NAKED_SUPPRESSION_CODE = "NRMI008"


@dataclass
class AnalysisResult:
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity >= Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == Severity.WARNING)

    @property
    def exit_code(self) -> int:
        """Non-zero iff at least one finding reached error severity."""
        return 1 if self.errors else 0


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Set[str] = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                collected.append(path)
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(path)
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d
                for d in dirs
                if d not in SKIP_DIRS
                and not d.endswith(".egg-info")
                and not d.startswith(".")
            )
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(root, name)
                if full not in seen:
                    seen.add(full)
                    collected.append(full)
    return sorted(collected)


def build_project(files: Sequence[str]) -> Tuple[ProjectModel, List[Finding]]:
    project = ProjectModel()
    parse_failures: List[Finding] = []
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            project.modules.append(build_module(path, source))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            parse_failures.append(
                Finding(
                    code=PARSE_ERROR_CODE,
                    message=f"cannot analyze file: {exc}",
                    path=path,
                    line=getattr(exc, "lineno", 0) or 0,
                    severity=Severity.ERROR,
                    rule="parse-error",
                    family="engine",
                )
            )
    return project, parse_failures


def _engine_findings(module: ModuleModel) -> Iterable[Finding]:
    for line in module.naked_suppressions:
        yield Finding(
            code=NAKED_SUPPRESSION_CODE,
            message="suppression comment has no justification and is "
            "ignored; write '# nrmi: disable=CODE -- <reason>'",
            path=module.path,
            line=line,
            severity=Severity.WARNING,
            rule="naked-suppression",
            family="engine",
            hint="append ' -- <why this is safe>' to the directive",
        )


def _selected_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    unknown = [
        code
        for code in list(select or []) + list(ignore or [])
        if code not in RULES_BY_CODE
        and code not in (PARSE_ERROR_CODE, NAKED_SUPPRESSION_CODE)
    ]
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(sorted(set(unknown)))}")
    rules = list(ALL_RULES)
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.code in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [r for r in rules if r.code not in dropped]
    return rules


def analyze_project(
    project: ProjectModel,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    module_findings: Optional[List[Finding]] = None,
) -> AnalysisResult:
    """Run the selected rules over an already-built project.

    *module_findings*, when given, replaces the serial per-module rule
    loop — ``analyze_paths(jobs=N)`` computes it in worker processes.
    Project-scoped rules always run here: they need the whole model.
    """
    rules = _selected_rules(select, ignore)
    raw: List[Finding] = []
    for module in project.modules:
        raw.extend(_engine_findings(module))
    if module_findings is None:
        for module in project.modules:
            for descriptor in rules:
                if descriptor.scope != "module":
                    continue
                raw.extend(descriptor.check(module))
    else:
        raw.extend(module_findings)
    for descriptor in rules:
        if descriptor.scope == "project":
            raw.extend(descriptor.check(project))

    by_path = {module.path: module for module in project.modules}
    result = AnalysisResult(files=len(project.modules))
    seen: Set[Tuple] = set()
    for finding in sorted(raw, key=Finding.sort_key):
        key = (finding.path, finding.line, finding.col, finding.code, finding.message)
        if key in seen:
            continue
        seen.add(key)
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.code, finding.line):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def _lint_chunk_worker(payload: Tuple) -> List[Finding]:
    """Run the module-scoped rules over a chunk of files.

    Executed in a worker process: rebuilds each module model from source
    (models hold AST nodes and do not pickle; `Finding` does) and returns
    the raw findings for the parent to merge, suppress, and sort. Parse
    failures are skipped here — the parent's own ``build_project`` pass
    already reported them.
    """
    chunk, select, ignore = payload
    rules = [r for r in _selected_rules(select, ignore) if r.scope == "module"]
    out: List[Finding] = []
    for path in chunk:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                module = build_module(path, handle.read())
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue
        for descriptor in rules:
            out.extend(descriptor.check(module))
    return out


def _parallel_module_findings(
    files: Sequence[str],
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
    jobs: int,
) -> Optional[List[Finding]]:
    """Module-rule findings via a process pool, or None to run serially.

    Any pool failure (sandboxes without working semaphores, broken
    workers) degrades to the serial path — parallelism is a speedup, not
    a semantic."""
    from concurrent.futures import ProcessPoolExecutor

    chunks: List[List[str]] = [[] for _ in range(jobs)]
    for index, path in enumerate(files):
        chunks[index % jobs].append(path)
    payloads = [
        (chunk, tuple(select or ()), tuple(ignore or ()))
        for chunk in chunks
        if chunk
    ]
    try:
        with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
            merged: List[Finding] = []
            for part in pool.map(_lint_chunk_worker, payloads):
                merged.extend(part)
            return merged
    except Exception:
        return None


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> AnalysisResult:
    """Lint *paths* (files and/or directory trees) and return the result.

    *jobs* > 1 fans the module-scoped rules out over that many worker
    processes (0 = one per CPU); the project model, project-scoped rules,
    suppression filtering, and the stable sort stay in the parent, so the
    output is byte-identical to a serial run.
    """
    files = collect_files(paths)
    project, parse_failures = build_project(files)
    if jobs == 0:
        jobs = os.cpu_count() or 1
    module_findings = None
    if jobs > 1 and len(files) > 1:
        # Validate selection before forking: unknown codes should raise
        # here, not surface as a silent serial fallback.
        _selected_rules(select, ignore)
        module_findings = _parallel_module_findings(
            files, select, ignore, min(jobs, len(files))
        )
    result = analyze_project(
        project, select=select, ignore=ignore, module_findings=module_findings
    )
    result.findings = sorted(
        result.findings + parse_failures, key=Finding.sort_key
    )
    return result
