"""Copy-restore hazard rules (NRMI021–NRMI023).

The paper's promise is that server-side mutations of parameters are
reproduced on the caller — *if* the chosen restore policy actually ships
them back, and *if* the mutated state stays inside the linear map. These
rules catch the ways a method silently breaks that promise: mutating
under ``@no_restore``, letting a parameter escape into server-global
state, and the classic mutable-default-argument trap.

Mutation detection runs a small forward taint walk: parameters are
tainted, and simple assignments / for-targets propagate taint, so
``for row in dataset.rows: row["flag"] = 1`` is recognised as a mutation
of ``dataset``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.model import (
    ClassModel,
    FunctionModel,
    ModuleModel,
    MUTATING_METHODS,
    dotted_name,
    last_component,
    root_name,
)
from repro.analysis.rulebase import FAMILY_RESTORE, rule


def _tainted_roots(fn: FunctionModel) -> Set[str]:
    return set(fn.params)


def _propagate_taint(fn: FunctionModel, tainted: Set[str]) -> None:
    """Fixed-point over simple aliases: ``x = param.attr``, for-targets."""
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn.node):
            sources: List[Tuple[ast.expr, ast.expr]] = []
            if isinstance(node, ast.Assign):
                sources = [(t, node.value) for t in node.targets]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                sources = [(node.target, node.iter)]
            elif isinstance(node, ast.comprehension):
                sources = [(node.target, node.iter)]
            for target, value in sources:
                value_root = root_name(value)
                if value_root is None and isinstance(value, ast.Call):
                    # enumerate(x) / zip(x, y) / iter(x): taint flows through
                    for arg in value.args:
                        value_root = value_root or root_name(arg)
                if value_root not in tainted:
                    continue
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name) and name_node.id not in tainted:
                        tainted.add(name_node.id)
                        changed = True


def _parameter_mutations(fn: FunctionModel) -> Iterable[Tuple[ast.AST, str]]:
    """(node, description) for every statement mutating tainted state."""
    tainted = _tainted_roots(fn)
    if not tainted:
        return
    _propagate_taint(fn, tainted)

    def tainted_chain(node: ast.expr) -> Optional[str]:
        # Only attribute/subscript chains count: rebinding a bare local
        # name never mutates the caller's object.
        if not isinstance(node, (ast.Attribute, ast.Subscript)):
            return None
        root = root_name(node)
        return root if root in tainted else None

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                root = tainted_chain(target)
                if root:
                    yield node, f"assigns into parameter-reachable state ({root}…)"
        elif isinstance(node, (ast.AugAssign,)):
            root = tainted_chain(node.target)
            if root:
                yield node, f"augments parameter-reachable state ({root}…)"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root = tainted_chain(target)
                if root:
                    yield node, f"deletes from parameter-reachable state ({root}…)"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                receiver = node.func.value
                root = root_name(receiver)
                if root in tainted:
                    yield (
                        node,
                        f"calls .{node.func.attr}() on parameter-reachable "
                        f"state ({root}…)",
                    )


def _remote_classes(module: ModuleModel) -> List[ClassModel]:
    """Classes whose public methods are remotely invocable: Remote
    subclasses (bound impls are Remote subclasses in every supported
    topology; the contract rules handle interface-only drift)."""
    return [cls for cls in module.classes if cls.is_remote]


def _remote_methods(module: ModuleModel) -> Iterable[Tuple[ClassModel, FunctionModel]]:
    for cls in _remote_classes(module):
        for method in cls.methods.values():
            if not method.name.startswith("_"):
                yield cls, method


@rule("NRMI021", "no-restore-mutates-param", FAMILY_RESTORE, Severity.ERROR)
def no_restore_mutates_param(module: ModuleModel) -> Iterable[Finding]:
    """A method pinned ``@no_restore`` (or ``@restore_policy("none")``)
    whose body mutates a parameter: the server-side changes are real but
    never travel back, so the caller's structure silently diverges."""
    for cls in module.classes:
        for method in cls.methods.values():
            if method.restore_policy() != "none":
                continue
            for node, description in _parameter_mutations(method):
                yield no_restore_mutates_param.at(
                    module.path,
                    node,
                    f"{cls.name}.{method.name} is @no_restore but "
                    f"{description}; the caller never sees this write",
                    hint="drop @no_restore, or pin @restore_policy('delta') "
                    "so the touched slots travel back",
                )


@rule("NRMI022", "param-escapes-server", FAMILY_RESTORE, Severity.WARNING)
def param_escapes_server(module: ModuleModel) -> Iterable[Finding]:
    """A remote method capturing a parameter into module-global state: the
    object outlives the call, outside any linear map, so later mutations
    are never restored and the server accumulates caller state."""
    module_names = set(module.module_assigns)
    for cls, method in _remote_methods(module):
        tainted = _tainted_roots(method)
        if not tainted:
            continue
        _propagate_taint(method, tainted)
        declared_global: Set[str] = set()
        for node in ast.walk(method.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in ast.walk(method.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                        and root_name(node.value) in tainted
                    ):
                        yield param_escapes_server.at(
                            module.path,
                            node,
                            f"{cls.name}.{method.name} stores parameter "
                            f"state into global {target.id!r}: it escapes "
                            "the call's linear map",
                            hint="keep per-call data on self or return it; "
                            "globals outlive the restore window",
                        )
                    elif (
                        isinstance(target, ast.Subscript)
                        and root_name(target) in module_names
                        and root_name(node.value) in tainted
                    ):
                        yield param_escapes_server.at(
                            module.path,
                            node,
                            f"{cls.name}.{method.name} stores parameter "
                            f"state into module-level {root_name(target)!r}",
                            hint="keep per-call data on self or return it; "
                            "module caches outlive the restore window",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver_root = root_name(node.func.value)
                if (
                    node.func.attr in MUTATING_METHODS
                    and receiver_root in module_names
                    and any(root_name(arg) in tainted for arg in node.args)
                ):
                    yield param_escapes_server.at(
                        module.path,
                        node,
                        f"{cls.name}.{method.name} inserts parameter state "
                        f"into module-level {receiver_root!r} via "
                        f".{node.func.attr}()",
                        hint="keep per-call data on self or return it; "
                        "module caches outlive the restore window",
                    )


@rule("NRMI023", "mutable-default-remote-method", FAMILY_RESTORE, Severity.ERROR)
def mutable_default_remote_method(module: ModuleModel) -> Iterable[Finding]:
    """A mutable default on a remote method is shared across *all* calls
    from *all* clients — worse than the local anti-pattern, it leaks one
    caller's data into another's view."""
    suspects = list(module.interface_classes())
    suspects.extend(c for c in _remote_classes(module) if c not in suspects)
    for cls in suspects:
        for method in cls.methods.values():
            if method.name.startswith("_"):
                continue
            args = method.node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if _is_mutable_literal(default):
                    yield mutable_default_remote_method.at(
                        module.path,
                        default,
                        f"remote method {cls.name}.{method.name} has a "
                        "mutable default argument shared across every call",
                        hint="default to None and construct the container "
                        "inside the method body",
                    )


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return last_component(dotted_name(node.func)) in {
            "list", "dict", "set", "bytearray", "defaultdict", "deque",
            "Counter", "OrderedDict",
        }
    return False
