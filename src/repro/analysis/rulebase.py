"""Rule plumbing: the Rule descriptor and the @rule registration decorator.

A rule is a pure function from a model to findings, wrapped with its
identity (code, name, family, default severity, scope). Module-scoped
rules run once per file; project-scoped rules run once per lint run and
may look across files (the protocol-invariant checks).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.findings import CODE_PATTERN, Finding, Severity

FAMILY_CONTRACT = "contract"
FAMILY_SERDE = "serializability"
FAMILY_RESTORE = "copy-restore"
FAMILY_RUNTIME = "runtime"
FAMILY_CONCURRENCY = "concurrency"

FAMILIES = (
    FAMILY_CONTRACT,
    FAMILY_SERDE,
    FAMILY_RESTORE,
    FAMILY_RUNTIME,
    FAMILY_CONCURRENCY,
)


@dataclass
class Rule:
    code: str
    name: str
    family: str
    severity: Severity
    scope: str  # "module" | "project"
    doc: str
    check: Callable = field(default=None, repr=False)

    def at(
        self,
        path: str,
        where,
        message: str,
        hint: str = "",
        severity: Optional[Severity] = None,
        extra=None,
    ) -> Finding:
        """Build a finding anchored at *where* (an AST node or line number)."""
        if isinstance(where, ast.AST):
            line = getattr(where, "lineno", 0)
            col = getattr(where, "col_offset", 0)
        else:
            line, col = int(where), 0
        return Finding(
            code=self.code,
            message=message,
            path=path,
            line=line,
            col=col,
            severity=severity or self.severity,
            hint=hint,
            rule=self.name,
            family=self.family,
            extra=extra,
        )


#: Global registry, populated by importing the rules_* modules.
ALL_RULES: List[Rule] = []
RULES_BY_CODE: Dict[str, Rule] = {}


def rule(code: str, name: str, family: str, severity: Severity, scope: str = "module"):
    """Register a rule function under a stable NRMI0xx code."""
    if not CODE_PATTERN.match(code):
        raise ValueError(f"malformed rule code {code!r}")
    if family not in FAMILIES:
        raise ValueError(f"unknown rule family {family!r}")
    if code in RULES_BY_CODE:
        raise ValueError(f"duplicate rule code {code}")

    def decorate(fn: Callable) -> Rule:
        descriptor = Rule(
            code=code,
            name=name,
            family=family,
            severity=severity,
            scope=scope,
            doc=(fn.__doc__ or "").strip(),
            check=fn,
        )
        ALL_RULES.append(descriptor)
        RULES_BY_CODE[code] = descriptor
        return descriptor

    return decorate
