"""Concurrency rules (NRMI041–NRMI046): shared-state race detection.

Built on the whole-program thread-role model in
:mod:`repro.analysis.project`. The family generalizes NRMI031's
per-method lock discipline to the question that actually bit during the
shm-ring hardening: *can two different thread roles reach this state,
and is there a lock both of them hold?*

* **NRMI041** — an instance field written by one role and touched by
  another with no common ``with self.<lock>:`` guard (lockset-style).
* **NRMI042** — a non-atomic read-modify-write (``x += 1``,
  check-then-set) on a cross-role field outside any lock. ``deque`` and
  the ``util`` Counter/Gauge are the sanctioned atomics and exempt.
* **NRMI043** — SPSC ring ownership: ``try_write`` reachable from more
  than one role, ``try_read_into`` from more than one role, or one role
  consuming the ring it also produces.
* **NRMI044** — a collection iterated by one role while another role
  mutates it without a common lock.
* **NRMI045** — state published by plain store after a thread
  ``start()`` inside ``__init__``, where the spawned role reads it —
  outside the ``__init__``-before-``start()`` happens-before window.
* **NRMI046** — a ``threading`` primitive that *flows* into the wire: an
  aliased local stored in a Serializable field, or a closure capturing a
  lock that is stored/returned across the boundary (NRMI011 only sees
  direct constructor stores).

NRMI041–045 are project-scoped (roles may come from an inherited net
loop in another module); NRMI046 is module-scoped flow inside one class.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.model import (
    ClassModel,
    ModuleModel,
    ProjectModel,
    dotted_name,
    last_component,
    lock_attr_names,
)
from repro.analysis.project import (
    INTERNAL_ROLES,
    ITERATE,
    MUTATE,
    READ,
    RING_CONSUMER_OPS,
    RING_PRODUCER_OPS,
    RMW,
    WRITE,
    ClassConcurrency,
    ResolvedAccess,
    concurrency_model,
)
from repro.analysis.rulebase import FAMILY_CONCURRENCY, rule


def _roles_str(roles: Iterable[str]) -> str:
    return "/".join(sorted(set(roles)))


def _cross_role(accesses: List[ResolvedAccess]) -> Optional[FrozenSet[str]]:
    """The union of roles when the accesses span ≥2 roles, at least one
    of them an internal thread role; None otherwise (single-role state,
    or purely external callers, who are assumed to serialize lifecycle
    calls themselves)."""
    roles: Set[str] = set()
    for access in accesses:
        roles |= access.roles
    if len(roles) < 2 or not (roles & INTERNAL_ROLES):
        return None
    return frozenset(roles)


def _common_locks(accesses: List[ResolvedAccess]) -> FrozenSet[str]:
    common: Optional[FrozenSet[str]] = None
    for access in accesses:
        common = access.locks if common is None else common & access.locks
    return common if common is not None else frozenset()


@rule(
    "NRMI041",
    "cross-role-unguarded-field",
    FAMILY_CONCURRENCY,
    Severity.WARNING,
    scope="project",
)
def cross_role_unguarded_field(project: ProjectModel) -> Iterable[Finding]:
    """A field written by one thread role and read or written by another,
    with no lock common to every access, is the shape of every torn-state
    bug the staged core guards against. Locksets are interprocedural: a
    helper only ever called under ``with self._lock:`` counts as guarded.
    ``__init__`` is exempt (construction happens-before sharing);
    read-modify-write sites are NRMI042's to report."""
    for cc in concurrency_model(project).classes:
        if not cc.has_multiple_roles():
            continue
        for attr, accesses in sorted(cc.field_accesses().items()):
            roles = _cross_role(accesses)
            if roles is None:
                continue
            writes = [a for a in accesses if a.kind in (WRITE, RMW)]
            if not writes:
                continue
            if _common_locks(accesses):
                continue
            plain = sorted(
                (
                    a
                    for a in writes
                    if a.kind == WRITE and not a.locks and not a.access.check_then_set
                ),
                key=lambda a: a.node.lineno,
            )
            if not plain:
                continue  # rmw/check-then-set only: NRMI042 anchors there
            anchor = plain[0]
            others = _roles_str(roles - anchor.roles) or _roles_str(roles)
            yield cross_role_unguarded_field.at(
                anchor.path,
                anchor.node,
                f"{cc.cls.name}.{attr} is written in {anchor.method} "
                f"({_roles_str(anchor.roles)} role) and touched from the "
                f"{others} role with no common lock",
                hint="guard every access with one 'with self.<lock>:', or "
                "suppress with the ordering argument that makes it safe",
            )


@rule(
    "NRMI042",
    "non-atomic-cross-role-rmw",
    FAMILY_CONCURRENCY,
    Severity.WARNING,
    scope="project",
)
def non_atomic_cross_role_rmw(project: ProjectModel) -> Iterable[Finding]:
    """``self.x += 1`` and check-then-set are read-modify-write: two
    roles interleaving between the read and the write lose updates even
    under the GIL. Fields holding the sanctioned atomics — ``deque``
    (single-op append/popleft handoff) and the ``util`` Counter/Gauge —
    are exempt; everything else needs a lock around the whole RMW."""
    for cc in concurrency_model(project).classes:
        if not cc.has_multiple_roles():
            continue
        for attr, accesses in sorted(cc.field_accesses().items()):
            if attr in cc.atomic_fields:
                continue
            roles = _cross_role(accesses)
            if roles is None:
                continue
            if _common_locks(accesses):
                continue
            for access in sorted(accesses, key=lambda a: a.node.lineno):
                if access.locks:
                    continue
                is_rmw = access.kind == RMW or (
                    access.kind == WRITE and access.access.check_then_set
                )
                if not is_rmw:
                    continue
                shape = (
                    "augmented assignment"
                    if access.kind == RMW
                    else "check-then-set"
                )
                yield non_atomic_cross_role_rmw.at(
                    access.path,
                    access.node,
                    f"{cc.cls.name}.{attr} {shape} in {access.method} "
                    f"({_roles_str(access.roles)} role) is a non-atomic "
                    f"read-modify-write on state the "
                    f"{_roles_str(roles - access.roles) or _roles_str(roles)} "
                    f"role also touches",
                    hint="hold a lock across the read and the write, or use "
                    "a sanctioned atomic (util Counter/Gauge, deque handoff)",
                )


@rule(
    "NRMI043",
    "spsc-ring-ownership",
    FAMILY_CONCURRENCY,
    Severity.ERROR,
    scope="project",
)
def spsc_ring_ownership(project: ProjectModel) -> Iterable[Finding]:
    """The shm ring is single-producer/single-consumer: its memory model
    (monotonic head/tail, release-style control writes) is only sound
    when exactly one role sits on each end. Flags ``try_write`` reachable
    from two roles, ``try_read_into`` reachable from two roles, and a
    role consuming the same ring field it produces."""
    for cc in concurrency_model(project).classes:
        producers: Dict[str, Dict[str, Tuple]] = {}
        consumers: Dict[str, Dict[str, Tuple]] = {}
        for op, roles, path in cc.ring_ops_with_roles():
            table = producers if op.op in RING_PRODUCER_OPS else consumers
            for role in roles:
                table.setdefault(op.attr, {}).setdefault(role, (op, path))
        for attr in sorted(set(producers) | set(consumers)):
            prod = producers.get(attr, {})
            cons = consumers.get(attr, {})
            for side, table in (("producer", prod), ("consumer", cons)):
                if len(table) > 1:
                    op, path = sorted(
                        table.values(), key=lambda item: item[0].node.lineno
                    )[-1]
                    yield spsc_ring_ownership.at(
                        path,
                        op.node,
                        f"ring {cc.cls.name}.{attr}: {side} API {op.op} is "
                        f"reachable from roles {_roles_str(table)} — SPSC "
                        f"ownership allows exactly one {side} role",
                        hint="route the extra role's traffic through the "
                        "owning role (queue handoff), or give it its own ring",
                    )
            overlap = set(prod) & set(cons)
            for role in sorted(overlap):
                op, path = cons[role]
                yield spsc_ring_ownership.at(
                    path,
                    op.node,
                    f"ring {cc.cls.name}.{attr}: the {role} role consumes "
                    f"({op.op}) the same ring it produces — a duplex pairs "
                    f"one producer ring with a separate consumer ring",
                    hint="keep tx and rx as distinct ring fields per "
                    "direction (see transport/shm.py's _RingDuplex)",
                )


@rule(
    "NRMI044",
    "cross-role-iterate-mutate",
    FAMILY_CONCURRENCY,
    Severity.WARNING,
    scope="project",
)
def cross_role_iterate_mutate(project: ProjectModel) -> Iterable[Finding]:
    """Iterating a dict/list/set while another role mutates it raises
    ``RuntimeError: changed size during iteration`` at best and yields a
    torn snapshot at worst — deque's atomic handoff ops do not sanction
    cross-role *iteration* either. Flagged when the iterating and
    mutating accesses share no lock."""
    for cc in concurrency_model(project).classes:
        if not cc.has_multiple_roles():
            continue
        for attr, accesses in sorted(cc.field_accesses().items()):
            iters = [a for a in accesses if a.kind == ITERATE]
            mutates = [a for a in accesses if a.kind in (MUTATE, WRITE, RMW)]
            if not iters or not mutates:
                continue
            involved = iters + mutates
            roles = _cross_role(involved)
            if roles is None:
                continue
            iter_roles: Set[str] = set()
            for a in iters:
                iter_roles |= a.roles
            if _common_locks(involved):
                continue
            foreign = sorted(
                (a for a in mutates if not (a.roles <= iter_roles)),
                key=lambda a: a.node.lineno,
            )
            if not foreign:
                continue
            anchor = foreign[0]
            yield cross_role_iterate_mutate.at(
                anchor.path,
                anchor.node,
                f"{cc.cls.name}.{attr} is mutated in {anchor.method} "
                f"({_roles_str(anchor.roles)} role) while the "
                f"{_roles_str(iter_roles)} role iterates it, with no "
                f"common lock",
                hint="snapshot under a lock before iterating, or confine "
                "the collection to one role and hand off via a queue/deque",
            )


def _thread_field_targets(cc: ClassConcurrency, init_node: ast.AST) -> Dict[str, str]:
    """name → spawned self-method for Thread(...) values bound in
    ``__init__`` (covers ``self._t = Thread(target=self.x)``, locals, and
    list-comprehension worker pools)."""
    targets: Dict[str, str] = {}

    def thread_target_of(value: ast.AST) -> Optional[str]:
        for call in ast.walk(value):
            if not isinstance(call, ast.Call):
                continue
            callee = last_component(dotted_name(call.func) or "")
            if callee != "Thread":
                continue
            for kw in call.keywords:
                if kw.arg == "target":
                    target = kw.value
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr in cc.methods
                    ):
                        return target.attr
        return None

    for node in ast.walk(init_node):
        if not isinstance(node, ast.Assign):
            continue
        spawned = thread_target_of(node.value)
        if spawned is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                targets[target.id] = spawned
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                targets["self." + target.attr] = spawned
    return targets


@rule(
    "NRMI045",
    "publish-after-start",
    FAMILY_CONCURRENCY,
    Severity.WARNING,
    scope="project",
)
def publish_after_start(project: ProjectModel) -> Iterable[Finding]:
    """``__init__`` happens-before the threads it spawns — but only up to
    the ``start()`` call. A plain field store *after* ``start()`` races
    the spawned thread's first reads: there is no release/acquire edge
    left to order it. Publish before starting, hold a lock, or hand the
    value over through a queue."""
    for cc in concurrency_model(project).classes:
        entry = cc.methods.get("__init__")
        if entry is None or not entry[2]:  # inherited __init__: base reports
            continue
        module, init_fn, _own = entry
        init_node = init_fn.node
        thread_targets = _thread_field_targets(cc, init_node)
        if not thread_targets:
            continue

        def started_target(call: ast.Call) -> Optional[str]:
            func = call.func
            if not (isinstance(func, ast.Attribute) and func.attr == "start"):
                return None
            receiver = func.value
            if isinstance(receiver, ast.Name):
                # Covers loop vars too: `for t in self._workers: t.start()`
                # resolves through the field the loop iterates when the
                # name itself was never bound to a Thread.
                if receiver.id in thread_targets:
                    return thread_targets[receiver.id]
                return loop_var_targets.get(receiver.id)
            attr_key = (
                "self." + receiver.attr
                if isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                else None
            )
            if attr_key is not None:
                return thread_targets.get(attr_key)
            return None

        # Loop variables iterating a thread-holding field: `for t in
        # self._workers:` makes `t.start()` start that pool.
        loop_var_targets: Dict[str, str] = {}
        for node in ast.walk(init_node):
            if isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                iter_attr = (
                    "self." + node.iter.attr
                    if isinstance(node.iter, ast.Attribute)
                    and isinstance(node.iter.value, ast.Name)
                    and node.iter.value.id == "self"
                    else None
                )
                if iter_attr in thread_targets:
                    loop_var_targets[node.target.id] = thread_targets[iter_attr]

        # Earliest start line per spawned target.
        started_at: Dict[str, int] = {}
        for node in ast.walk(init_node):
            if isinstance(node, ast.Call):
                spawned = started_target(node)
                if spawned is not None:
                    started_at[spawned] = min(
                        started_at.get(spawned, node.lineno), node.lineno
                    )
        if not started_at:
            continue

        reads_by_target = {
            spawned: cc.fields_read_by(cc.reachable_from(spawned))
            for spawned in started_at
        }
        init_scan = cc.scans.get("__init__")
        if init_scan is None:
            continue
        for access in sorted(init_scan.accesses, key=lambda a: a.node.lineno):
            if access.kind != WRITE or access.locks:
                continue
            for spawned, start_line in sorted(started_at.items()):
                if access.node.lineno <= start_line:
                    continue
                if access.attr not in reads_by_target[spawned]:
                    continue
                yield publish_after_start.at(
                    module.path,
                    access.node,
                    f"{cc.cls.name}.__init__ stores self.{access.attr} after "
                    f"starting the {spawned} thread, which reads it — the "
                    f"construction happens-before edge ended at start()",
                    hint="assign before start(), guard the store with the "
                    "lock the reader takes, or hand the value via a queue",
                )
                break  # one finding per store, not one per thread


# --------------------------------------------------- wire-crossing locks


_PRIMITIVE_CONSTRUCTORS = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "Thread",
        "Timer",
    }
)


def _lock_locals(method_node: ast.AST) -> Set[str]:
    """Local names bound to a threading-primitive constructor result."""
    out: Set[str] = set()
    for node in ast.walk(method_node):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        callee = last_component(dotted_name(node.value.func) or "")
        if callee not in _PRIMITIVE_CONSTRUCTORS:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def _closure_locals(method_node: ast.AST) -> Dict[str, ast.AST]:
    """Local names bound to a lambda or nested def within the method."""
    out: Dict[str, ast.AST] = {}
    for node in ast.walk(method_node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = node.value
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not method_node:
                out[node.name] = node
    return out


def _captures_primitive(
    closure: ast.AST, lock_locals: Set[str], lock_attrs: Set[str]
) -> Optional[str]:
    """A description of the captured primitive, or None."""
    body = closure.body if isinstance(closure, ast.Lambda) else closure
    for node in ast.walk(body if isinstance(body, ast.AST) else closure):
        if isinstance(node, ast.Name) and node.id in lock_locals:
            return f"local threading primitive {node.id!r}"
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in lock_attrs
        ):
            return f"self.{node.attr} (a lock attribute)"
    return None


@rule("NRMI046", "lock-crosses-the-wire", FAMILY_CONCURRENCY, Severity.ERROR)
def lock_crosses_the_wire(module: ModuleModel) -> Iterable[Finding]:
    """NRMI011 catches ``self.f = Lock()`` by constructor shape; this
    rule follows the *flow* it misses: a primitive aliased through a
    local before the store, and closures that capture a lock and then
    cross the wire — stored in a Serializable field, or returned from a
    Remote method (replies are serialized too). A thread primitive is
    process-local by definition: on the far side it is garbage."""
    for cls in module.classes:
        serializable = cls.is_serializable
        remote = cls.is_remote
        if not (serializable or remote):
            continue
        transient = cls.transient_names()
        lock_attrs = lock_attr_names(cls)
        for method in cls.methods.values():
            lock_locals = _lock_locals(method.node)
            closures = _closure_locals(method.node)
            capturing = {
                name: (closure, _captures_primitive(closure, lock_locals, lock_attrs))
                for name, closure in closures.items()
            }
            for node in ast.walk(method.node):
                if serializable and isinstance(node, ast.Assign):
                    for target in node.targets:
                        field_name = _field_of(target)
                        if field_name is None or field_name in transient:
                            continue
                        value = node.value
                        if isinstance(value, ast.Name) and value.id in lock_locals:
                            yield lock_crosses_the_wire.at(
                                module.path,
                                node,
                                f"field {cls.name}.{field_name} receives a "
                                f"threading primitive through local "
                                f"{value.id!r} — it cannot cross the wire",
                                hint="declare the field __nrmi_transient__ "
                                "and rebuild it in __nrmi_resolve__",
                            )
                        elif isinstance(value, ast.Name) and value.id in capturing:
                            _closure, captured = capturing[value.id]
                            if captured is not None:
                                yield lock_crosses_the_wire.at(
                                    module.path,
                                    node,
                                    f"field {cls.name}.{field_name} stores a "
                                    f"closure capturing {captured}; "
                                    f"serializing it ships the lock",
                                    hint="store plain data; rebuild "
                                    "callbacks on the receiving side",
                                )
                if remote and isinstance(node, ast.Return) and node.value is not None:
                    value = node.value
                    closure_node: Optional[ast.AST] = None
                    if isinstance(value, ast.Lambda):
                        closure_node = value
                    elif isinstance(value, ast.Name) and value.id in closures:
                        closure_node = closures[value.id]
                    if closure_node is None:
                        continue
                    captured = _captures_primitive(
                        closure_node, lock_locals, lock_attrs
                    )
                    if captured is not None:
                        yield lock_crosses_the_wire.at(
                            module.path,
                            node,
                            f"{cls.name}.{method.name} returns a closure "
                            f"capturing {captured}: the reply serializer "
                            f"will try to ship it to the caller",
                            hint="return plain data; keep locks on the "
                            "owning endpoint",
                        )


def _field_of(target: ast.AST) -> Optional[str]:
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None
