"""Single-producer/single-consumer byte rings over a shared buffer.

The shared-memory transport (:mod:`repro.transport.shm`) carries the
framed byte stream over two of these rings — one per direction — mapped
into both processes. Each ring is a power-of-two data area plus a small
control block:

```
ctrl (256 bytes, one cache line per word)          data (capacity bytes)
┌────────────┬────────────┬──────────────┬──────────────┐ ┌───────────┐
│ tail  u64  │ head  u64  │ consumer-    │ producer-    │ │ records…  │
│ (producer) │ (consumer) │ waiting  u32 │ waiting  u32 │ │           │
│ @0         │ @64        │ @128         │ @192         │ │           │
└────────────┴────────────┴──────────────┴──────────────┘ └───────────┘
```

``tail`` and ``head`` are monotonically increasing byte offsets; the
actual position is ``offset & (capacity - 1)``. The producer writes only
``tail``, the consumer writes only ``head``, and each lives on its own
cache line so the two sides never false-share. Data moves in *records* —
``u32 length`` + 4 reserved bytes + payload, rounded up to 8 bytes so
every record header lands 8-aligned. A record never straddles the end of
the buffer: when the remaining contiguous span is too small the producer
plants a 4-byte *wrap marker* (length ``0xFFFFFFFF``) and continues at
offset zero, so payload copies are always one contiguous
``memoryview`` slice assignment (a single ``memcpy``), never split.

Publication discipline mirrors release/acquire in *program order*: the
producer stores the payload and record header before publishing the new
``tail``, and the consumer copies the payload out before publishing the
new ``head``. Pure Python has no memory fences, so how much of that
order the other side actually observes is platform-dependent:

* **Same process** (threads): the GIL serializes the interpreter-level
  stores — a counter is never observable ahead of the bytes it covers.
  This is the fully supported mode.
* **Cross-process over a shared ``mmap``**: each GIL orders only its own
  process. On x86-64 (TSO) the store-store order above is preserved by
  the hardware, so publication stays safe; on weakly-ordered CPUs
  (aarch64 — Apple Silicon, Graviton) payload/header stores may become
  visible *after* the published ``tail``, and the flag handshake below
  is a Dekker-style store→load pattern that is unordered even on x86.
  The consumer therefore validates every record length it loads
  (:meth:`RingConsumer.try_read_into` raises ``OSError(EIO)`` on a torn
  or impossible value instead of consuming garbage), and the transport
  layer bounds every park with a timeout re-check
  (:data:`repro.transport.shm.PARK_BACKSTOP_SECONDS`) so a lost wakeup
  costs bounded latency, never a hang. Neither turns weak ordering into
  release/acquire — cross-process use on weakly-ordered CPUs remains
  best-effort, detected rather than prevented.

The waiting flags implement the doorbell protocol without hot-path
syscalls: a side that is about to park sets its flag, re-checks the ring,
and only then sleeps on the doorbell fd; the opposite side sends a
doorbell byte only when it observes the flag set. Byte buffering in the
doorbell socket means a doorbell that was *sent* is never lost; the
backstop above covers the one that was never sent because the flag
store and the ring load crossed.

Records are transport chunks, not message boundaries: a frame larger
than the free contiguous span is split across records and the consumer
just concatenates payloads — both sides see one ordered byte stream.

Besides the copying ``try_write``/``try_read_into`` pair, both sides
expose a zero-copy surface over the same record format:

* producer: :meth:`RingProducer.reserve` hands out a writable
  ``memoryview`` over the next record's payload span (wrap markers and
  header alignment already handled), :meth:`RingProducer.commit`
  publishes the bytes the caller wrote in place, and
  :meth:`RingProducer.abort` rolls the reservation back without
  publishing anything — a torn record is impossible because the length
  header is written only at commit time, after the payload.
* consumer: :meth:`RingConsumer.peek_record` borrows the next pending
  record's payload as a read-only ``memoryview`` without moving
  ``head``; :meth:`RingConsumer.consume` releases the borrow and frees
  the span.

View lifetime is the caller's contract: a reserved or borrowed view is
invalidated (released) by the commit/abort/consume that ends it, and
every view must be dead before the backing segment's ``detach``/close —
the same BufferError containment discipline the shm transport applies
to its segment teardown.
"""

from __future__ import annotations

import errno
import os
import struct
import time

__all__ = [
    "CTRL_BYTES",
    "RECORD_HEADER",
    "RING_ALIGN",
    "WRAP_MARKER",
    "RingConsumer",
    "RingProducer",
    "consumer_view",
    "init_ring",
    "producer_view",
    "ring_region_size",
    "yield_cpu",
]

if hasattr(os, "sched_yield"):
    yield_cpu = os.sched_yield
else:  # pragma: no cover - POSIX always has sched_yield

    def yield_cpu() -> None:
        """Donate the rest of the timeslice without leaving the runqueue."""
        time.sleep(0)

#: Control block size; each control word sits on its own 64-byte line.
CTRL_BYTES = 256
#: Bytes of header before each record's payload (u32 length + 4 reserved).
RECORD_HEADER = 8
#: Record positions stay aligned to this, so a wrap marker always fits.
RING_ALIGN = 8
#: Length-field value marking "skip to the start of the buffer".
WRAP_MARKER = 0xFFFFFFFF

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

_OFF_TAIL = 0
_OFF_HEAD = 64
_OFF_CONSUMER_WAITING = 128
_OFF_PRODUCER_WAITING = 192


def ring_region_size(capacity: int) -> int:
    """Bytes one ring occupies in the shared buffer (ctrl + data)."""
    return CTRL_BYTES + capacity


def _check_capacity(capacity: int) -> None:
    if capacity < 64 or capacity & (capacity - 1):
        raise ValueError(f"ring capacity must be a power of two >= 64: {capacity}")


def init_ring(buffer, offset: int, capacity: int) -> None:
    """Zero a ring's control block (fresh mmap segments arrive zeroed;
    this makes reusing a buffer in tests explicit)."""
    _check_capacity(capacity)
    view = memoryview(buffer)
    view[offset : offset + CTRL_BYTES] = bytes(CTRL_BYTES)
    view.release()


class _RingSide:
    """State both sides share: views over the ctrl/data regions."""

    def __init__(self, buffer, offset: int, capacity: int) -> None:
        _check_capacity(capacity)
        base = memoryview(buffer)
        if base.format != "B":
            base = base.cast("B")
        self._base = base
        self._ctrl = base[offset : offset + CTRL_BYTES]
        self._data = base[offset + CTRL_BYTES : offset + CTRL_BYTES + capacity]
        self._cap = capacity
        self._mask = capacity - 1

    @property
    def capacity(self) -> int:
        return self._cap

    def detach(self) -> None:
        """Release the buffer views so the backing mmap can close."""
        self._ctrl.release()
        self._data.release()
        self._base.release()


class RingProducer(_RingSide):
    """The writing side. Exactly one producer per ring."""

    def __init__(self, buffer, offset: int, capacity: int) -> None:
        super().__init__(buffer, offset, capacity)
        # Local tail mirror: authoritative, since only we advance it.
        self._tail = _U64.unpack_from(self._ctrl, _OFF_TAIL)[0]
        # In-flight reservation (zero-copy writer). The length header is
        # only written at commit, so an aborted reservation leaves no
        # trace and a crashed writer never publishes a torn record.
        self._res_len = 0
        self._res_view = None

    # ------------------------------------------------------------ writing

    def try_write(self, data) -> int:
        """Append as much of *data* as currently fits; returns the byte
        count accepted (0 when the ring is full). Never blocks."""
        if self._res_view is not None:
            raise RuntimeError("ring write while a reservation is active")
        view = data if isinstance(data, memoryview) else memoryview(data)
        if view.format != "B":
            view = view.cast("B")
        remaining = len(view)
        total = 0
        ctrl, ring = self._ctrl, self._data
        cap, mask = self._cap, self._mask
        while remaining:
            tail = self._tail
            head = _U64.unpack_from(ctrl, _OFF_HEAD)[0]
            free = cap - (tail - head)
            if free < RECORD_HEADER + RING_ALIGN:
                break
            pos = tail & mask
            till_end = cap - pos
            if till_end < RECORD_HEADER + RING_ALIGN:
                # Not even a minimal record fits before the edge: plant
                # the wrap marker (the 8-byte stub always holds it) and
                # restart at offset zero — if the wrapped ring still has
                # room for a record.
                if free - till_end < RECORD_HEADER + RING_ALIGN:
                    break
                _U32.pack_into(ring, pos, WRAP_MARKER)
                tail += till_end
                _U64.pack_into(ctrl, _OFF_TAIL, tail)
                self._tail = tail
                continue
            span = min(till_end, free)
            room = ((span - RECORD_HEADER) // RING_ALIGN) * RING_ALIGN
            chunk = room if remaining > room else remaining
            base = pos + RECORD_HEADER
            ring[base : base + chunk] = view[total : total + chunk]
            _U32.pack_into(ring, pos, chunk)
            # Publish *after* payload and header are in place.
            tail += RECORD_HEADER + ((chunk + RING_ALIGN - 1) & ~(RING_ALIGN - 1))
            _U64.pack_into(ctrl, _OFF_TAIL, tail)
            self._tail = tail
            total += chunk
            remaining -= chunk
        return total

    # ------------------------------------------------- zero-copy writing

    def reserve(self, nbytes: int):
        """Reserve writable payload space for one in-place record.

        Returns a writable ``memoryview`` over up to *nbytes* contiguous
        payload bytes (the grant may be smaller: it is clipped to the
        largest 8-aligned span that fits before the buffer edge and the
        consumer's head), or ``None`` when not even a minimal record
        fits. Wrap markers are planted exactly as :meth:`try_write`
        would — publishing a skip is harmless before an abort because
        the consumer just fast-forwards over it.

        The reservation must be ended with :meth:`commit` or
        :meth:`abort`; both invalidate the returned view. Exactly one
        reservation may be active at a time, and :meth:`try_write` is
        rejected while one is (it would trample the reserved span).
        """
        if self._res_view is not None:
            raise RuntimeError("ring reservation already active")
        if nbytes <= 0:
            raise ValueError(f"reserve needs a positive size: {nbytes}")
        ctrl, ring = self._ctrl, self._data
        cap, mask = self._cap, self._mask
        while True:
            tail = self._tail
            head = _U64.unpack_from(ctrl, _OFF_HEAD)[0]
            free = cap - (tail - head)
            if free < RECORD_HEADER + RING_ALIGN:
                return None
            pos = tail & mask
            till_end = cap - pos
            if till_end < RECORD_HEADER + RING_ALIGN:
                if free - till_end < RECORD_HEADER + RING_ALIGN:
                    return None
                _U32.pack_into(ring, pos, WRAP_MARKER)
                tail += till_end
                _U64.pack_into(ctrl, _OFF_TAIL, tail)
                self._tail = tail
                continue
            span = min(till_end, free)
            room = ((span - RECORD_HEADER) // RING_ALIGN) * RING_ALIGN
            grant = room if nbytes > room else nbytes
            base = pos + RECORD_HEADER
            view = ring[base : base + grant]
            self._res_len = grant
            self._res_view = view
            return view

    def commit(self, nbytes: int) -> None:
        """Publish *nbytes* of the active reservation as one record.

        The caller has already written the payload through the reserved
        view, so the publication order is preserved: payload first, then
        the length header, then the tail. ``commit(0)`` is equivalent to
        :meth:`abort` (a zero-length record is the corrupt-stream
        sentinel and is never written). The reserved view is released —
        using it afterwards raises, by design.
        """
        if self._res_view is None:
            raise RuntimeError("commit without an active reservation")
        if nbytes < 0 or nbytes > self._res_len:
            raise ValueError(
                f"commit of {nbytes} bytes exceeds the {self._res_len}-byte grant"
            )
        self._res_view.release()
        self._res_view = None
        self._res_len = 0
        if nbytes == 0:
            return
        tail = self._tail
        _U32.pack_into(self._data, tail & self._mask, nbytes)
        tail += RECORD_HEADER + ((nbytes + RING_ALIGN - 1) & ~(RING_ALIGN - 1))
        _U64.pack_into(self._ctrl, _OFF_TAIL, tail)
        self._tail = tail

    def abort(self) -> None:
        """Roll back the active reservation without publishing anything.

        Nothing was observable to the consumer (the length header is
        only written by :meth:`commit`), so this is pure local state:
        the span is returned to the free pool and the reserved view is
        released so a leaked reference fails fast instead of scribbling
        on a future record.
        """
        if self._res_view is None:
            raise RuntimeError("abort without an active reservation")
        self._res_view.release()
        self._res_view = None
        self._res_len = 0

    def detach(self) -> None:
        if self._res_view is not None:
            self.abort()
        super().detach()

    def writable(self) -> bool:
        """Whether :meth:`try_write` could accept at least one byte now."""
        head = _U64.unpack_from(self._ctrl, _OFF_HEAD)[0]
        free = self._cap - (self._tail - head)
        pos = self._tail & self._mask
        till_end = self._cap - pos
        if till_end < RECORD_HEADER + RING_ALIGN:
            free -= till_end  # a wrap marker would eat the stub first
        return free >= RECORD_HEADER + RING_ALIGN

    def free_bytes(self) -> int:
        """Raw unreserved bytes (headers/padding not accounted)."""
        head = _U64.unpack_from(self._ctrl, _OFF_HEAD)[0]
        return self._cap - (self._tail - head)

    # ----------------------------------------------------- doorbell flags

    @property
    def peer_waiting(self) -> bool:
        """True when the consumer declared itself parked: a producer that
        just published must ring the doorbell."""
        return _U32.unpack_from(self._ctrl, _OFF_CONSUMER_WAITING)[0] != 0

    def set_waiting(self) -> None:
        """Declare this producer parked on a full ring (set before the
        final emptiness re-check, cleared after waking)."""
        _U32.pack_into(self._ctrl, _OFF_PRODUCER_WAITING, 1)

    def clear_waiting(self) -> None:
        _U32.pack_into(self._ctrl, _OFF_PRODUCER_WAITING, 0)


class RingConsumer(_RingSide):
    """The reading side. Exactly one consumer per ring."""

    def __init__(self, buffer, offset: int, capacity: int) -> None:
        super().__init__(buffer, offset, capacity)
        self._head = _U64.unpack_from(self._ctrl, _OFF_HEAD)[0]
        # Partially-consumed record: local state only — head (and thus
        # the producer's free space) advances on record boundaries.
        self._rec_pos = 0
        self._rec_remaining = 0
        self._rec_len = 0
        # Outstanding zero-copy borrow from peek_record, if any.
        self._borrow = None

    # ------------------------------------------------------------ reading

    def try_read_into(self, out, nbytes: int = 0) -> int:
        """Copy up to ``nbytes or len(out)`` pending stream bytes into
        *out*; returns the count copied (0 when empty). Never blocks."""
        if self._borrow is not None:
            raise RuntimeError("ring read while a borrow is active")
        view = out if isinstance(out, memoryview) else memoryview(out)
        if view.format != "B":
            view = view.cast("B")
        want = nbytes or len(view)
        ctrl, ring = self._ctrl, self._data
        copied = 0
        while copied < want:
            if self._rec_remaining:
                take = self._rec_remaining
                if take > want - copied:
                    take = want - copied
                src = self._rec_pos
                view[copied : copied + take] = ring[src : src + take]
                copied += take
                self._rec_pos = src + take
                self._rec_remaining -= take
                if not self._rec_remaining:
                    # Free the record's span only once fully copied out.
                    padded = (self._rec_len + RING_ALIGN - 1) & ~(RING_ALIGN - 1)
                    head = self._head + RECORD_HEADER + padded
                    _U64.pack_into(ctrl, _OFF_HEAD, head)
                    self._head = head
                continue
            head = self._head
            tail = _U64.unpack_from(ctrl, _OFF_TAIL)[0]
            if tail == head:
                break
            pos = head & self._mask
            (length,) = _U32.unpack_from(ring, pos)
            if length == WRAP_MARKER:
                head += self._cap - pos
                _U64.pack_into(ctrl, _OFF_HEAD, head)
                self._head = head
                continue
            if length == 0 or length > self._cap - RECORD_HEADER:
                # The producer never writes such a record: this is a torn
                # read of an unpublished header (cross-process on a
                # weakly-ordered CPU — see the module docstring) or a
                # trampled control block. Consuming it would desync the
                # stream; fail the connection instead.
                raise OSError(errno.EIO, "shm ring corrupt record length")
            self._rec_pos = pos + RECORD_HEADER
            self._rec_remaining = length
            self._rec_len = length
        return copied

    # ------------------------------------------------- zero-copy reading

    def peek_record(self):
        """Borrow the next pending record's payload without copying.

        Returns a ``memoryview`` over the unconsumed payload bytes of
        the record at the head of the stream (after skipping any wrap
        marker), or ``None`` when the ring is empty. The head does NOT
        advance — the producer still sees the span as occupied — until
        :meth:`consume` runs, so the bytes behind the view are stable
        for as long as the borrow is held.

        Composes with :meth:`try_read_into`: a partially copied record's
        remainder is what gets borrowed. Exactly one borrow may be
        active at a time; copying reads are rejected while one is.
        """
        if self._borrow is not None:
            raise RuntimeError("ring borrow already active")
        ctrl, ring = self._ctrl, self._data
        while not self._rec_remaining:
            head = self._head
            tail = _U64.unpack_from(ctrl, _OFF_TAIL)[0]
            if tail == head:
                return None
            pos = head & self._mask
            (length,) = _U32.unpack_from(ring, pos)
            if length == WRAP_MARKER:
                head += self._cap - pos
                _U64.pack_into(ctrl, _OFF_HEAD, head)
                self._head = head
                continue
            if length == 0 or length > self._cap - RECORD_HEADER:
                raise OSError(errno.EIO, "shm ring corrupt record length")
            self._rec_pos = pos + RECORD_HEADER
            self._rec_remaining = length
            self._rec_len = length
        src = self._rec_pos
        view = ring[src : src + self._rec_remaining]
        self._borrow = view
        return view

    def consume(self, nbytes=None) -> None:
        """End the active borrow, freeing *nbytes* of it to the producer.

        ``nbytes`` defaults to the whole borrowed span; ``consume(0)``
        releases the borrow without advancing (the bytes will be seen
        again — the copy-path fallback). The borrowed view is released,
        so any reference that escaped the borrow window fails fast
        instead of silently reading recycled ring memory.
        """
        view = self._borrow
        if view is None:
            raise RuntimeError("consume without an active borrow")
        self._borrow = None
        if nbytes is None:
            nbytes = self._rec_remaining
        elif nbytes < 0 or nbytes > self._rec_remaining:
            view.release()
            raise ValueError(
                f"consume of {nbytes} bytes exceeds the "
                f"{self._rec_remaining}-byte borrow"
            )
        view.release()
        if not nbytes:
            return
        self._rec_pos += nbytes
        self._rec_remaining -= nbytes
        if not self._rec_remaining:
            padded = (self._rec_len + RING_ALIGN - 1) & ~(RING_ALIGN - 1)
            head = self._head + RECORD_HEADER + padded
            _U64.pack_into(self._ctrl, _OFF_HEAD, head)
            self._head = head

    def detach(self) -> None:
        if self._borrow is not None:
            self.consume(0)
        super().detach()

    def pending_bytes(self) -> int:
        """Upper bound on pending stream bytes (includes record headers
        and padding still to be skipped) — cheap sizing hint for read
        buffers; the exact count comes out of :meth:`try_read_into`."""
        tail = _U64.unpack_from(self._ctrl, _OFF_TAIL)[0]
        return tail - self._head + self._rec_remaining

    def readable(self) -> bool:
        """Whether at least one stream byte is pending."""
        if self._rec_remaining:
            return True
        tail = _U64.unpack_from(self._ctrl, _OFF_TAIL)[0]
        head = self._head
        if tail == head:
            return False
        pos = head & self._mask
        (length,) = _U32.unpack_from(self._data, pos)
        if length != WRAP_MARKER:
            return True
        # Only a wrap marker published so far: data begins at offset 0.
        return tail > head + (self._cap - pos)

    # ----------------------------------------------------- doorbell flags

    @property
    def peer_waiting(self) -> bool:
        """True when the producer is parked on a full ring: a consumer
        that just freed space must ring the doorbell."""
        return _U32.unpack_from(self._ctrl, _OFF_PRODUCER_WAITING)[0] != 0

    def set_waiting(self) -> None:
        """Declare this consumer parked (or, for a selector-driven
        consumer, permanently interested in doorbell bytes)."""
        _U32.pack_into(self._ctrl, _OFF_CONSUMER_WAITING, 1)

    def clear_waiting(self) -> None:
        _U32.pack_into(self._ctrl, _OFF_CONSUMER_WAITING, 0)


def producer_view(buffer, offset: int, capacity: int) -> RingProducer:
    """The producing side of the ring at *offset* inside *buffer*."""
    return RingProducer(buffer, offset, capacity)


def consumer_view(buffer, offset: int, capacity: int) -> RingConsumer:
    """The consuming side of the ring at *offset* inside *buffer*."""
    return RingConsumer(buffer, offset, capacity)
