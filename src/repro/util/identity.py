"""Identity-keyed collections.

Graph algorithms over arbitrary user objects must key on *object identity*,
never on equality: user classes may define ``__eq__``/``__hash__`` in ways
that conflate distinct nodes (or raise), and unhashable objects (lists,
dicts) appear as graph nodes all the time. ``IdentityMap`` and
``IdentitySet`` key on ``id(obj)`` while holding a strong reference to the
object itself so the id cannot be recycled by the allocator mid-algorithm.
"""

from __future__ import annotations

from typing import Any, Generic, Iterable, Iterator, Tuple, TypeVar

V = TypeVar("V")

_MISSING = object()


class IdentityMap(Generic[V]):
    """A mapping keyed on object identity.

    Unlike ``dict``, keys never need to be hashable and two equal-but-distinct
    objects get distinct entries. Iteration order is insertion order.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        # id -> (key_object, value). Keeping key_object pins the id.
        self._entries: dict[int, Tuple[Any, V]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return id(key) in self._entries

    def __getitem__(self, key: object) -> V:
        try:
            return self._entries[id(key)][1]
        except KeyError:
            raise KeyError(f"object {type(key).__name__} id={id(key)} not in IdentityMap") from None

    def __setitem__(self, key: object, value: V) -> None:
        self._entries[id(key)] = (key, value)

    def __delitem__(self, key: object) -> None:
        try:
            del self._entries[id(key)]
        except KeyError:
            raise KeyError(f"object {type(key).__name__} id={id(key)} not in IdentityMap") from None

    def get(self, key: object, default: Any = None) -> Any:
        entry = self._entries.get(id(key), _MISSING)
        if entry is _MISSING:
            return default
        return entry[1]

    def setdefault(self, key: object, default: V) -> V:
        entry = self._entries.get(id(key), _MISSING)
        if entry is _MISSING:
            self._entries[id(key)] = (key, default)
            return default
        return entry[1]

    def pop(self, key: object, default: Any = _MISSING) -> Any:
        entry = self._entries.pop(id(key), _MISSING)
        if entry is _MISSING:
            if default is _MISSING:
                raise KeyError(f"object id={id(key)} not in IdentityMap")
            return default
        return entry[1]

    def keys(self) -> Iterator[Any]:
        for key_obj, _value in self._entries.values():
            yield key_obj

    def values(self) -> Iterator[V]:
        for _key_obj, value in self._entries.values():
            yield value

    def items(self) -> Iterator[Tuple[Any, V]]:
        for key_obj, value in self._entries.values():
            yield key_obj, value

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return f"IdentityMap({len(self)} entries)"


class IdentitySet:
    """A set keyed on object identity; members need not be hashable."""

    __slots__ = ("_entries",)

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._entries: dict[int, Any] = {}
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item: object) -> bool:
        return id(item) in self._entries

    def add(self, item: object) -> None:
        self._entries[id(item)] = item

    def discard(self, item: object) -> None:
        self._entries.pop(id(item), None)

    def remove(self, item: object) -> None:
        try:
            del self._entries[id(item)]
        except KeyError:
            raise KeyError(f"object id={id(item)} not in IdentitySet") from None

    def __iter__(self) -> Iterator[Any]:
        return iter(list(self._entries.values()))

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return f"IdentitySet({len(self)} entries)"
