"""Lightweight metrics: counters grouped into a registry.

The benchmark harness uses these to report bytes-on-wire, round trips, and
DGC behaviour alongside wall-clock time; tests use them to assert protocol
properties (e.g. "no network traffic during remote method execution").
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Tuple


class Counter:
    """A thread-safe monotonic counter with a lock-free increment path.

    Counters sit on the invocation hot path (one or more increments per
    remote call), so ``add`` must not take a lock per increment. Instead,
    each thread increments its own *cell* — a one-element list only its
    owner thread ever mutates — and ``value`` sums the cells.

    Atomicity assumption: ``cell[0] += amount`` mutates per-thread state,
    so no two threads ever race on the same cell; the only shared step is
    cell *creation*, which happens once per thread under a lock. Reads may
    miss increments that are concurrently in flight (the sum is a snapshot,
    not a barrier), but no increment is ever lost — totals are exact once
    writer threads quiesce, which is what the tests and the benchmark
    reports rely on.
    """

    __slots__ = ("name", "_cells", "_local", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._cells: List[List[int]] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    def _cell(self) -> List[int]:
        cell = [0]
        with self._lock:
            self._cells.append(cell)
        self._local.cell = cell
        return cell

    @property
    def value(self) -> int:
        with self._lock:
            return sum(cell[0] for cell in self._cells)

    def add(self, amount: int = 1) -> None:
        try:
            cell = self._local.cell
        except AttributeError:
            cell = self._cell()
        cell[0] += amount

    def reset(self) -> None:
        """Zero the counter. Callers quiesce writers first: a reset racing
        an in-flight ``add`` may keep or drop that one increment."""
        with self._lock:
            for cell in self._cells:
                cell[0] = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A thread-safe last-value metric (e.g. a breaker's current state).

    Unlike :class:`Counter`, a gauge is set, not accumulated; reads and
    writes are rare (state transitions), so a plain lock is fine.
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Distribution:
    """A thread-safe summary of observed values (count/total/min/max).

    Used for ratios and sizes where the *shape* matters more than a total —
    e.g. the fraction of linear-map slots a delta reply shipped. Cheap by
    design: four scalars under a lock, no reservoir.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = float("inf")
            self.max = float("-inf")

    def __repr__(self) -> str:
        return (
            f"Distribution({self.name}: n={self.count}, mean={self.mean:.4f})"
        )


class MetricsRegistry:
    """A named collection of counters and gauges, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._distributions: Dict[str, Distribution] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is not None:
            return counter
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = Counter(name)
                self._counters[name] = counter
            return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = Gauge(name)
                self._gauges[name] = gauge
            return gauge

    def distribution(self, name: str) -> Distribution:
        dist = self._distributions.get(name)
        if dist is not None:
            return dist
        with self._lock:
            dist = self._distributions.get(name)
            if dist is None:
                dist = Distribution(name)
                self._distributions[name] = dist
            return dist

    def snapshot(self) -> Dict[str, int]:
        """Counters and gauges flattened into one name → value view."""
        with self._lock:
            values = {name: c.value for name, c in self._counters.items()}
            values.update({name: g.value for name, g in self._gauges.items()})
            return values

    def reset_all(self) -> None:
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for gauge in self._gauges.values():
                gauge.set(0)
            for dist in self._distributions.values():
                dist.reset()

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self.snapshot().items())
