"""Lightweight metrics: counters grouped into a registry.

The benchmark harness uses these to report bytes-on-wire, round trips, and
DGC behaviour alongside wall-clock time; tests use them to assert protocol
properties (e.g. "no network traffic during remote method execution").
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Tuple


class Counter:
    """A thread-safe monotonic counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class MetricsRegistry:
    """A named collection of counters, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = Counter(name)
                self._counters[name] = counter
            return counter

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    def reset_all(self) -> None:
        with self._lock:
            for counter in self._counters.values():
                counter.reset()

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self.snapshot().items())
