"""Logging conventions for the middleware.

Every subsystem logs under the ``repro`` namespace with a stable child
name (``repro.rmi.dispatcher``, ``repro.nrmi.invocation``, ...), so a
deployment can dial verbosity per layer:

    import logging
    logging.getLogger("repro.rmi").setLevel(logging.DEBUG)

Nothing is configured by default (library rule: never touch the root
logger); :func:`enable_debug_logging` is a convenience for development.
"""

from __future__ import annotations

import logging

ROOT_LOGGER_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """A logger under the library namespace: ``get_logger("rmi.dispatcher")``."""
    if name.startswith(ROOT_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def enable_debug_logging(level: int = logging.DEBUG) -> logging.Handler:
    """Attach a stderr handler to the library namespace (development aid)."""
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
