"""Clock abstraction so lease logic is testable without sleeping."""

from __future__ import annotations

import time


class Clock:
    """Wall-clock seconds; the production default."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock(Clock):
    """A clock tests advance by hand."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds


SYSTEM_CLOCK = Clock()
