"""Binary buffer primitives used by the wire format.

``BufferWriter``/``BufferReader`` provide the primitive encodings every layer
shares: fixed-width integers, zig-zag varints (compact for the small handle
numbers that dominate linear-map traffic), length-prefixed bytes and UTF-8
strings, and IEEE-754 doubles.
"""

from __future__ import annotations

import struct

from repro.errors import WireFormatError

_F64 = struct.Struct(">d")
_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")


class BufferWriter:
    """An append-only binary buffer."""

    __slots__ = ("_chunks", "_size")

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def write_bytes(self, data: bytes) -> None:
        self._chunks.append(data)
        self._size += len(data)

    def write_u8(self, value: int) -> None:
        self.write_bytes(_U8.pack(value))

    def write_u32(self, value: int) -> None:
        self.write_bytes(_U32.pack(value))

    def write_i64(self, value: int) -> None:
        self.write_bytes(_I64.pack(value))

    def write_f64(self, value: float) -> None:
        self.write_bytes(_F64.pack(value))

    def write_varint(self, value: int) -> None:
        """Write a signed integer as a zig-zag LEB128 varint."""
        encoded = (value << 1) ^ (value >> 63) if -(1 << 63) <= value < (1 << 63) else None
        if encoded is None:
            raise WireFormatError(f"varint out of 64-bit range: {value}")
        out = bytearray()
        while True:
            byte = encoded & 0x7F
            encoded >>= 7
            if encoded:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self.write_bytes(bytes(out))

    def write_uvarint(self, value: int) -> None:
        """Write an unsigned LEB128 varint (used for lengths and handles)."""
        if value < 0:
            raise WireFormatError(f"uvarint must be non-negative: {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self.write_bytes(bytes(out))

    def write_len_bytes(self, data: bytes) -> None:
        self.write_uvarint(len(data))
        self.write_bytes(data)

    def write_str(self, text: str) -> None:
        self.write_len_bytes(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        if len(self._chunks) > 1:
            joined = b"".join(self._chunks)
            self._chunks = [joined]
        return self._chunks[0] if self._chunks else b""


class BufferReader:
    """A sequential reader over a bytes object with bounds checking."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def read_bytes(self, count: int) -> bytes:
        if count < 0 or self._pos + count > len(self._data):
            raise WireFormatError(
                f"truncated stream: need {count} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos : self._pos + count]
        self._pos += count
        return out

    def read_u8(self) -> int:
        return _U8.unpack(self.read_bytes(1))[0]

    def read_u32(self) -> int:
        return _U32.unpack(self.read_bytes(4))[0]

    def read_i64(self) -> int:
        return _I64.unpack(self.read_bytes(8))[0]

    def read_f64(self) -> float:
        return _F64.unpack(self.read_bytes(8))[0]

    def read_uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            if shift > 70:
                raise WireFormatError("uvarint too long (corrupt stream)")
            byte = self.read_u8()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    def read_varint(self) -> int:
        raw = self.read_uvarint()
        return (raw >> 1) ^ -(raw & 1)

    def read_len_bytes(self) -> bytes:
        return self.read_bytes(self.read_uvarint())

    def read_str(self) -> str:
        try:
            return self.read_len_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid UTF-8 in string: {exc}") from exc

    def expect_end(self) -> None:
        if self.remaining:
            raise WireFormatError(f"{self.remaining} trailing bytes after payload")
