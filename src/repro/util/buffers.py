"""Binary buffer primitives used by the wire format.

``BufferWriter``/``BufferReader`` provide the primitive encodings every layer
shares: fixed-width integers, zig-zag varints (compact for the small handle
numbers that dominate linear-map traffic), length-prefixed bytes and UTF-8
strings, and IEEE-754 doubles.

The implementation is allocation-conscious because these primitives sit at
the bottom of the serialization hot loop:

* the writer appends into **one growable ``bytearray``** (``struct.pack_into``
  for fixed-width values, inlined loops for varints) instead of collecting a
  list of per-primitive ``bytes`` chunks;
* the reader decodes through a **``memoryview``**, so fixed-width and varint
  reads never slice-copy — only ``read_bytes`` (which must hand out real
  ``bytes`` values) copies;
* :class:`BufferPool` recycles writer storage between calls so a steady-state
  invocation pipeline allocates no fresh write buffers.

The wire format itself is unchanged: streams produced by earlier versions of
this module decode identically.
"""

from __future__ import annotations

import struct
import threading
from typing import List, Optional, Union

from repro.errors import WireFormatError

_F64 = struct.Struct(">d")
_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")

_PAD4 = b"\x00\x00\x00\x00"
_PAD8 = _PAD4 + _PAD4

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

BytesLike = Union[bytes, bytearray, memoryview]


class BufferWriter:
    """An append-only binary buffer over a single growable ``bytearray``."""

    __slots__ = ("_buf",)

    def __init__(self, buffer: Optional[bytearray] = None) -> None:
        if buffer is None:
            self._buf = bytearray()
        else:
            # Reuse caller-provided (typically pooled) storage.
            if buffer:
                del buffer[:]
            self._buf = buffer

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def raw(self) -> bytearray:
        """The underlying bytearray (trusted fast paths append directly)."""
        return self._buf

    def write_bytes(self, data: BytesLike) -> None:
        self._buf += data

    def write_u8(self, value: int) -> None:
        self._buf.append(value)

    def write_u32(self, value: int) -> None:
        buf = self._buf
        pos = len(buf)
        buf += _PAD4
        _U32.pack_into(buf, pos, value)

    def write_i64(self, value: int) -> None:
        buf = self._buf
        pos = len(buf)
        buf += _PAD8
        _I64.pack_into(buf, pos, value)

    def write_f64(self, value: float) -> None:
        buf = self._buf
        pos = len(buf)
        buf += _PAD8
        _F64.pack_into(buf, pos, value)

    def write_varint(self, value: int) -> None:
        """Write a signed integer as a zig-zag LEB128 varint."""
        if value < _INT64_MIN or value > _INT64_MAX:
            raise WireFormatError(f"varint out of 64-bit range: {value}")
        encoded = (value << 1) ^ (value >> 63)
        buf = self._buf
        while encoded > 0x7F:
            buf.append((encoded & 0x7F) | 0x80)
            encoded >>= 7
        buf.append(encoded)

    def write_uvarint(self, value: int) -> None:
        """Write an unsigned LEB128 varint (used for lengths and handles)."""
        if value < 0:
            raise WireFormatError(f"uvarint must be non-negative: {value}")
        buf = self._buf
        while value > 0x7F:
            buf.append((value & 0x7F) | 0x80)
            value >>= 7
        buf.append(value)

    def write_len_bytes(self, data: BytesLike) -> None:
        self.write_uvarint(len(data))
        self._buf += data

    def write_str(self, text: str) -> None:
        self.write_len_bytes(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        """An immutable copy of everything written so far."""
        return bytes(self._buf)

    def view(self) -> memoryview:
        """A zero-copy view of the written bytes.

        The view pins the underlying storage: release it (or drop every
        reference) before the buffer is resized or returned to a pool.
        """
        return memoryview(self._buf)

    def reset(self) -> None:
        """Discard all written bytes, keeping the writer reusable."""
        del self._buf[:]


class SpillSink:
    """A writable ``memoryview`` destination with pooled overflow.

    Drop-in for the growable ``bytearray`` behind :class:`BufferWriter`
    on the operations the encode hot paths use — ``append`` and ``+=`` —
    but the bytes land directly in an externally supplied view (a shm
    ring reservation) instead of heap storage. When the reservation is
    exhausted the remainder spills to a (pool-acquired) ``bytearray``,
    so encoding never fails mid-object; the transport sends the spill
    as ordinary copied records after committing the in-place prefix.

    The sink never releases the view it was given — the reservation
    owner (ring producer / frame writer) controls that lifetime. It
    does own the spill buffer: :meth:`release` returns it to the pool.
    """

    __slots__ = ("_view", "_pos", "_cap", "_spill", "_pool")

    def __init__(self, view: memoryview, pool: Optional["BufferPool"] = None) -> None:
        self._view = view
        self._pos = 0
        self._cap = len(view)
        self._spill: Optional[bytearray] = None
        self._pool = pool

    def __len__(self) -> int:
        spill = self._spill
        return self._pos + (len(spill) if spill is not None else 0)

    @property
    def in_place(self) -> int:
        """Bytes written into the supplied view."""
        return self._pos

    @property
    def spill(self) -> Optional[bytearray]:
        """The overflow buffer, or None while everything fit in place."""
        return self._spill

    def _ensure_spill(self) -> bytearray:
        spill = self._spill
        if spill is None:
            pool = self._pool
            spill = bytearray() if pool is None else pool.acquire()
            self._spill = spill
        return spill

    def append(self, value: int) -> None:
        pos = self._pos
        if self._spill is None and pos < self._cap:
            self._view[pos] = value
            self._pos = pos + 1
        else:
            self._ensure_spill().append(value)

    def __iadd__(self, data: BytesLike) -> "SpillSink":
        spill = self._spill
        if spill is not None:
            spill += data
            return self
        pos = self._pos
        end = pos + len(data)
        if end <= self._cap:
            self._view[pos:end] = data
            self._pos = end
            return self
        fit = self._cap - pos
        view = data if type(data) is memoryview else memoryview(data)
        if fit:
            self._view[pos : self._cap] = view[:fit]
            self._pos = self._cap
        spill = self._ensure_spill()
        spill += view[fit:]
        return self

    def getvalue(self) -> bytes:
        """Copying snapshot of everything written (tests/debugging)."""
        out = bytes(self._view[: self._pos])
        if self._spill is not None:
            out += bytes(self._spill)
        return out

    def release(self) -> None:
        """Drop the view reference and pool the spill buffer, if any."""
        spill = self._spill
        self._spill = None
        if spill is not None and self._pool is not None:
            self._pool.release(spill)
        self._view = None  # type: ignore[assignment]


class SinkBufferWriter(BufferWriter):
    """A :class:`BufferWriter` writing through a :class:`SpillSink`.

    Every append-shaped primitive (u8, varints, ``write_bytes``) is
    inherited unchanged — the sink speaks ``append``/``+=``. Only the
    fixed-width writes are overridden: the base class extends the
    bytearray with padding and packs in place, which a view-backed sink
    cannot do, so these pack to a small immutable first.
    """

    __slots__ = ()

    def __init__(self, sink: SpillSink) -> None:
        self._buf = sink  # type: ignore[assignment]

    def write_u32(self, value: int) -> None:
        self._buf += _U32.pack(value)

    def write_i64(self, value: int) -> None:
        self._buf += _I64.pack(value)

    def write_f64(self, value: float) -> None:
        self._buf += _F64.pack(value)

    def getvalue(self) -> bytes:
        return self._buf.getvalue()

    def view(self) -> memoryview:
        raise TypeError("a sink-backed writer has no contiguous view")

    def reset(self) -> None:
        raise TypeError("a sink-backed writer is single-use")


class BufferReader:
    """A sequential reader with bounds checking.

    Accepts any contiguous bytes-like object (``bytes``, ``bytearray``,
    ``memoryview``) and reads primitives through a ``memoryview`` without
    intermediate slice copies.
    """

    __slots__ = ("_mv", "_pos", "_len", "_raw")

    def __init__(self, data: BytesLike) -> None:
        self._mv = data if type(data) is memoryview else memoryview(data)
        # Passthrough for consumers that want a bytes object (generated
        # decoders index bytes faster than a memoryview): when the input
        # already is one, no re-copy is ever needed.
        self._raw = data if type(data) is bytes else None
        self._len = len(self._mv)
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return self._len - self._pos

    def _bounds_error(self, count: int) -> WireFormatError:
        return WireFormatError(
            f"truncated stream: need {count} bytes at offset {self._pos}, "
            f"have {self._len - self._pos}"
        )

    def read_bytes(self, count: int) -> bytes:
        pos = self._pos
        if count < 0 or pos + count > self._len:
            raise self._bounds_error(count)
        self._pos = pos + count
        return bytes(self._mv[pos : pos + count])

    def read_view(self, count: int) -> memoryview:
        """Zero-copy read: a memoryview over the next *count* bytes.

        The view shares storage with (and pins) the reader's input; use it
        for payload splitting, not for values that outlive the stream.
        """
        pos = self._pos
        if count < 0 or pos + count > self._len:
            raise self._bounds_error(count)
        self._pos = pos + count
        return self._mv[pos : pos + count]

    def read_u8(self) -> int:
        pos = self._pos
        if pos >= self._len:
            raise self._bounds_error(1)
        self._pos = pos + 1
        return self._mv[pos]

    def peek_u8(self) -> int:
        """The next byte without consuming it (fast-path tag dispatch)."""
        pos = self._pos
        if pos >= self._len:
            raise self._bounds_error(1)
        return self._mv[pos]

    def read_u32(self) -> int:
        pos = self._pos
        if pos + 4 > self._len:
            raise self._bounds_error(4)
        self._pos = pos + 4
        return _U32.unpack_from(self._mv, pos)[0]

    def read_i64(self) -> int:
        pos = self._pos
        if pos + 8 > self._len:
            raise self._bounds_error(8)
        self._pos = pos + 8
        return _I64.unpack_from(self._mv, pos)[0]

    def read_f64(self) -> float:
        pos = self._pos
        if pos + 8 > self._len:
            raise self._bounds_error(8)
        self._pos = pos + 8
        return _F64.unpack_from(self._mv, pos)[0]

    def read_uvarint(self) -> int:
        mv = self._mv
        length = self._len
        pos = self._pos
        result = 0
        shift = 0
        while True:
            if pos >= length:
                raise self._bounds_error(1)
            byte = mv[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self._pos = pos
                return result
            shift += 7
            if shift > 70:
                self._pos = pos
                raise WireFormatError("uvarint too long (corrupt stream)")

    def read_varint(self) -> int:
        raw = self.read_uvarint()
        return (raw >> 1) ^ -(raw & 1)

    def read_len_bytes(self) -> bytes:
        return self.read_bytes(self.read_uvarint())

    def read_len_view(self) -> memoryview:
        """Zero-copy :meth:`read_len_bytes`: a view over the
        length-prefixed span. Shares (and pins) the reader's input —
        for transient splitting of borrowed buffers, never for values
        that outlive the stream (copy those out with ``bytes``)."""
        return self.read_view(self.read_uvarint())

    def read_str(self) -> str:
        count = self.read_uvarint()
        pos = self._pos
        if pos + count > self._len:
            raise self._bounds_error(count)
        self._pos = pos + count
        try:
            return str(self._mv[pos : pos + count], "utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid UTF-8 in string: {exc}") from exc

    def expect_end(self) -> None:
        if self._len - self._pos:
            raise WireFormatError(
                f"{self._len - self._pos} trailing bytes after payload"
            )


class ChunkedBufferWriter:
    """The pre-optimization writer: a list of per-primitive ``bytes`` chunks.

    Kept as the **legacy profile's** buffer implementation. The legacy
    profile models JDK 1.3-era serialization, whose stream layer allocated
    an object per written primitive; this class reproduces that allocation
    behaviour (one ``bytes`` object per write, a ``bytearray`` per varint, a
    final ``join``) so the legacy/modern performance gap keeps the shape the
    paper reports. Output is byte-identical to :class:`BufferWriter`.
    """

    __slots__ = ("_chunks", "_size")

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def write_bytes(self, data: BytesLike) -> None:
        if type(data) is not bytes:
            data = bytes(data)
        self._chunks.append(data)
        self._size += len(data)

    def write_u8(self, value: int) -> None:
        self.write_bytes(_U8.pack(value))

    def write_u32(self, value: int) -> None:
        self.write_bytes(_U32.pack(value))

    def write_i64(self, value: int) -> None:
        self.write_bytes(_I64.pack(value))

    def write_f64(self, value: float) -> None:
        self.write_bytes(_F64.pack(value))

    def write_varint(self, value: int) -> None:
        if value < _INT64_MIN or value > _INT64_MAX:
            raise WireFormatError(f"varint out of 64-bit range: {value}")
        encoded = (value << 1) ^ (value >> 63)
        out = bytearray()
        while True:
            byte = encoded & 0x7F
            encoded >>= 7
            if encoded:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self.write_bytes(bytes(out))

    def write_uvarint(self, value: int) -> None:
        if value < 0:
            raise WireFormatError(f"uvarint must be non-negative: {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self.write_bytes(bytes(out))

    def write_len_bytes(self, data: BytesLike) -> None:
        self.write_uvarint(len(data))
        self.write_bytes(data)

    def write_str(self, text: str) -> None:
        self.write_len_bytes(text.encode("utf-8"))

    def getvalue(self) -> bytes:
        if len(self._chunks) > 1:
            joined = b"".join(self._chunks)
            self._chunks = [joined]
        return self._chunks[0] if self._chunks else b""

    def view(self) -> memoryview:
        return memoryview(self.getvalue())

    def reset(self) -> None:
        self._chunks.clear()
        self._size = 0


class SlicingBufferReader(BufferReader):
    """The pre-optimization reader: slice-copies the input per read.

    The legacy profile's counterpart to :class:`ChunkedBufferWriter`: every
    ``read_bytes`` materializes a fresh ``bytes`` slice and fixed-width reads
    go through it, reproducing the per-read allocation cost of the legacy
    stack. Decoding semantics are identical to :class:`BufferReader`.
    """

    __slots__ = ("_data",)

    def __init__(self, data: BytesLike) -> None:
        self._data = bytes(data)
        super().__init__(self._data)

    def read_bytes(self, count: int) -> bytes:
        pos = self._pos
        if count < 0 or pos + count > self._len:
            raise self._bounds_error(count)
        out = self._data[pos : pos + count]
        self._pos = pos + count
        return out

    def read_u8(self) -> int:
        return _U8.unpack(self.read_bytes(1))[0]

    def read_u32(self) -> int:
        return _U32.unpack(self.read_bytes(4))[0]

    def read_i64(self) -> int:
        return _I64.unpack(self.read_bytes(8))[0]

    def read_f64(self) -> float:
        return _F64.unpack(self.read_bytes(8))[0]

    def read_uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            if shift > 70:
                raise WireFormatError("uvarint too long (corrupt stream)")
            byte = self.read_u8()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7

    def read_str(self) -> str:
        try:
            return self.read_len_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid UTF-8 in string: {exc}") from exc


class BufferPool:
    """A bounded, thread-safe pool of reusable ``bytearray`` write buffers.

    ``acquire`` hands out a cleared buffer (recycled when one is available);
    ``release`` returns it. Buffers that grew beyond ``max_buffer_bytes`` are
    dropped instead of pooled, so one pathological payload cannot pin memory
    forever. Releasing a buffer that still has live ``memoryview`` exports is
    safe: it is silently discarded rather than recycled.
    """

    __slots__ = ("_buffers", "_lock", "max_buffers", "max_buffer_bytes")

    def __init__(self, max_buffers: int = 16, max_buffer_bytes: int = 4 << 20) -> None:
        self._buffers: List[bytearray] = []
        self._lock = threading.Lock()
        self.max_buffers = max_buffers
        self.max_buffer_bytes = max_buffer_bytes

    def acquire(self) -> bytearray:
        with self._lock:
            if self._buffers:
                return self._buffers.pop()
        return bytearray()

    def release(self, buffer: Optional[bytearray]) -> None:
        if buffer is None or len(buffer) > self.max_buffer_bytes:
            return
        try:
            del buffer[:]
        except BufferError:
            return  # a live memoryview still pins the storage: drop it
        with self._lock:
            if len(self._buffers) < self.max_buffers:
                self._buffers.append(buffer)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffers)
