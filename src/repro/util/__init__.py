"""Shared low-level utilities: identity collections, buffers, rng, metrics."""

from repro.util.identity import IdentityMap, IdentitySet
from repro.util.buffers import BufferReader, BufferWriter
from repro.util.metrics import Counter, MetricsRegistry
from repro.util.rng import DeterministicRandom

__all__ = [
    "IdentityMap",
    "IdentitySet",
    "BufferReader",
    "BufferWriter",
    "Counter",
    "MetricsRegistry",
    "DeterministicRandom",
]
