"""Deterministic random-number helper for workload generation.

Benchmarks and property tests need reproducible "random" trees and mutation
programs: the paper's benchmarks are randomly generated, but a reproduction
must be able to regenerate the exact workload for a given seed.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRandom:
    """A seeded RNG facade exposing just the operations workloads need."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        return self._rng.random() < probability

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], count: int) -> list[T]:
        count = min(count, len(seq))
        return self._rng.sample(list(seq), count)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent child stream (stable for a given label).

        Uses CRC32, not ``hash()``: Python string hashing is randomized
        per process, and forked streams must agree across processes so a
        remote mutator and its local oracle draw identical decisions.
        """
        label_digest = zlib.crc32(label.encode("utf-8"))
        child_seed = (self.seed * 1000003 + label_digest) & 0x7FFFFFFF
        return DeterministicRandom(child_seed)
