"""Fault-injecting channel wrapper for failure testing.

Middleware must fail *cleanly*: a dropped request or response surfaces as
:class:`~repro.errors.RetryableError` at the caller, and — crucial for
copy-restore — a failed call must leave the caller's heap untouched (the
restore phase only runs on a successful reply). The test suite wraps
channels in :class:`FaultInjectingChannel` to assert exactly that, and
the chaos matrix drives every mode against the full invocation pipeline.

Failure modes:

* ``drop_request`` — the request never reaches the peer;
* ``drop_response`` — the peer processed the request but the reply is
  lost (the classic at-most-once vs at-least-once hazard: the server-side
  effect has happened; only a call-ID reply cache makes a retry safe);
* ``disconnect`` — the channel breaks permanently until ``heal()``;
* ``delay`` — ``delay_seconds`` of injected latency; when the caller's
  remaining deadline is smaller the exchange fails with
  :class:`~repro.errors.DeadlineExceededError` *without sleeping*, so
  deadline tests stay fast;
* ``corrupt_response`` — the exchange completes but payload bytes are
  flipped; the caller must surface a wire/unmarshal error with its heap
  untouched;
* ``duplicate_response`` — the request is delivered **twice** (a
  duplicated frame in flight), so the peer sees the same call ID again;
  with a reply cache the method still executes once.

Failures trigger by seeded rate (``failure_rate``), by deterministic
schedule (``fail_on_calls={3, 7}`` — 1-based indices of ``request``
invocations), or on demand (``fail_next()``).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional

from repro.errors import DeadlineExceededError, RetryableError
from repro.transport.base import Channel
from repro.util.rng import DeterministicRandom

FAILURE_MODES = (
    "drop_request",
    "drop_response",
    "disconnect",
    "delay",
    "corrupt_response",
    "duplicate_response",
)


def corrupt_payload(payload: bytes) -> bytes:
    """Flip bytes deterministically: the status byte and a middle byte.

    Flipping the status byte guarantees the receiver rejects the frame
    before *any* of it is interpreted (no partial restore); the middle
    flip exercises deeper payload validation when tests corrupt response
    bodies directly.
    """
    corrupted = bytearray(payload)
    if corrupted:
        corrupted[0] ^= 0xFF
        corrupted[len(corrupted) // 2] ^= 0xFF
    return bytes(corrupted)


class FaultInjectingChannel(Channel):
    """Wraps a channel, injecting seeded or scheduled failures."""

    def __init__(
        self,
        inner: Channel,
        failure_rate: float = 0.0,
        mode: str = "drop_request",
        seed: int = 0,
        fail_on_calls: Optional[Iterable[int]] = None,
        delay_seconds: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__()
        if mode not in FAILURE_MODES:
            raise ValueError(f"mode must be one of {FAILURE_MODES}, got {mode!r}")
        self._inner = inner
        self._mode = mode
        self._rate = failure_rate
        self._rng = DeterministicRandom(seed)
        self._fail_on_calls = frozenset(fail_on_calls or ())
        self._delay_seconds = delay_seconds
        self._sleep = sleep
        self._disconnected = False
        self._force_next = False
        self.calls_seen = 0
        self.injected_failures = 0
        self.delivered = 0

    def fail_next(self) -> None:
        """Force the next request to fail regardless of rate or schedule."""
        self._force_next = True

    def heal(self) -> None:
        """Recover from a ``disconnect`` failure."""
        self._disconnected = False

    def _should_fail(self) -> bool:
        if self._force_next:
            self._force_next = False
            return True
        if self.calls_seen in self._fail_on_calls:
            return True
        return self._rng.chance(self._rate)

    def request(self, payload: bytes, timeout: Optional[float] = None) -> bytes:
        if self._disconnected:
            raise RetryableError("channel disconnected (injected)")
        self.calls_seen += 1
        if self._should_fail():
            self.injected_failures += 1
            return self._inject(payload, timeout)
        response = self._inner.request(payload, timeout=timeout)
        self.delivered += 1
        self.stats.record(sent=len(payload), received=len(response))
        return response

    def _inject(self, payload: bytes, timeout: Optional[float]) -> bytes:
        mode = self._mode
        if mode == "drop_request":
            raise RetryableError("request dropped (injected)")
        if mode == "drop_response":
            self._inner.request(payload, timeout=timeout)  # the peer DID process it
            raise RetryableError("response dropped (injected)")
        if mode == "disconnect":
            self._disconnected = True
            raise RetryableError("channel disconnected (injected)")
        if mode == "delay":
            if timeout is not None and self._delay_seconds >= timeout:
                # The injected latency outlives the caller's deadline:
                # fail exactly as the framing layer's socket timer would,
                # without actually burning wall-clock time.
                raise DeadlineExceededError(
                    f"injected {self._delay_seconds}s delay exceeds "
                    f"remaining deadline {timeout:.3f}s"
                )
            self._sleep(self._delay_seconds)
            response = self._inner.request(payload, timeout=timeout)
            self.delivered += 1
            self.stats.record(sent=len(payload), received=len(response))
            return response
        if mode == "corrupt_response":
            response = self._inner.request(payload, timeout=timeout)
            return corrupt_payload(response)
        # duplicate_response: the frame was duplicated in flight — the
        # peer processes the request twice; the caller reads the second
        # reply. Without server-side dedup this executes the method twice.
        self._inner.request(payload, timeout=timeout)
        response = self._inner.request(payload, timeout=timeout)
        self.delivered += 1
        self.stats.record(sent=len(payload), received=len(response))
        return response

    def close(self) -> None:
        self._inner.close()
