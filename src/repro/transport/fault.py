"""Fault-injecting channel wrapper for failure testing.

Middleware must fail *cleanly*: a dropped request or response surfaces as
:class:`~repro.errors.TransportError` at the caller, and — crucial for
copy-restore — a failed call must leave the caller's heap untouched (the
restore phase only runs on a successful reply). The test suite wraps
channels in :class:`FaultInjectingChannel` to assert exactly that.

Failure modes:

* ``drop_request`` — the request never reaches the peer;
* ``drop_response`` — the peer processed the request but the reply is
  lost (the classic at-most-once vs at-least-once hazard: the server-side
  effect may have happened);
* ``disconnect`` — the channel breaks permanently until ``heal()``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TransportError
from repro.transport.base import Channel
from repro.util.rng import DeterministicRandom

FAILURE_MODES = ("drop_request", "drop_response", "disconnect")


class FaultInjectingChannel(Channel):
    """Wraps a channel, injecting seeded failures."""

    def __init__(
        self,
        inner: Channel,
        failure_rate: float = 0.0,
        mode: str = "drop_request",
        seed: int = 0,
    ) -> None:
        super().__init__()
        if mode not in FAILURE_MODES:
            raise ValueError(f"mode must be one of {FAILURE_MODES}, got {mode!r}")
        self._inner = inner
        self._mode = mode
        self._rate = failure_rate
        self._rng = DeterministicRandom(seed)
        self._disconnected = False
        self.injected_failures = 0
        self.delivered = 0

    def fail_next(self) -> None:
        """Force the next request to fail regardless of the rate."""
        self._force_next = True

    _force_next = False

    def heal(self) -> None:
        """Recover from a ``disconnect`` failure."""
        self._disconnected = False

    def _should_fail(self) -> bool:
        if self._force_next:
            self._force_next = False
            return True
        return self._rng.chance(self._rate)

    def request(self, payload: bytes) -> bytes:
        if self._disconnected:
            raise TransportError("channel disconnected (injected)")
        if self._should_fail():
            self.injected_failures += 1
            if self._mode == "drop_request":
                raise TransportError("request dropped (injected)")
            if self._mode == "drop_response":
                self._inner.request(payload)  # the peer DID process it
                raise TransportError("response dropped (injected)")
            self._disconnected = True
            raise TransportError("channel disconnected (injected)")
        response = self._inner.request(payload)
        self.delivered += 1
        self.stats.record(sent=len(payload), received=len(response))
        return response

    def close(self) -> None:
        self._inner.close()
