"""Fault-injecting channel wrapper for failure testing.

Middleware must fail *cleanly*: a dropped request or response surfaces as
:class:`~repro.errors.RetryableError` at the caller, and — crucial for
copy-restore — a failed call must leave the caller's heap untouched (the
restore phase only runs on a successful reply). The test suite wraps
channels in :class:`FaultInjectingChannel` to assert exactly that, and
the chaos matrix drives every mode against the full invocation pipeline.

Failure modes:

* ``drop_request`` — the request never reaches the peer;
* ``drop_response`` — the peer processed the request but the reply is
  lost (the classic at-most-once vs at-least-once hazard: the server-side
  effect has happened; only a call-ID reply cache makes a retry safe);
* ``disconnect`` — the channel breaks permanently until ``heal()``;
* ``delay`` — ``delay_seconds`` of injected latency; when the caller's
  remaining deadline is smaller the exchange fails with
  :class:`~repro.errors.DeadlineExceededError` *without sleeping*, so
  deadline tests stay fast;
* ``corrupt_response`` — the exchange completes but payload bytes are
  flipped; the caller must surface a wire/unmarshal error with its heap
  untouched;
* ``duplicate_response`` — the request is delivered **twice** (a
  duplicated frame in flight), so the peer sees the same call ID again;
  with a reply cache the method still executes once.
* ``stall`` — slow-loris: a **fresh** connection sends only
  ``stall_after_bytes`` of the framed request and then goes silent,
  leaving the server holding a partial frame (its partial-read deadline
  must eventually reap the connection). The pooled inner channel is
  untouched, so the caller's retry succeeds immediately while the
  stalled socket keeps occupying the server.

Failures trigger by seeded rate (``failure_rate``), by deterministic
schedule (``fail_on_calls={3, 7}`` — 1-based indices of ``request``
invocations), or on demand (``fail_next()``).
"""

from __future__ import annotations

import struct
import time
from typing import Callable, Iterable, List, Optional

from repro.errors import DeadlineExceededError, RetryableError
from repro.transport.base import Channel
from repro.util.rng import DeterministicRandom

_LEN = struct.Struct(">I")

FAILURE_MODES = (
    "drop_request",
    "drop_response",
    "disconnect",
    "delay",
    "corrupt_response",
    "duplicate_response",
    "stall",
)


def corrupt_payload(payload: bytes) -> bytes:
    """Flip bytes deterministically: the status byte and a middle byte.

    Flipping the status byte guarantees the receiver rejects the frame
    before *any* of it is interpreted (no partial restore); the middle
    flip exercises deeper payload validation when tests corrupt response
    bodies directly.
    """
    corrupted = bytearray(payload)
    if corrupted:
        corrupted[0] ^= 0xFF
        corrupted[len(corrupted) // 2] ^= 0xFF
    return bytes(corrupted)


class FaultInjectingChannel(Channel):
    """Wraps a channel, injecting seeded or scheduled failures."""

    def __init__(
        self,
        inner: Channel,
        failure_rate: float = 0.0,
        mode: str = "drop_request",
        seed: int = 0,
        fail_on_calls: Optional[Iterable[int]] = None,
        delay_seconds: float = 0.05,
        stall_after_bytes: int = 4,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__()
        if mode not in FAILURE_MODES:
            raise ValueError(f"mode must be one of {FAILURE_MODES}, got {mode!r}")
        if stall_after_bytes < 0:
            raise ValueError(
                f"stall_after_bytes must be >= 0, got {stall_after_bytes}"
            )
        self._inner = inner
        self._mode = mode
        self._rate = failure_rate
        self._rng = DeterministicRandom(seed)
        self._fail_on_calls = frozenset(fail_on_calls or ())
        self._delay_seconds = delay_seconds
        self._stall_after_bytes = stall_after_bytes
        self._sleep = sleep
        self._disconnected = False
        self._force_next = False
        #: Sockets deliberately left open mid-frame (slow-loris); closed
        #: only by :meth:`close` / :meth:`release_stalled`.
        self._stalled_socks: List[object] = []
        self.calls_seen = 0
        self.injected_failures = 0
        self.delivered = 0

    def fail_next(self) -> None:
        """Force the next request to fail regardless of rate or schedule."""
        self._force_next = True

    def heal(self) -> None:
        """Recover from a ``disconnect`` failure."""
        self._disconnected = False

    def _should_fail(self) -> bool:
        if self._force_next:
            self._force_next = False
            return True
        if self.calls_seen in self._fail_on_calls:
            return True
        return self._rng.chance(self._rate)

    def request(self, payload: bytes, timeout: Optional[float] = None) -> bytes:
        if self._disconnected:
            raise RetryableError("channel disconnected (injected)")
        self.calls_seen += 1
        if self._should_fail():
            self.injected_failures += 1
            return self._inject(payload, timeout)
        response = self._inner.request(payload, timeout=timeout)
        self.delivered += 1
        self.stats.record(sent=len(payload), received=len(response))
        return response

    def _inject(self, payload: bytes, timeout: Optional[float]) -> bytes:
        mode = self._mode
        if mode == "drop_request":
            raise RetryableError("request dropped (injected)")
        if mode == "drop_response":
            self._inner.request(payload, timeout=timeout)  # the peer DID process it
            raise RetryableError("response dropped (injected)")
        if mode == "disconnect":
            self._disconnected = True
            raise RetryableError("channel disconnected (injected)")
        if mode == "delay":
            if timeout is not None and self._delay_seconds >= timeout:
                # The injected latency outlives the caller's deadline:
                # fail exactly as the framing layer's socket timer would,
                # without actually burning wall-clock time.
                raise DeadlineExceededError(
                    f"injected {self._delay_seconds}s delay exceeds "
                    f"remaining deadline {timeout:.3f}s"
                )
            self._sleep(self._delay_seconds)
            response = self._inner.request(payload, timeout=timeout)
            self.delivered += 1
            self.stats.record(sent=len(payload), received=len(response))
            return response
        if mode == "corrupt_response":
            response = self._inner.request(payload, timeout=timeout)
            return corrupt_payload(response)
        if mode == "stall":
            return self._inject_stall(payload, timeout)
        # duplicate_response: the frame was duplicated in flight — the
        # peer processes the request twice; the caller reads the second
        # reply. Without server-side dedup this executes the method twice.
        self._inner.request(payload, timeout=timeout)
        response = self._inner.request(payload, timeout=timeout)
        self.delivered += 1
        self.stats.record(sent=len(payload), received=len(response))
        return response

    def _inject_stall(self, payload: bytes, timeout: Optional[float]) -> bytes:
        """Slow-loris: dial a fresh connection, send a partial frame, and
        leave the socket open and silent.

        Requires the inner channel to be a stream channel (it must expose
        ``_open_socket``). The inner channel's own pooled connection is
        never touched, so the caller's retry goes through cleanly while
        the server is left holding our half-frame until its partial-read
        deadline reaps it.
        """
        opener = getattr(self._inner, "_open_socket", None)
        if opener is None:
            raise RetryableError(
                "stall mode requires a stream inner channel "
                f"(got {type(self._inner).__name__})"
            )
        framed = _LEN.pack(len(payload)) + bytes(payload)
        prefix = framed[: self._stall_after_bytes]
        sock = opener(timeout)
        try:
            if prefix:
                sock.sendall(prefix)
        except OSError:
            try:
                sock.close()
            except OSError:
                pass
        else:
            self._stalled_socks.append(sock)
        raise RetryableError(
            f"request stalled after {len(prefix)} bytes mid-frame (injected)"
        )

    @property
    def stalled_connections(self) -> int:
        """Sockets currently held open mid-frame by ``stall`` injections."""
        return len(self._stalled_socks)

    def release_stalled(self) -> None:
        """Close every stalled socket (the slow-loris client gives up)."""
        while self._stalled_socks:
            sock = self._stalled_socks.pop()
            try:
                sock.close()  # type: ignore[attr-defined]
            except OSError:
                pass

    def close(self) -> None:
        self.release_stalled()
        self._inner.close()
