"""Length-prefixed message framing over stream sockets.

Frames are ``u32 length (big-endian) + payload``. A maximum frame size
guards both sides against corrupt peers allocating unbounded buffers.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import TransportError

_LEN = struct.Struct(">I")

#: Refuse frames above 256 MiB — far beyond any benchmark payload, small
#: enough to stop a corrupt length word from exhausting memory.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def write_frame(sock: socket.socket, payload: bytes) -> None:
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    try:
        sock.sendall(_LEN.pack(len(payload)) + payload)
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes:
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"peer announced oversized frame: {length} bytes")
    return _recv_exact(sock, length)
