"""Length-prefixed message framing over stream sockets.

Frames are ``u32 length (big-endian) + payload``. A maximum frame size
guards both sides against corrupt peers allocating unbounded buffers.

The send path is zero-copy: the header and payload go out in one
scatter-gather ``sendmsg`` (one segment under ``TCP_NODELAY``), so a
payload is never joined with its header into a fresh ``bytes`` object —
callers can pass a ``memoryview`` over a pooled encode buffer straight
through. The receive path reads with ``recv_into`` into one preallocated
``bytearray`` instead of accumulating ``recv`` chunks and joining them.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import TransportError

_LEN = struct.Struct(">I")
_HEADER_SIZE = _LEN.size

#: Refuse frames above 256 MiB — far beyond any benchmark payload, small
#: enough to stop a corrupt length word from exhausting memory.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


def write_frame(sock: socket.socket, payload) -> None:
    """Send one frame. *payload* may be ``bytes``, ``bytearray``, or a
    ``memoryview`` — it is transmitted without being copied or joined."""
    length = len(payload)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    header = _LEN.pack(length)
    try:
        if _HAS_SENDMSG:
            sent = sock.sendmsg((header, payload))
            total = _HEADER_SIZE + length
            if sent < total:
                # Short scatter-gather write (large payload / full socket
                # buffer): finish with sendall over views, still no joins.
                if sent < _HEADER_SIZE:
                    sock.sendall(header[sent:])
                    sent = _HEADER_SIZE
                sock.sendall(memoryview(payload)[sent - _HEADER_SIZE :])
        else:  # pragma: no cover - platforms without sendmsg
            sock.sendall(header + bytes(payload))
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, count: int) -> bytearray:
    buffer = bytearray(count)
    view = memoryview(buffer)
    pos = 0
    while pos < count:
        try:
            received = sock.recv_into(view[pos:], count - pos)
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        if not received:
            raise TransportError("connection closed mid-frame")
        pos += received
    return buffer


def read_frame(sock: socket.socket) -> bytearray:
    header = _recv_exact(sock, _HEADER_SIZE)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"peer announced oversized frame: {length} bytes")
    return _recv_exact(sock, length)
