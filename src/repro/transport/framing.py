"""Length-prefixed message framing over stream sockets.

Frames are ``u32 length (big-endian) + payload``. A maximum frame size
guards both sides against corrupt peers allocating unbounded buffers.

The send path is zero-copy: the header and payload go out in one
scatter-gather ``sendmsg`` (one segment under ``TCP_NODELAY``), so a
payload is never joined with its header into a fresh ``bytes`` object —
callers can pass a ``memoryview`` over a pooled encode buffer straight
through. The receive path reads with ``recv_into`` into one preallocated
``bytearray`` instead of accumulating ``recv`` chunks and joining them.

Failure classification: a connection that breaks mid-exchange raises
:class:`~repro.errors.RetryableError` (the retry layer may resend with a
call ID attached), while a socket *timeout* raises
:class:`~repro.errors.DeadlineExceededError` — when a caller passes
``timeout=`` here it is the remaining per-call deadline, and a timer
firing means the deadline budget is gone, not that a retry would help.
"""

from __future__ import annotations

import socket
import struct
from typing import Optional

from repro.errors import DeadlineExceededError, RetryableError, TransportError
from repro.util.buffers import SinkBufferWriter, SpillSink

_LEN = struct.Struct(">I")
_HEADER_SIZE = _LEN.size

#: Refuse frames above 256 MiB — far beyond any benchmark payload, small
#: enough to stop a corrupt length word from exhausting memory.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


def _apply_timeout(sock: socket.socket, timeout: Optional[float]) -> None:
    if timeout is not None:
        # A non-positive remaining budget must still fail as a deadline,
        # not block forever; the smallest positive timeout approximates
        # "already expired" without a special code path.
        sock.settimeout(max(timeout, 1e-6))


def write_frame(
    sock: socket.socket, payload, timeout: Optional[float] = None
) -> None:
    """Send one frame. *payload* may be ``bytes``, ``bytearray``, or a
    ``memoryview`` — it is transmitted without being copied or joined.
    *timeout* (seconds) bounds the send; it is the caller's remaining
    per-call deadline."""
    length = len(payload)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    header = _LEN.pack(length)
    _apply_timeout(sock, timeout)
    try:
        if _HAS_SENDMSG:
            sent = sock.sendmsg((header, payload))
            total = _HEADER_SIZE + length
            if sent < total:
                # Short scatter-gather write (large payload / full socket
                # buffer): finish with sendall over views, still no joins.
                if sent < _HEADER_SIZE:
                    sock.sendall(header[sent:])
                    sent = _HEADER_SIZE
                sock.sendall(memoryview(payload)[sent - _HEADER_SIZE :])
        else:  # pragma: no cover - platforms without sendmsg
            sock.sendall(header + bytes(payload))
    except socket.timeout as exc:
        raise DeadlineExceededError(f"send timed out: {exc}") from exc
    except OSError as exc:
        raise RetryableError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, count: int) -> bytearray:
    buffer = bytearray(count)
    view = memoryview(buffer)
    pos = 0
    while pos < count:
        try:
            received = sock.recv_into(view[pos:], count - pos)
        except socket.timeout as exc:
            raise DeadlineExceededError(f"recv timed out: {exc}") from exc
        except OSError as exc:
            raise RetryableError(f"recv failed: {exc}") from exc
        if not received:
            raise RetryableError("connection closed mid-frame")
        pos += received
    return buffer


def read_frame(sock: socket.socket, timeout: Optional[float] = None) -> bytearray:
    _apply_timeout(sock, timeout)
    header = _recv_exact(sock, _HEADER_SIZE)
    return read_frame_body(sock, header)


def read_frame_body(sock: socket.socket, header: bytes) -> bytearray:
    """Finish reading a frame whose 4-byte length *header* is in hand.

    Split out of :func:`read_frame` for the server's framing auto-detect:
    it must read the first four connection bytes before knowing whether
    they are a plain length header or the pipelined magic.
    """
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"peer announced oversized frame: {length} bytes")
    return _recv_exact(sock, length)


class InPlaceFrameWriter:
    """Builds one ``u32 length + payload`` frame inside a reservation.

    Wraps a writable ``memoryview`` handed out by a shm ring
    reservation: the first four bytes are left for the length header,
    the rest becomes a :class:`SpillSink` so the serde layer encodes
    the payload straight into the mapped segment. ``finish`` backfills
    the header over the bytes already in place and reports how much of
    the frame landed in the reservation versus spilled; the caller
    commits the in-place span as one ring record and streams the spill
    (if any) as ordinary copied records — the receiver sees one
    contiguous byte stream either way.

    Exactly one of :meth:`finish` or :meth:`abort` must run; both drop
    the view references and return the spill buffer to the pool, so an
    encode failure never leaks a pooled buffer or publishes a torn
    frame (the reservation owner's ``abort`` unpublishes the span).
    """

    __slots__ = ("_view", "_sink", "writer")

    def __init__(self, view: memoryview, pool=None) -> None:
        if len(view) <= _HEADER_SIZE:
            raise ValueError("reservation too small for a frame header")
        self._view = view
        self._sink = SpillSink(view[_HEADER_SIZE:], pool)
        self.writer = SinkBufferWriter(self._sink)

    def finish(self):
        """Backfill the length header; returns ``(in_place, spill)``.

        *in_place* is the number of reservation bytes to commit (header
        included); *spill* is the overflow ``bytearray`` still owed to
        the stream, or ``None`` when the whole frame fit. Ownership of
        the spill transfers to the caller (send it, then pool it)."""
        sink = self._sink
        length = len(sink)
        if length > MAX_FRAME_BYTES:
            self.abort()
            raise TransportError(
                f"frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
            )
        view = self._view
        _LEN.pack_into(view, 0, length)
        in_place = _HEADER_SIZE + sink.in_place
        spill = sink.spill
        self._sink = None
        self._view = None
        return in_place, spill

    def abort(self) -> None:
        """Drop the frame: pool the spill, forget the reservation view."""
        sink = self._sink
        if sink is not None:
            self._sink = None
            self._view = None
            sink.release()


# ----------------------------------------------------- pipelined framing
#
# A pipelined connection opens with an 8-byte preamble, then every frame
# carries a u32 correlation id between the length header and the payload:
#
#     client: "NRMI" "PIP1"  [u32 len | u32 corr | payload]*
#     server:                [u32 len | u32 corr | payload]*   (any order)
#
# The magic doubles as the detection mechanism: interpreted as a length
# header, b"NRMI" would announce a ~1.3 GB frame — far beyond
# MAX_FRAME_BYTES — so no legal plain-framing client can ever start a
# connection with those bytes, and servers accept both framings on one
# port without configuration.

PIPELINE_MAGIC = b"NRMI"
PIPELINE_VERSION = b"PIP1"
PIPELINE_PREAMBLE = PIPELINE_MAGIC + PIPELINE_VERSION

recv_exact = _recv_exact


def write_frame_corr(
    sock: socket.socket, corr_id: int, payload, timeout: Optional[float] = None
) -> None:
    """Send one correlation-tagged frame (scatter-gather, no joins)."""
    length = len(payload)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    header = _LEN.pack(length)
    corr = _LEN.pack(corr_id & 0xFFFFFFFF)
    _apply_timeout(sock, timeout)
    try:
        if _HAS_SENDMSG:
            total = 2 * _HEADER_SIZE + length
            sent = sock.sendmsg((header, corr, payload))
            if sent < total:
                rest = header + corr + bytes(payload)
                sock.sendall(rest[sent:])
        else:  # pragma: no cover - platforms without sendmsg
            sock.sendall(header + corr + bytes(payload))
    except socket.timeout as exc:
        raise DeadlineExceededError(f"send timed out: {exc}") from exc
    except OSError as exc:
        raise RetryableError(f"send failed: {exc}") from exc


def read_frame_corr(sock: socket.socket) -> tuple:
    """Read one correlation-tagged frame; returns ``(corr_id, payload)``."""
    header = _recv_exact(sock, _HEADER_SIZE)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"peer announced oversized frame: {length} bytes")
    (corr_id,) = _LEN.unpack(_recv_exact(sock, _HEADER_SIZE))
    return corr_id, _recv_exact(sock, length)
