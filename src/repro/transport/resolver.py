"""Endpoint addressing and channel resolution.

Remote references carry an *address string* identifying their owning
endpoint; when a reference is unmarshalled, the resolver turns that address
into a channel (or recognizes it as the local endpoint, in which case the
actual object is used — the same short-circuit Java RMI performs).

Address forms:

* ``inproc://<name>`` — an endpoint living in this process, registered
  with the resolver (tests, benchmarks, and the simulated network);
* ``tcp://<host>:<port>`` — a TCP endpoint; channels are cached per
  address;
* ``uds://<path>`` — a Unix-domain-socket endpoint on this host
  (POSIX only; resolving it elsewhere raises a clear
  :class:`~repro.errors.TransportError`).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.errors import TransportError
from repro.transport.base import Channel, RequestHandler
from repro.transport.inproc import InProcChannel
from repro.transport.tcp import PipelinedTcpChannel, TcpChannel
from repro.transport.uds import PipelinedUdsChannel, UdsChannel, _require_af_unix


class ChannelResolver:
    """Maps address strings to channels; caches one channel per address."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._inproc_handlers: Dict[str, RequestHandler] = {}
        self._channels: Dict[str, Channel] = {}
        self._wrappers: Dict[str, Callable[[Channel], Channel]] = {}

    # -------------------------------------------------- inproc registration

    def register_inproc(self, name: str, handler: RequestHandler) -> str:
        """Expose *handler* as ``inproc://name``; returns the address."""
        address = f"inproc://{name}"
        with self._lock:
            self._inproc_handlers[name] = handler
            self._channels.pop(address, None)
        return address

    def unregister_inproc(self, name: str) -> None:
        with self._lock:
            self._inproc_handlers.pop(name, None)
            self._channels.pop(f"inproc://{name}", None)

    def set_wrapper(
        self, address: str, wrapper: Optional[Callable[[Channel], Channel]]
    ) -> None:
        """Install a channel decorator for *address* (e.g. SimulatedChannel).

        Affects channels resolved after the call; cached channels are
        dropped so the wrapper takes effect immediately.
        """
        with self._lock:
            if wrapper is None:
                self._wrappers.pop(address, None)
            else:
                self._wrappers[address] = wrapper
            self._channels.pop(address, None)
            self._channels.pop(f"pipelined+{address}", None)

    # ------------------------------------------------------------ resolving

    def resolve(self, address: str, pipelined: bool = False) -> Channel:
        """The channel for *address*; one cached per (address, framing).

        *pipelined* only affects ``tcp://`` and ``uds://`` addresses: it
        selects the multi-call-in-flight channel (other schemes multiplex
        natively). Both framings may coexist against one server — it
        auto-detects per connection — so the two variants cache under
        separate keys.
        """
        pipelined = pipelined and address.startswith(("tcp://", "uds://"))
        key = f"pipelined+{address}" if pipelined else address
        with self._lock:
            channel = self._channels.get(key)
            if channel is not None:
                return channel
            channel = self._open(address, pipelined)
            wrapper = self._wrappers.get(address)
            if wrapper is not None:
                channel = wrapper(channel)
            self._channels[key] = channel
            return channel

    def _open(self, address: str, pipelined: bool = False) -> Channel:
        if address.startswith("inproc://"):
            name = address[len("inproc://") :]
            handler = self._inproc_handlers.get(name)
            if handler is None:
                raise TransportError(f"no in-process endpoint named {name!r}")
            return InProcChannel(handler)
        if address.startswith("tcp://"):
            hostport = address[len("tcp://") :]
            host, _, port_text = hostport.rpartition(":")
            if not host or not port_text.isdigit():
                raise TransportError(f"malformed tcp address {address!r}")
            channel_type = PipelinedTcpChannel if pipelined else TcpChannel
            return channel_type(host, int(port_text))
        if address.startswith("uds://"):
            _require_af_unix()
            path = address[len("uds://") :]
            if not path:
                raise TransportError(f"malformed uds address {address!r}")
            channel_type = PipelinedUdsChannel if pipelined else UdsChannel
            return channel_type(path)
        raise TransportError(f"unsupported address scheme in {address!r}")

    def drop(self, address: str) -> None:
        """Close and forget the cached channel(s) for *address*."""
        with self._lock:
            channels = [
                self._channels.pop(key, None)
                for key in (address, f"pipelined+{address}")
            ]
        for channel in channels:
            if channel is not None:
                channel.close()

    def close_all(self) -> None:
        with self._lock:
            channels = list(self._channels.values())
            self._channels.clear()
        for channel in channels:
            channel.close()


#: Process-wide resolver used by default; tests may build private ones.
global_resolver = ChannelResolver()
