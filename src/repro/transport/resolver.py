"""Endpoint addressing and channel resolution.

Remote references carry an *address string* identifying their owning
endpoint; when a reference is unmarshalled, the resolver turns that address
into a channel (or recognizes it as the local endpoint, in which case the
actual object is used — the same short-circuit Java RMI performs).

Address forms:

* ``inproc://<name>`` — an endpoint living in this process, registered
  with the resolver (tests, benchmarks, and the simulated network);
* ``tcp://<host>:<port>`` — a TCP endpoint; channels are cached per
  address;
* ``uds://<path>`` — a Unix-domain-socket endpoint on this host
  (POSIX only; resolving it elsewhere raises a clear
  :class:`~repro.errors.TransportError`);
* ``shm://<name>`` — a shared-memory ring endpoint on this host
  (rendezvous over a Unix socket, frames over mmap'd rings).

Scheme→factory mapping lives in a module-level table: each entry names a
factory building the channel for the part after ``scheme://`` and
whether the scheme supports the pipelined framing variant. Third-party
transports join with :func:`register_scheme`; an unknown scheme fails
with the supported set spelled out.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, NamedTuple, Optional

from repro.errors import TransportError
from repro.transport.base import Channel, RequestHandler
from repro.transport.inproc import InProcChannel
from repro.transport.shm import PipelinedShmChannel, ShmChannel, _require_shm
from repro.transport.tcp import PipelinedTcpChannel, TcpChannel
from repro.transport.uds import PipelinedUdsChannel, UdsChannel, _require_af_unix

#: A factory receives ``(resolver, rest, pipelined)`` where *rest* is the
#: address with ``scheme://`` stripped; it returns a fresh channel.
SchemeFactory = Callable[["ChannelResolver", str, bool], Channel]


class TransportScheme(NamedTuple):
    """One row of the scheme table."""

    name: str
    factory: SchemeFactory
    #: Whether the scheme has a multi-call-in-flight framing variant;
    #: schemes that multiplex natively (inproc) leave this False and
    #: ``resolve(pipelined=True)`` quietly falls back to the plain form.
    pipelined: bool = False


_SCHEME_LOCK = threading.Lock()
_SCHEMES: Dict[str, TransportScheme] = {}


def register_scheme(
    name: str, factory: SchemeFactory, *, pipelined: bool = False
) -> None:
    """Add (or replace) the transport behind ``<name>://`` addresses.

    The table is process-wide: every resolver instance sees the scheme.
    Registering an existing name replaces it — deliberate, so tests and
    embedders can shadow a built-in with an instrumented variant.
    """
    if not name or "://" in name:
        raise ValueError(f"malformed scheme name {name!r}")
    with _SCHEME_LOCK:
        _SCHEMES[name] = TransportScheme(name, factory, pipelined)


def unregister_scheme(name: str) -> None:
    with _SCHEME_LOCK:
        _SCHEMES.pop(name, None)


def supported_schemes() -> tuple:
    """The registered scheme names, sorted (for error messages, docs)."""
    with _SCHEME_LOCK:
        return tuple(sorted(_SCHEMES))


def _scheme_for(address: str) -> TransportScheme:
    scheme, sep, _rest = address.partition("://")
    entry = _SCHEMES.get(scheme) if sep else None
    if entry is None:
        supported = ", ".join(f"{name}://" for name in supported_schemes())
        raise TransportError(
            f"unsupported address scheme in {address!r} "
            f"(supported: {supported})"
        )
    return entry


class ChannelResolver:
    """Maps address strings to channels; caches one channel per address."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._inproc_handlers: Dict[str, RequestHandler] = {}
        self._channels: Dict[str, Channel] = {}
        self._wrappers: Dict[str, Callable[[Channel], Channel]] = {}

    # -------------------------------------------------- inproc registration

    def register_inproc(self, name: str, handler: RequestHandler) -> str:
        """Expose *handler* as ``inproc://name``; returns the address."""
        address = f"inproc://{name}"
        with self._lock:
            self._inproc_handlers[name] = handler
            self._channels.pop(address, None)
        return address

    def unregister_inproc(self, name: str) -> None:
        with self._lock:
            self._inproc_handlers.pop(name, None)
            self._channels.pop(f"inproc://{name}", None)

    def set_wrapper(
        self, address: str, wrapper: Optional[Callable[[Channel], Channel]]
    ) -> None:
        """Install a channel decorator for *address* (e.g. SimulatedChannel).

        Affects channels resolved after the call; cached channels are
        dropped so the wrapper takes effect immediately.
        """
        with self._lock:
            if wrapper is None:
                self._wrappers.pop(address, None)
            else:
                self._wrappers[address] = wrapper
            self._channels.pop(address, None)
            self._channels.pop(f"pipelined+{address}", None)

    # ------------------------------------------------------------ resolving

    def resolve(self, address: str, pipelined: bool = False) -> Channel:
        """The channel for *address*; one cached per (address, framing).

        *pipelined* only affects schemes whose table entry declares the
        multi-call-in-flight variant (``tcp``, ``uds``, ``shm``); other
        schemes multiplex natively. Both framings may coexist against
        one server — it auto-detects per connection — so the two
        variants cache under separate keys.
        """
        pipelined = pipelined and _scheme_for(address).pipelined
        key = f"pipelined+{address}" if pipelined else address
        with self._lock:
            channel = self._channels.get(key)
            if channel is not None:
                return channel
            channel = self._open(address, pipelined)
            wrapper = self._wrappers.get(address)
            if wrapper is not None:
                channel = wrapper(channel)
            self._channels[key] = channel
            return channel

    def _open(self, address: str, pipelined: bool = False) -> Channel:
        entry = _scheme_for(address)
        rest = address[len(entry.name) + 3 :]
        return entry.factory(self, rest, pipelined)

    def drop(self, address: str) -> None:
        """Close and forget the cached channel(s) for *address*."""
        with self._lock:
            channels = [
                self._channels.pop(key, None)
                for key in (address, f"pipelined+{address}")
            ]
        for channel in channels:
            if channel is not None:
                channel.close()

    def close_all(self) -> None:
        with self._lock:
            channels = list(self._channels.values())
            self._channels.clear()
        for channel in channels:
            channel.close()


# ------------------------------------------------------ built-in schemes


def _open_inproc(resolver: ChannelResolver, rest: str, pipelined: bool) -> Channel:
    handler = resolver._inproc_handlers.get(rest)
    if handler is None:
        raise TransportError(f"no in-process endpoint named {rest!r}")
    return InProcChannel(handler)


def _open_tcp(resolver: ChannelResolver, rest: str, pipelined: bool) -> Channel:
    host, _, port_text = rest.rpartition(":")
    if not host or not port_text.isdigit():
        raise TransportError(f"malformed tcp address {'tcp://' + rest!r}")
    channel_type = PipelinedTcpChannel if pipelined else TcpChannel
    return channel_type(host, int(port_text))


def _open_uds(resolver: ChannelResolver, rest: str, pipelined: bool) -> Channel:
    _require_af_unix()
    if not rest:
        raise TransportError("malformed uds address 'uds://'")
    channel_type = PipelinedUdsChannel if pipelined else UdsChannel
    return channel_type(rest)


def _open_shm(resolver: ChannelResolver, rest: str, pipelined: bool) -> Channel:
    _require_shm()
    if not rest:
        raise TransportError("malformed shm address 'shm://'")
    channel_type = PipelinedShmChannel if pipelined else ShmChannel
    return channel_type(rest)


register_scheme("inproc", _open_inproc)
register_scheme("tcp", _open_tcp, pipelined=True)
register_scheme("uds", _open_uds, pipelined=True)
register_scheme("shm", _open_shm, pipelined=True)


#: Process-wide resolver used by default; tests may build private ones.
global_resolver = ChannelResolver()
