"""Endpoint addressing and channel resolution.

Remote references carry an *address string* identifying their owning
endpoint; when a reference is unmarshalled, the resolver turns that address
into a channel (or recognizes it as the local endpoint, in which case the
actual object is used — the same short-circuit Java RMI performs).

Address forms:

* ``inproc://<name>`` — an endpoint living in this process, registered
  with the resolver (tests, benchmarks, and the simulated network);
* ``tcp://<host>:<port>`` — a TCP endpoint; channels are cached per
  address.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.errors import TransportError
from repro.transport.base import Channel, RequestHandler
from repro.transport.inproc import InProcChannel
from repro.transport.tcp import TcpChannel


class ChannelResolver:
    """Maps address strings to channels; caches one channel per address."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._inproc_handlers: Dict[str, RequestHandler] = {}
        self._channels: Dict[str, Channel] = {}
        self._wrappers: Dict[str, Callable[[Channel], Channel]] = {}

    # -------------------------------------------------- inproc registration

    def register_inproc(self, name: str, handler: RequestHandler) -> str:
        """Expose *handler* as ``inproc://name``; returns the address."""
        address = f"inproc://{name}"
        with self._lock:
            self._inproc_handlers[name] = handler
            self._channels.pop(address, None)
        return address

    def unregister_inproc(self, name: str) -> None:
        with self._lock:
            self._inproc_handlers.pop(name, None)
            self._channels.pop(f"inproc://{name}", None)

    def set_wrapper(
        self, address: str, wrapper: Optional[Callable[[Channel], Channel]]
    ) -> None:
        """Install a channel decorator for *address* (e.g. SimulatedChannel).

        Affects channels resolved after the call; cached channels are
        dropped so the wrapper takes effect immediately.
        """
        with self._lock:
            if wrapper is None:
                self._wrappers.pop(address, None)
            else:
                self._wrappers[address] = wrapper
            self._channels.pop(address, None)

    # ------------------------------------------------------------ resolving

    def resolve(self, address: str) -> Channel:
        with self._lock:
            channel = self._channels.get(address)
            if channel is not None:
                return channel
            channel = self._open(address)
            wrapper = self._wrappers.get(address)
            if wrapper is not None:
                channel = wrapper(channel)
            self._channels[address] = channel
            return channel

    def _open(self, address: str) -> Channel:
        if address.startswith("inproc://"):
            name = address[len("inproc://") :]
            handler = self._inproc_handlers.get(name)
            if handler is None:
                raise TransportError(f"no in-process endpoint named {name!r}")
            return InProcChannel(handler)
        if address.startswith("tcp://"):
            hostport = address[len("tcp://") :]
            host, _, port_text = hostport.rpartition(":")
            if not host or not port_text.isdigit():
                raise TransportError(f"malformed tcp address {address!r}")
            return TcpChannel(host, int(port_text))
        raise TransportError(f"unsupported address scheme in {address!r}")

    def drop(self, address: str) -> None:
        """Close and forget the cached channel for *address*."""
        with self._lock:
            channel = self._channels.pop(address, None)
        if channel is not None:
            channel.close()

    def close_all(self) -> None:
        with self._lock:
            channels = list(self._channels.values())
            self._channels.clear()
        for channel in channels:
            channel.close()


#: Process-wide resolver used by default; tests may build private ones.
global_resolver = ChannelResolver()
