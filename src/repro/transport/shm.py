"""Shared-memory ring transport: the framed stream without the kernel.

``uds://`` removed the TCP/IP stack from co-located round trips; this
transport removes the socket layer itself. CALL/REPLY frames flow over a
pair of mmap'd single-producer/single-consumer rings
(:mod:`repro.util.ring`) — client→server and server→client — so a
request is two user-space ``memcpy``s plus, at most, one doorbell byte.

Connection setup rides a tiny Unix-socket handshake: the server listens
on a rendezvous socket derived from the ``shm://<name>`` address; on
accept it creates a fresh anonymous segment (``memfd_create``, falling
back to an unlinked temp file), maps it, and ships the descriptor to the
client with ``SCM_RIGHTS``. Nothing is ever named on the filesystem
except the rendezvous socket, so segments can not leak: the memory dies
with the last map, and either process crashing surfaces as EOF on the
handshake socket, which stays open as the *doorbell*.

The doorbell carries no data — any byte means "re-check your rings".
Each side sends one only when the peer has declared itself parked via
the waiting flags in the ring control block, so a spinning client pays
zero syscalls on the reply path and an idle connection burns no CPU
(both sides sleep in ``select`` on the doorbell fd).

Everything above the carrier is untouched: :class:`_RingDuplex` exposes
the socket-shaped subset the framing layer uses (``sendmsg`` /
``sendall`` / ``recv_into`` / ``recv`` / ``settimeout`` / ``fileno``),
so the plain and pipelined channels, framing auto-detect,
``TransportSession`` machinery, and the staged server core from
:mod:`repro.transport.netloop` all run unmodified over the rings.
"""

from __future__ import annotations

import errno
import mmap
import os
import select
import socket
import struct
import tempfile
import time
import uuid
from typing import Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX; shm is gated anyway
    fcntl = None  # type: ignore[assignment]

from repro.errors import DeadlineExceededError, RetryableError, TransportError
from repro.transport.base import RequestHandler
from repro.transport.framing import (
    InPlaceFrameWriter,
    MAX_FRAME_BYTES,
    read_frame,
    write_frame,
)
from repro.transport.stream import (
    PipelinedStreamChannel,
    StreamChannel,
    StreamServer,
)
from repro.util.buffers import BufferWriter
from repro.util.ring import (
    CTRL_BYTES,
    RingConsumer,
    RingProducer,
    consumer_view,
    producer_view,
    yield_cpu as _yield_cpu,
)

#: Per-direction ring data size. 1 MiB holds a 64 KiB benchmark frame
#: with room to spare; larger frames are chunked into records and flow
#: under backpressure.
DEFAULT_RING_CAPACITY = 1 << 20

#: Busy-spin iterations before a blocked client parks on the doorbell.
#: A reply typically lands well inside this budget (~tens of µs), so the
#: hot path never selects; idle or slow peers park and burn no CPU. The
#: spin yields the core between re-checks (``sched_yield``): under
#: CPython a tight spin would hold the GIL and starve a same-process
#: peer — the common benchmark topology — of the very cycles it needs
#: to produce the reply being awaited.
DEFAULT_SPIN = 2000

_MAGIC = b"NRMISHM1"
_VERSION = 1
#: Handshake header: magic, version, ring capacity.
_HS = struct.Struct("!8sII")
#: Segment layout: one header page, then the two rings back to back.
_HEADER_BYTES = 4096

_DOORBELL_BYTE = b"\x00"

#: Frame header (u32 big-endian length), shared with the framing layer.
_FRAME_LEN = struct.Struct(">I")
_FRAME_HEADER = _FRAME_LEN.size

#: Longest a parked side sleeps before re-checking its ring unprompted.
#: The flag handshake ("set waiting, re-check, park" vs "publish, see
#: flag, ring") is a Dekker-style store→load pattern that pure Python
#: cannot fence; cross-process on a weakly-ordered CPU the two sides can
#: cross and the doorbell byte is never sent (see ``repro.util.ring``).
#: The bounded park turns that lost wakeup from a hang into a latency
#: blip; on the hot path it costs nothing — a rung doorbell still wakes
#: the sleeper immediately, and an idle connection ticks a few times a
#: second, far below measurable CPU.
PARK_BACKSTOP_SECONDS = 0.25


def shm_supported() -> bool:
    """Whether this platform can run the shm transport (``AF_UNIX`` plus
    ``SCM_RIGHTS`` fd passing via ``socket.send_fds``)."""
    return (
        hasattr(socket, "AF_UNIX")
        and hasattr(socket, "send_fds")
        and hasattr(socket, "recv_fds")
    )


def _require_shm() -> None:
    if not shm_supported():
        raise TransportError(
            "shm:// transport requires AF_UNIX with SCM_RIGHTS fd passing "
            "(socket.send_fds/recv_fds); this platform lacks it"
        )


def default_segment_name() -> str:
    """A fresh, collision-free shm endpoint name."""
    return uuid.uuid4().hex[:12]


def handshake_path(name: str) -> str:
    """The rendezvous-socket path for ``shm://<name>``.

    An absolute *name* is used verbatim; a bare name lands under the
    system temp dir (kept short — ``sun_path`` caps at ~108 bytes).
    """
    if name.startswith("/"):
        return name
    return os.path.join(tempfile.gettempdir(), f"nrmi-shm-{name}.sock")


def segment_size(capacity: int) -> int:
    return _HEADER_BYTES + 2 * (CTRL_BYTES + capacity)


def _c2s_offset(capacity: int) -> int:
    return _HEADER_BYTES


def _s2c_offset(capacity: int) -> int:
    return _HEADER_BYTES + CTRL_BYTES + capacity


def _create_segment_fd(size: int) -> int:
    """An anonymous file descriptor of *size* bytes backing a segment.

    ``memfd_create`` when the platform has it; otherwise an already-
    unlinked temp file — either way there is no filesystem name to
    reclaim, the segment lives exactly as long as its maps and fds.
    """
    try:
        fd = os.memfd_create("nrmi-shm-ring")
    except (AttributeError, OSError):
        tmp = tempfile.TemporaryFile(prefix="nrmi-shm-")
        try:
            fd = os.dup(tmp.fileno())
        finally:
            tmp.close()
    try:
        os.ftruncate(fd, size)
    except OSError:
        os.close(fd)
        raise
    return fd


class _RingDuplex:
    """Socket-shaped duplex over one ring pair plus the doorbell socket.

    Implements exactly the subset of the socket API the framing layer
    and the staged server touch. Client duplexes are *blocking*: reads
    and writes busy-spin briefly, then park on the doorbell honouring
    ``settimeout``. Server duplexes are non-blocking: ``recv``/``send``
    return what is ready and raise ``BlockingIOError`` otherwise, and
    ``fileno()`` hands the selector the doorbell fd.
    """

    #: Tells the net loop that write readiness is signalled by doorbell
    #: *reads* (the doorbell socket itself is always writable).
    doorbell_interest = True

    def __init__(
        self,
        segment: mmap.mmap,
        doorbell: socket.socket,
        rx: RingConsumer,
        tx: RingProducer,
        *,
        spin: int = DEFAULT_SPIN,
    ) -> None:
        self._segment = segment
        self._sock = doorbell
        self._rx = rx
        self._tx = tx
        self._spin = spin
        self._timeout: Optional[float] = None
        self._eof = False
        self._closed = False
        doorbell.setblocking(False)

    # ------------------------------------------------------ socket facade

    def fileno(self) -> int:
        return self._sock.fileno()

    def settimeout(self, timeout: Optional[float]) -> None:
        self._timeout = timeout

    def gettimeout(self) -> Optional[float]:
        return self._timeout

    def setblocking(self, flag: bool) -> None:
        # Ring readiness is explicit per call; only the doorbell socket
        # has kernel blocking state, and it must stay non-blocking.
        pass

    def close(self) -> None:
        """Idempotent. Shuts the doorbell down first so a peer (and any
        thread parked in ``select`` here) wakes immediately; the segment
        itself is reclaimed by refcounting once the ring views die."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # ---------------------------------------------------------- doorbell

    def _ring_peer(self) -> None:
        try:
            self._sock.send(_DOORBELL_BYTE)
        except (BlockingIOError, InterruptedError):
            pass  # bytes already queued will wake the peer
        except OSError:
            pass  # peer gone; the read path surfaces it

    def _drain_doorbell(self) -> None:
        # A short read means the buffer is empty: stop without paying a
        # second syscall just to see EAGAIN.
        while True:
            try:
                chunk = self._sock.recv(4096)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._eof = True
                return
            if not chunk:
                self._eof = True
                return
            if len(chunk) < 4096:
                return

    def _park(self, waiter, deadline: Optional[float], what: str) -> None:
        """Declare *waiter* (our rx or tx side) parked, re-check, then
        sleep on the doorbell. Raises ``socket.timeout`` past *deadline*.
        """
        waiter.set_waiting()
        try:
            if self._recheck(waiter):
                return
            if deadline is None:
                timeout = PARK_BACKSTOP_SECONDS
            else:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    raise socket.timeout(f"shm {what} timed out")
                timeout = min(timeout, PARK_BACKSTOP_SECONDS)
            try:
                ready, _, _ = select.select([self._sock], [], [], timeout)
            except (OSError, ValueError):
                self._eof = True
                return
            if ready:
                self._drain_doorbell()
            elif deadline is not None and time.monotonic() >= deadline:
                raise socket.timeout(f"shm {what} timed out")
        finally:
            waiter.clear_waiting()

    @staticmethod
    def _recheck(waiter) -> bool:
        if isinstance(waiter, RingConsumer):
            return waiter.readable()
        return waiter.writable()

    # ----------------------------------------------- blocking client path

    def recv_into(self, buffer, nbytes: int = 0, flags: int = 0) -> int:
        """Blocking read of at least one byte (0 on EOF), like a socket."""
        view = memoryview(buffer)
        want = nbytes or len(view)
        rx = self._rx
        got = rx.try_read_into(view, want)
        if got:
            if rx.peer_waiting:
                self._ring_peer()
            return got
        deadline = (
            None if self._timeout is None else time.monotonic() + self._timeout
        )
        spin = self._spin
        while True:
            if self._closed:
                raise OSError(errno.EBADF, "shm duplex closed")
            got = rx.try_read_into(view, want)
            if got:
                if rx.peer_waiting:
                    self._ring_peer()
                return got
            if self._eof:
                return 0
            if spin > 0:
                spin -= 1
                _yield_cpu()
                continue
            self._park(rx, deadline, "recv")
            spin = self._spin

    def recv(self, bufsize: int, flags: int = 0):
        """Non-blocking net-thread read, socket semantics: at most
        *bufsize* bytes, ``BlockingIOError`` when nothing is pending.

        Bytes beyond *bufsize* stay in the ring with no doorbell byte to
        announce them; that is safe because every caller that sees this
        duplex treats it as a doorbell connection and follows a read
        with the linger poll, whose :meth:`poll_ready` /
        :meth:`park_rx` re-checks find the residue without a wakeup.
        """
        self._drain_doorbell()
        return self._recv_pending(bufsize)

    def recv_ring(self, bufsize: int, flags: int = 0):
        """:meth:`recv` for the linger poll: ring-only, no doorbell drain.

        The poll already knows readiness from :meth:`poll_ready`, so the
        drain syscall would be pure overhead; doorbell bytes and EOF
        detection stay with the selector path, which keeps running.
        """
        return self._recv_pending(bufsize)

    def _recv_pending(self, bufsize: int):
        rx = self._rx
        if not rx.readable():
            if self._eof:
                return b""
            raise BlockingIOError(errno.EAGAIN, "no shm data ready")
        # Size the buffer to what is actually pending (bounded): zeroing
        # a fixed 64 KiB bytearray per read would dwarf a small frame.
        size = min(bufsize, 1 << 16, rx.pending_bytes())
        out = bytearray(size)
        got = rx.try_read_into(out)
        if got < size:
            del out[got:]
        else:
            while len(out) < bufsize:
                size = min(size, bufsize - len(out))
                chunk = bytearray(size)
                more = rx.try_read_into(chunk)
                if not more:
                    break
                out += chunk[:more] if more < size else chunk
        if rx.peer_waiting:
            self._ring_peer()
        return out

    def sendmsg(self, buffers, ancdata=(), flags: int = 0) -> int:
        """Scatter-gather blocking send; always writes every buffer.

        One doorbell byte per call, not per buffer: a frame's header and
        payload commit together, then the peer is rung once.
        """
        parts = buffers if isinstance(buffers, list) else list(buffers)
        total = 0
        for part in parts:
            total += len(part)
        if len(parts) > 1 and total <= 4096:
            # A small frame's header + payload collapse into one record:
            # the join is nanoseconds, the saved ring reservation is not.
            self._sendall_ring(b"".join(parts), ring_after=False)
        else:
            for part in parts:
                self._sendall_ring(part, ring_after=False)
        if total and self._tx.peer_waiting:
            self._ring_peer()
        return total

    def sendall(self, data) -> None:
        self._sendall_ring(data, ring_after=True)

    def _sendall_ring(self, data, ring_after: bool) -> None:
        view = data if isinstance(data, memoryview) else memoryview(data)
        tx = self._tx
        length = len(view)
        sent = tx.try_write(view)
        if sent < length:
            deadline = (
                None if self._timeout is None else time.monotonic() + self._timeout
            )
            spin = self._spin
            while sent < length:
                if self._eof or self._closed:
                    raise OSError(errno.EPIPE, "shm peer closed")
                wrote = tx.try_write(view[sent:])
                if wrote:
                    sent += wrote
                    spin = self._spin
                    continue
                if spin > 0:
                    spin -= 1
                    _yield_cpu()
                    continue
                # About to wait for space: commit what's in the ring to
                # the peer first, or it may never free any.
                if tx.peer_waiting:
                    self._ring_peer()
                self._park(tx, deadline, "send")
                spin = self._spin
        if ring_after and length and tx.peer_waiting:
            self._ring_peer()

    # ------------------------------------------- non-blocking server path

    def send(self, data) -> int:
        """Non-blocking net-thread write; ``BlockingIOError`` on a full
        ring *after* flagging the peer to ring back when space frees."""
        view = data if isinstance(data, memoryview) else memoryview(data)
        tx = self._tx
        wrote = tx.try_write(view)
        if not wrote:
            if self._eof:
                raise OSError(errno.EPIPE, "shm peer closed")
            tx.set_waiting()
            wrote = tx.try_write(view)  # re-check closes the park race
            if not wrote:
                raise BlockingIOError(errno.EAGAIN, "shm ring full")
        tx.clear_waiting()
        if tx.peer_waiting:
            self._ring_peer()
        return wrote

    # ------------------------------------------------ zero-copy fast path
    #
    # The staged paths above copy every frame twice per direction: the
    # serde buffer into the ring, and the ring into a staging bytearray.
    # The methods below delete both copies. A sender reserves a span of
    # the mapped segment, builds the frame in place, and commits it as
    # one record; a receiver borrows the record's payload as a
    # ``memoryview`` and decodes straight off the ring, consuming (and
    # thereby freeing) the span only when done. View lifetime is strict:
    # a borrow ends at ``consume_borrow`` and a reservation at
    # commit/abort — both release the underlying views, and every
    # borrowed slice must be dead before the segment unmaps.

    #: Capability flag the session/server layers test with ``getattr``.
    zero_copy_capable = True

    def reserve_frame(self, pool=None) -> Optional[InPlaceFrameWriter]:
        """Reserve tx-ring space and wrap it as an in-place frame writer.

        Grants the largest contiguous record span currently available
        (overflow spills to a *pool* bytearray inside the writer), or
        returns ``None`` when the ring can't host even a minimal frame —
        the caller falls back to the staged path. The reservation is
        live until :meth:`commit_frame` / :meth:`abort_frame`.
        """
        tx = self._tx
        view = tx.reserve(tx.capacity)
        if view is None:
            return None
        if len(view) <= _FRAME_HEADER:
            tx.abort()
            return None
        return InPlaceFrameWriter(view, pool)

    def commit_frame(self, in_place: int, spill) -> None:
        """Publish an in-place frame: commit the reserved record, then
        stream the *spill* remainder (if any) as ordinary copied records.
        One doorbell at the end, matching :meth:`sendmsg`."""
        self._tx.commit(in_place)
        if spill:
            self._sendall_ring(spill, ring_after=False)
        if self._tx.peer_waiting:
            self._ring_peer()

    def abort_frame(self) -> None:
        """Roll back a reservation after a failed in-place encode: the
        record was never published, so the connection stays clean."""
        self._tx.abort()

    def send_frame(self, header, payload) -> int:
        """Non-blocking header+payload write as ONE contiguous record.

        The server's reply fast path: a frame that lands in a single
        record is what makes the client's borrowed decode engage. Raises
        ``BlockingIOError`` without side effects when the ring lacks a
        contiguous span — the caller falls back to the queued-send path.
        """
        if self._eof:
            raise OSError(errno.EPIPE, "shm peer closed")
        tx = self._tx
        hlen = len(header)
        total = hlen + len(payload)
        view = tx.reserve(total)
        if view is None or len(view) < total:
            if view is not None:
                tx.abort()
            raise BlockingIOError(errno.EAGAIN, "no contiguous shm ring span")
        view[:hlen] = header
        view[hlen:total] = payload
        tx.commit(total)
        if tx.peer_waiting:
            self._ring_peer()
        return total

    def recv_frame_borrow(self):
        """Blocking client-side borrow of one complete reply frame.

        Returns a ``memoryview`` over the frame *payload* (the 4-byte
        length header already validated and skipped) when the whole
        frame sits in one ring record, or ``None`` when it doesn't (a
        chunked or split frame, EOF) — the caller then falls back to the
        copying :func:`read_frame`, which re-reads from the unconsumed
        cursor. On success the borrow is live: the caller must finish
        with :meth:`consume_borrow` before touching this duplex again.
        """
        rx = self._rx
        deadline = (
            None if self._timeout is None else time.monotonic() + self._timeout
        )
        spin = self._spin
        while True:
            if self._closed:
                raise OSError(errno.EBADF, "shm duplex closed")
            record = rx.peek_record()
            if record is not None:
                break
            if self._eof:
                return None
            if spin > 0:
                spin -= 1
                _yield_cpu()
                continue
            self._park(rx, deadline, "recv")
            spin = self._spin
        if len(record) < _FRAME_HEADER:
            rx.consume(0)
            return None
        (length,) = _FRAME_LEN.unpack_from(record, 0)
        if length > MAX_FRAME_BYTES or _FRAME_HEADER + length > len(record):
            # Oversized announcements fall back too: the copying reader
            # re-reads the same bytes and raises its usual TransportError.
            rx.consume(0)
            return None
        return record[  # nrmi: disable=NRMI036 -- sanctioned handoff: the borrow stays live by contract; the caller must consume_borrow after decoding
            _FRAME_HEADER : _FRAME_HEADER + length
        ]

    def recv_borrow(self, drain: bool = True):
        """Non-blocking net-thread borrow of the next pending record.

        Returns the record's unconsumed payload as a ``memoryview``,
        ``b""`` on EOF, or raises ``BlockingIOError``. With ``drain``
        False the doorbell is left alone (linger-poll variant, readiness
        already known). The borrow is live until :meth:`consume_borrow`;
        the caller must not issue any other read on this duplex while it
        is (the ring rejects them).
        """
        if drain:
            self._drain_doorbell()
        rx = self._rx
        if not rx.readable():
            if self._eof:
                return b""
            raise BlockingIOError(errno.EAGAIN, "no shm data ready")
        return rx.peek_record()  # nrmi: disable=NRMI036 -- sanctioned handoff: net-thread borrow; _drain_completions/_close_conn consume it

    def drain_doorbell(self) -> None:
        """Swallow pending doorbell bytes without touching the ring —
        the only read that is legal while a borrow is live. EOF latches
        internally and surfaces on the next send or ring read."""
        self._drain_doorbell()

    def consume_borrow(self, nbytes: Optional[int] = None) -> None:
        """End the active borrow, freeing *nbytes* of it (default: all)
        back to the producer; rings the peer if it is parked on a full
        ring. ``consume_borrow(0)`` releases without advancing."""
        rx = self._rx
        rx.consume(nbytes)
        if rx.peer_waiting:
            self._ring_peer()

    # ------------------------------------------ net-thread linger polling

    def poll_ready(self) -> bool:
        """Ring-only readability probe — no syscall."""
        return self._rx.readable()

    def poll_send_ready(self) -> bool:
        """Ring-only writability probe — no syscall."""
        return self._tx.writable()

    def unpark_rx(self) -> None:
        """Enter polling mode: with the consumer-waiting flag clear, the
        peer skips the doorbell send entirely — its request path becomes
        two ring writes and zero syscalls."""
        self._rx.clear_waiting()

    def park_rx(self) -> bool:
        """Leave polling mode. Sets the consumer-waiting flag, then
        re-checks the ring once; ``True`` means bytes slipped in during
        the transition and the caller should keep polling."""
        self._rx.set_waiting()
        return self._rx.readable()


def _read_exact_handshake(sock: socket.socket) -> tuple:
    """The fd-bearing handshake header; loops out short reads."""
    msg, fds, _flags, _addr = socket.recv_fds(sock, _HS.size, 1)
    msg = bytearray(msg)
    while 0 < len(msg) < _HS.size:
        more = sock.recv(_HS.size - len(msg))
        if not more:
            break
        msg += more
    return bytes(msg), fds


def _dial_shm(name: str, timeout: Optional[float], spin: int) -> _RingDuplex:
    """Connect to ``shm://<name>``: rendezvous, receive the segment fd,
    map it, and hand back a blocking duplex over the rings."""
    _require_shm()
    path = handshake_path(name)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    fds = []
    try:
        sock.connect(path)
        msg, fds = _read_exact_handshake(sock)
        if len(msg) != _HS.size or not fds:
            raise TransportError(
                f"shm handshake with {name!r} returned no segment"
            )
        magic, version, capacity = _HS.unpack(msg)
        if magic != _MAGIC or version != _VERSION:
            raise TransportError(
                f"shm handshake with {name!r}: unknown segment revision"
            )
        segment = mmap.mmap(fds[0], segment_size(capacity))
    except socket.timeout as exc:
        sock.close()
        raise DeadlineExceededError(f"connect to {path} timed out: {exc}") from exc
    except OSError as exc:
        sock.close()
        raise RetryableError(f"cannot connect to {path}: {exc}") from exc
    except TransportError:
        sock.close()
        raise
    finally:
        for fd in fds:
            try:
                os.close(fd)
            except OSError:
                pass
    tx = producer_view(segment, _c2s_offset(capacity), capacity)
    rx = consumer_view(segment, _s2c_offset(capacity), capacity)
    return _RingDuplex(segment, sock, rx, tx, spin=spin)


class ShmServer(StreamServer):
    """Serves a request handler over shared-memory rings until stopped.

    Each accepted client gets its own fresh segment (a ring pair), so
    connections never contend on ring state. Usable as a context
    manager, exactly like the TCP/UDS servers::

        with ShmServer(handler) as server:
            channel = ShmChannel(server.name)

    Binding probes the rendezvous path first: a live server answers the
    probe and the bind fails with "in use"; a dead one leaves the
    connect refused, and the stale socket is reclaimed. ``stop()``
    unlinks the path only after the listener has closed — and only if it
    is still *our* socket — so a successor can rebind immediately and is
    never unlinked by a late-stopping predecessor.

    Keyword *server_options* pass through to the staged stream server:
    ``workers``, ``queue_capacity``, ``max_inflight_per_conn``,
    ``overload_policy``, ``partial_read_timeout``, ``metrics``.
    """

    def __init__(
        self,
        handler: RequestHandler,
        name: Optional[str] = None,
        *,
        capacity: int = DEFAULT_RING_CAPACITY,
        **server_options: object,
    ) -> None:
        _require_shm()
        if capacity < 4096 or capacity & (capacity - 1):
            raise TransportError(
                f"shm ring capacity must be a power of two >= 4096: {capacity}"
            )
        self.name = name if name is not None else default_segment_name()
        self.path = handshake_path(self.name)
        self._capacity = capacity
        # The probe→unlink→bind→listen sequence below is a TOCTOU unless
        # serialized: two servers starting on the same name could both
        # judge the path stale, both unlink, and the second bind would
        # silently orphan the first's listener. An exclusive flock on a
        # sibling lock file (held through listen(); also taken around the
        # stop-time unlink) makes reclaim-and-bind atomic. The lock file
        # itself is never unlinked — removing it would let a third
        # starter lock a fresh inode while a waiter holds the old one.
        lock_fd = self._lock_endpoint()
        try:
            self._reclaim_stale()
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.bind(self.path)
            except OSError as exc:
                sock.close()
                raise TransportError(
                    f"cannot bind shm rendezvous socket {self.path!r}: {exc}"
                ) from exc
            try:
                self._bound_ino: Optional[int] = os.stat(self.path).st_ino
            except OSError:
                self._bound_ino = None
            sock.listen(128)
        finally:
            self._unlock_endpoint(lock_fd)
        super().__init__(handler, sock, label="shm", **server_options)

    def _lock_endpoint(self) -> Optional[int]:
        """Exclusive advisory lock on the endpoint's sibling lock file;
        returns the holding fd (None when flock is unavailable)."""
        if fcntl is None:
            return None
        try:
            fd = os.open(self.path + ".lock", os.O_RDWR | os.O_CREAT, 0o600)
        except OSError:
            return None
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:
            os.close(fd)
            return None
        return fd

    @staticmethod
    def _unlock_endpoint(fd: Optional[int]) -> None:
        if fd is None:
            return
        try:
            os.close(fd)  # closing drops the flock
        except OSError:
            pass

    def _reclaim_stale(self) -> None:
        """Distinguish a live predecessor (error out) from a dead one's
        leftover rendezvous socket (unlink and take over)."""
        if not os.path.exists(self.path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(0.25)
        try:
            probe.connect(self.path)
        except OSError:
            try:
                os.unlink(self.path)  # stale: nobody is listening
            except OSError:
                pass
            return
        finally:
            probe.close()
        raise TransportError(
            f"shm endpoint {self.name!r} is in use: a live server answers "
            f"on {self.path!r}"
        )

    @property
    def address(self) -> str:
        return f"shm://{self.name}"

    def _wrap_accepted(self, conn: socket.socket):
        """Per-connection handshake, run inline on the net thread.

        It is strictly one-way — create segment, ship fd, never read —
        so it cannot block the loop on a slow or dead client.
        """
        size = segment_size(self._capacity)
        fd = _create_segment_fd(size)
        try:
            segment = mmap.mmap(fd, size)
        except OSError:
            os.close(fd)
            raise
        rx = tx = None
        try:
            segment[: len(_MAGIC)] = _MAGIC
            rx = consumer_view(
                segment, _c2s_offset(self._capacity), self._capacity
            )
            tx = producer_view(
                segment, _s2c_offset(self._capacity), self._capacity
            )
            # The net thread is permanently selector-parked: every client
            # commit must arrive as a doorbell byte. Declared *before*
            # the fd ships, so even the client's first frame sees it.
            rx.set_waiting()
            socket.send_fds(
                conn, [_HS.pack(_MAGIC, _VERSION, self._capacity)], [fd]
            )
        except OSError:
            # A client that vanished mid-handshake (EPIPE/ECONNRESET from
            # send_fds) must stay an OSError to the accept path: closing
            # the mmap while ring views are still exported over it raises
            # BufferError, which would escape and kill the net thread —
            # so release the views first.
            for side in (rx, tx):
                if side is not None:
                    side.detach()
            try:
                segment.close()
            except BufferError:  # pragma: no cover - detach released all
                pass
            raise
        finally:
            os.close(fd)
        conn.setblocking(False)
        return _RingDuplex(segment, conn, rx, tx)

    def _on_stop(self) -> None:
        # Runs only after the listener closed and the net thread exited.
        # The inode guard keeps a late stop() from unlinking a successor
        # that already reclaimed and rebound the path; the endpoint lock
        # serializes the stat+unlink against a successor's reclaim-and-
        # bind so the guard cannot race it.
        lock_fd = self._lock_endpoint()
        try:
            try:
                if (
                    self._bound_ino is not None
                    and os.stat(self.path).st_ino != self._bound_ino
                ):
                    return
            except OSError:
                return
            try:
                os.unlink(self.path)
            except OSError:
                pass
        finally:
            self._unlock_endpoint(lock_fd)


class ShmChannel(StreamChannel):
    """Client channel over a single pooled shared-memory connection."""

    #: The invocation layer probes this to route eligible calls through
    #: :meth:`request_zero_copy` instead of the staged :meth:`request`.
    supports_zero_copy = True

    def __init__(
        self,
        name: str,
        timeout: Optional[float] = 30.0,
        *,
        spin: int = DEFAULT_SPIN,
    ) -> None:
        super().__init__(timeout=timeout)
        self.name = name
        self._spin = spin

    def _open_socket(self, timeout: Optional[float]) -> _RingDuplex:
        return _dial_shm(self.name, timeout, self._spin)

    def _describe(self) -> str:
        return self.name

    def request_zero_copy(
        self,
        encode,
        consume,
        timeout: Optional[float] = None,
        pool=None,
    ):
        """One exchange with both payload copies deleted.

        *encode(writer)* receives a ``BufferWriter``-shaped object and
        writes one complete request frame payload through it — on the
        fast path that writer targets a tx-ring reservation, so the
        bytes land directly in the mapped segment. *consume(response)*
        receives the reply frame payload — on the fast path a borrowed
        ``memoryview`` over the rx ring — and must extract everything it
        needs before returning: the view is invalidated afterwards.
        Returns whatever *consume* returns.

        Wire bytes are identical to ``request(encoded_frame)``; every
        degraded case (no contiguous reservation, a reply chunked across
        records) falls back to the staged copy path mid-exchange.
        Failure semantics match :meth:`request`: transport errors drop
        the pooled connection and never resend. Exceptions raised by
        *consume* itself (a BUSY reply, an unmarshal failure) propagate
        without dropping the connection — exactly as they would have
        after a staged ``request`` returned.
        """
        with self._lock:
            sock = self._connect(timeout)
            borrowed = False
            try:
                try:
                    if timeout is not None:
                        sock.settimeout(timeout)
                    sent = self._send_zero_copy(sock, encode, pool, timeout)
                    reply = sock.recv_frame_borrow()
                    if reply is None:
                        reply = read_frame(sock, timeout=timeout)
                    else:
                        borrowed = True
                except socket.timeout as exc:
                    self._drop_connection()
                    raise DeadlineExceededError(
                        f"shm exchange timed out: {exc}"
                    ) from exc
                except TransportError:
                    self._drop_connection()
                    raise
                except OSError as exc:
                    self._drop_connection()
                    raise RetryableError(f"shm exchange failed: {exc}") from exc
                self.stats.record(sent=sent, received=len(reply))
                try:
                    return consume(reply)
                finally:
                    if borrowed:
                        borrowed = False
                        try:
                            sock.consume_borrow(_FRAME_HEADER + len(reply))
                        except (OSError, RuntimeError):
                            pass
            finally:
                if timeout is not None and self._sock is not None:
                    self._sock.settimeout(self._timeout)

    @staticmethod
    def _send_zero_copy(sock: _RingDuplex, encode, pool, timeout) -> int:
        """Encode into a ring reservation and commit; staged fallback
        when no reservation is available. Returns frame bytes sent."""
        frame = sock.reserve_frame(pool)
        if frame is None:
            writer = BufferWriter()
            encode(writer)
            payload = writer.raw
            write_frame(sock, payload, timeout=timeout)
            return _FRAME_HEADER + len(payload)
        try:
            encode(frame.writer)
            in_place, spill = frame.finish()
        except BaseException:
            frame.abort()
            sock.abort_frame()
            raise
        spill_len = len(spill) if spill is not None else 0
        try:
            sock.commit_frame(in_place, spill)
        finally:
            if spill is not None and pool is not None:
                pool.release(spill)
        return in_place + spill_len


class PipelinedShmChannel(PipelinedStreamChannel):
    """A shared-memory channel keeping many calls in flight on one ring
    pair; see :class:`repro.transport.stream.PipelinedStreamChannel`."""

    def __init__(
        self,
        name: str,
        timeout: Optional[float] = 30.0,
        *,
        spin: int = DEFAULT_SPIN,
    ) -> None:
        super().__init__(label="shm", timeout=timeout)
        self.name = name
        self._spin = spin

    def _open_socket(self, timeout: Optional[float]) -> _RingDuplex:
        return _dial_shm(self.name, timeout, self._spin)

    def _describe(self) -> str:
        return self.name
