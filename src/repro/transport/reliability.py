"""Failure policy for remote calls: retry, deadlines, breakers, dedup.

RAFDA and the transmission-policy line of work argue that *failure policy
belongs in the middleware*, separated from both application logic and the
raw transport. This module is that layer for the reproduction:

:class:`RetryPolicy`
    How many attempts a call gets, how long the exponential backoff
    between them is (with deterministic jitter), and the per-call
    deadline shared by all attempts.

:class:`CircuitBreaker` / :class:`BreakerRegistry`
    A per-address closed → open → half-open state machine that fails
    fast when an address keeps breaking, instead of adding retry load
    to a struggling peer.

:class:`ReplyCache`
    The server half of at-most-once: a bounded LRU of encoded replies
    keyed by client-generated call ID, so a retried request whose first
    attempt already executed returns the original reply instead of
    re-running the method.

:func:`call_with_retry`
    The driver: runs a send callable under a policy, a breaker, and a
    clock. It is transport- and protocol-agnostic — the caller supplies
    a closure that stamps the attempt counter and enforces the
    remaining deadline as a socket timeout.

Everything here is deterministic under test: jitter draws from
:class:`~repro.util.rng.DeterministicRandom`, time comes from an
injectable :class:`~repro.util.clock.Clock`, and sleeping is a
parameter.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    RetryableError,
    is_retryable,
)
from repro.util.clock import SYSTEM_CLOCK, Clock
from repro.util.rng import DeterministicRandom


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget, backoff shape, and deadline for one remote call.

    ``max_attempts``
        Total tries including the first; 1 means "never resend" (the
        default, and the only safe setting without call-ID dedup on the
        server). Capped at 255 — the attempt counter is one wire byte.
    ``base_delay`` / ``multiplier`` / ``max_delay``
        Exponential backoff: attempt *n* (1-based retry index) waits
        ``min(base_delay * multiplier**(n-1), max_delay)`` seconds,
        scaled by jitter.
    ``jitter``
        Fraction of the delay randomized symmetrically: 0.5 means each
        wait is uniform in [0.5·d, 1.5·d]. Jitter decorrelates retry
        storms from many clients.
    ``deadline``
        Wall-clock budget in seconds for the *whole call* — every
        attempt, every backoff sleep. ``None`` disables deadline
        enforcement.
    """

    max_attempts: int = 1
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not 1 <= self.max_attempts <= 255:
            raise ValueError(
                f"max_attempts must be in [1, 255], got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    def backoff_delay(self, retry_index: int, rng: DeterministicRandom) -> float:
        """Seconds to wait before retry number *retry_index* (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        delay = min(
            self.base_delay * self.multiplier ** (retry_index - 1), self.max_delay
        )
        if self.jitter:
            delay *= 1.0 - self.jitter + 2.0 * self.jitter * rng.random()
        return delay

    @property
    def enabled(self) -> bool:
        """Whether this policy changes anything over a bare send."""
        return self.max_attempts > 1 or self.deadline is not None


#: The no-op policy: one attempt, no deadline — exactly the pre-retry
#: behaviour, so it is the configuration default.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """When a breaker opens and how long it stays open.

    ``failure_threshold``
        Consecutive transport failures that trip the breaker.
    ``reset_timeout``
        Seconds the breaker stays open before allowing one half-open
        probe.
    """

    failure_threshold: int = 5
    reset_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")


class CircuitBreaker:
    """Closed → open → half-open state machine for one address.

    * **closed**: calls flow; consecutive failures are counted.
    * **open**: calls fail fast with :class:`CircuitOpenError` until
      ``reset_timeout`` elapses.
    * **half-open**: one probe call is allowed through; success closes
      the breaker, failure re-opens it (and restarts the timeout).

    Thread-safe; ``on_transition(old, new)`` (if given) fires under the
    lock so observers see transitions in order.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        address: str,
        policy: CircuitBreakerPolicy,
        clock: Clock = SYSTEM_CLOCK,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.address = address
        self.policy = policy
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _transition(self, new_state: str) -> None:
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(old_state, new_state)

    def _maybe_half_open(self) -> None:
        if (
            self._state == self.OPEN
            and self._clock.now() - self._opened_at >= self.policy.reset_timeout
        ):
            self._transition(self.HALF_OPEN)

    def before_call(self) -> None:
        """Gate one call attempt; raises :class:`CircuitOpenError` when open."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.OPEN:
                retry_after = max(
                    0.0,
                    self.policy.reset_timeout
                    - (self._clock.now() - self._opened_at),
                )
                raise CircuitOpenError(self.address, retry_after)

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state == self.HALF_OPEN:
                # The probe failed: straight back to open, fresh timeout.
                self._opened_at = self._clock.now()
                self._transition(self.OPEN)
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.policy.failure_threshold:
                self._opened_at = self._clock.now()
                self._transition(self.OPEN)


class BreakerRegistry:
    """Lazily creates one :class:`CircuitBreaker` per address."""

    def __init__(
        self,
        policy: Optional[CircuitBreakerPolicy],
        clock: Clock = SYSTEM_CLOCK,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        self._policy = policy
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker_for(self, address: str) -> Optional[CircuitBreaker]:
        """The breaker guarding *address*; None when breakers are disabled."""
        if self._policy is None:
            return None
        breaker = self._breakers.get(address)
        if breaker is not None:
            return breaker
        with self._lock:
            breaker = self._breakers.get(address)
            if breaker is None:
                callback = None
                if self._on_transition is not None:
                    outer = self._on_transition

                    def callback(old: str, new: str, _address: str = address) -> None:
                        outer(_address, old, new)

                breaker = CircuitBreaker(
                    address, self._policy, clock=self._clock, on_transition=callback
                )
                self._breakers[address] = breaker
            return breaker

    def states(self) -> Dict[str, str]:
        with self._lock:
            breakers = dict(self._breakers)
        return {address: b.state for address, b in breakers.items()}


class ReplyCache:
    """Bounded LRU of encoded replies keyed by call ID (server side).

    This is what upgrades a blind resend into at-most-once: when a
    retried request's call ID is present, the dispatcher returns the
    cached reply and the method does **not** run again — the caller's
    restore phase then applies exactly one execution's mutations.

    The cache is an LRU over *completed* calls only; a retry racing the
    first attempt's execution is not deduplicated (the synchronous
    client never does this — it retries only after the previous attempt
    failed). ``max_entries=0`` disables caching entirely.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[int, bytes]" = OrderedDict()
        self.hits = 0
        self.stores = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, call_id: int) -> Optional[bytes]:
        with self._lock:
            reply = self._entries.get(call_id)
            if reply is None:
                return None
            self._entries.move_to_end(call_id)
            self.hits += 1
            return reply

    def put(self, call_id: int, reply: bytes) -> None:
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[call_id] = reply
            self._entries.move_to_end(call_id)
            self.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


def call_with_retry(
    send: Callable[[int, Optional[float]], bytes],
    policy: RetryPolicy,
    rng: DeterministicRandom,
    breaker: Optional[CircuitBreaker] = None,
    clock: Clock = SYSTEM_CLOCK,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> bytes:
    """Run ``send(attempt, remaining_deadline)`` under *policy*.

    *send* receives the 0-based attempt number and the seconds left in
    the call's deadline (None when no deadline) — it must thread that
    budget down as a socket timeout. Retries happen only on
    :class:`RetryableError`; :class:`DeadlineExceededError` and
    :class:`CircuitOpenError` are terminal, as is any non-transport
    exception. *on_retry* (if given) observes ``(attempt, error,
    delay)`` before each backoff sleep.
    """
    deadline_at = (
        None if policy.deadline is None else clock.now() + policy.deadline
    )
    attempt = 0
    while True:
        if breaker is not None:
            breaker.before_call()
        remaining = None
        if deadline_at is not None:
            remaining = deadline_at - clock.now()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"call deadline of {policy.deadline}s exhausted "
                    f"after {attempt} attempt(s)"
                )
        try:
            response = send(attempt, remaining)
        except DeadlineExceededError:
            if breaker is not None:
                breaker.record_failure()
            raise
        except Exception as exc:  # noqa: BLE001 - classified below
            if isinstance(exc, RetryableError) and breaker is not None:
                breaker.record_failure()
            if not is_retryable(exc):
                raise
            attempt += 1
            if attempt >= policy.max_attempts:
                raise
            if deadline_at is not None and clock.now() >= deadline_at:
                raise DeadlineExceededError(
                    f"call deadline of {policy.deadline}s exhausted "
                    f"after {attempt} attempt(s)"
                ) from exc
            delay = policy.backoff_delay(attempt, rng)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
        else:
            if breaker is not None:
                breaker.record_success()
            return response
