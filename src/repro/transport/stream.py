"""Shared machinery for byte-stream transports (TCP, Unix sockets).

Everything above the socket — framing auto-detection, serving, graceful
drain-then-force-close shutdown, the pooled client channel, and the
multi-call-in-flight pipelined channel — is identical whether bytes
travel over ``AF_INET`` or ``AF_UNIX``. This module holds that machinery
once; :mod:`repro.transport.tcp` and :mod:`repro.transport.uds` supply
only the endpoint-specific pieces: how a listener is bound, how a client
socket is opened, how the endpoint is named in addresses and errors.

The default server core is the **staged** design in
:mod:`repro.transport.netloop` (re-exported here as ``StreamServer``):
one selector-based net thread frames requests, a bounded job queue feeds
N worker threads, and overload behaviour (BUSY shedding, in-flight caps,
graceful drain) is explicit policy. The classic thread-per-connection
server survives as :class:`ThreadedStreamServer`, kept as the
benchmarking baseline the concurrency sweep compares against — the model
of classic RMI's connection handling, one thread per accepted socket.

The plain client channel keeps one connection and serializes requests
over it with a lock; the pipelined channel keeps many calls in flight on
one connection, demultiplexed by correlation id. Neither ever resends on
its own: a broken exchange surfaces as
:class:`~repro.errors.RetryableError` and only the retry layer
(:mod:`repro.transport.reliability`), which stamps a call ID the server
can deduplicate, may send the same request twice.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

from repro.errors import DeadlineExceededError, RetryableError, TransportError
from repro.serde.schema import SchemaSession
from repro.transport.base import (
    Channel,
    RequestHandler,
    TransportSession,
    call_handler,
)
from repro.transport.framing import (
    PIPELINE_MAGIC,
    PIPELINE_PREAMBLE,
    PIPELINE_VERSION,
    read_frame,
    read_frame_body,
    read_frame_corr,
    recv_exact,
    write_frame,
    write_frame_corr,
)
from repro.transport.netloop import StagedStreamServer as StreamServer
from repro.util.metrics import Gauge

__all__ = [
    "StreamServer",
    "ThreadedStreamServer",
    "StreamChannel",
    "PipelinedStreamChannel",
]


class ThreadedStreamServer:
    """Thread-per-connection server core, kept as the scaling baseline.

    This is the classic model: an accept thread spawns one thread per
    connection, which reads, executes, and writes in a loop. It is the
    comparison point for the staged :class:`StreamServer`'s concurrency
    sweep; production paths use the staged core.

    Subclasses pass an already-bound, listening socket plus a *label*
    used for thread naming, and implement :attr:`address` (the string a
    resolver can dial) plus optionally :meth:`_configure_connection`
    (per-accepted-socket options) and :meth:`_on_stop` (endpoint
    cleanup, e.g. unlinking a Unix socket path).
    """

    #: Default seconds ``stop()`` waits for in-flight requests to drain.
    STOP_GRACE_SECONDS = 2.0
    #: Workers concurrently executing requests of one pipelined connection.
    PIPELINE_WORKERS = 8
    #: Cap on frames admitted but not yet answered per pipelined connection.
    PIPELINE_MAX_IN_FLIGHT = 64

    def __init__(
        self, handler: RequestHandler, sock: socket.socket, label: str
    ) -> None:
        self._handler = handler
        self._sock = sock
        self._label = label
        self._stopping = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{label}-accept", daemon=True
        )
        self._conn_lock = threading.Lock()
        self._conn_threads: set[threading.Thread] = set()
        self._conn_socks: set[socket.socket] = set()
        self._accept_thread.start()

    @property
    def address(self) -> str:
        raise NotImplementedError

    def _configure_connection(self, conn: socket.socket) -> None:
        """Per-connection socket options (e.g. TCP_NODELAY); default none."""

    def _on_stop(self) -> None:
        """Endpoint cleanup after the listener closes; default none."""

    @property
    def live_connections(self) -> int:
        """Connections currently being served (reaped handles excluded)."""
        with self._conn_lock:
            return len(self._conn_threads)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                return  # listening socket closed during shutdown
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"{self._label}-conn",
                daemon=True,
            )
            with self._conn_lock:
                if self._stopping.is_set():
                    # Accepted during drain: never served, so give the
                    # peer a deterministic clean close instead of letting
                    # the socket leak until process exit.
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    conn.close()
                    return
                self._conn_threads.add(thread)
                self._conn_socks.add(conn)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                self._configure_connection(conn)
                # Framing auto-detect: a pipelined client opens with the
                # 8-byte preamble; interpreted as a length header its first
                # four bytes would announce an illegally oversized frame,
                # so plain clients can never collide with it.
                try:
                    first = bytes(recv_exact(conn, 4))
                except TransportError:
                    return
                if first == PIPELINE_MAGIC:
                    try:
                        version = bytes(recv_exact(conn, 4))
                    except TransportError:
                        return
                    if version != PIPELINE_VERSION:
                        return  # unknown pipeline revision: drop
                    self._serve_pipelined(conn)
                    return
                self._serve_sequential(conn, first)
        finally:
            # Reap this handle so the sets track only live connections.
            with self._conn_lock:
                self._conn_threads.discard(threading.current_thread())
                self._conn_socks.discard(conn)

    def _serve_sequential(self, conn: socket.socket, first_header: bytes) -> None:
        """Classic one-request-at-a-time framing (*first_header* pre-read)."""
        header: Optional[bytes] = first_header
        # Per-connection state (schema rx cache): dies with the socket, so
        # a reconnecting client renegotiates from scratch.
        session = TransportSession()
        while not self._stopping.is_set():
            try:
                if header is not None:
                    request = read_frame_body(conn, header)
                    header = None
                else:
                    request = read_frame(conn)
            except TransportError:
                return  # peer closed or connection broke
            try:
                response = call_handler(self._handler, request, session)
            except Exception:  # noqa: BLE001 - handler must not kill server
                # The RMI dispatcher encodes application errors itself;
                # anything escaping to here is a protocol bug, and the
                # only safe move is dropping the connection.
                return
            try:
                write_frame(conn, response)
            except TransportError:
                return

    def _serve_pipelined(self, conn: socket.socket) -> None:
        """Serve correlation-tagged frames, many requests in flight.

        Each request runs on a worker; responses go out in completion
        order under a write lock, tagged with the request's correlation
        id so the client's reader thread can demultiplex them.
        """
        write_lock = threading.Lock()
        admission = threading.Semaphore(self.PIPELINE_MAX_IN_FLIGHT)
        broken = threading.Event()
        # One session shared by all workers of this connection: the
        # underlying schema rx cache is thread-safe, and pipelined frames
        # of one connection form one negotiated session.
        session = TransportSession()
        executor = ThreadPoolExecutor(
            max_workers=self.PIPELINE_WORKERS,
            thread_name_prefix=f"{self._label}-pipe",
        )

        def work(corr_id: int, request: bytearray) -> None:
            try:
                try:
                    response = call_handler(self._handler, request, session)
                except Exception:  # noqa: BLE001 - same contract as sequential
                    broken.set()
                    return
                try:
                    with write_lock:
                        write_frame_corr(conn, corr_id, response)
                except TransportError:
                    broken.set()
            finally:
                admission.release()

        try:
            while not self._stopping.is_set() and not broken.is_set():
                try:
                    corr_id, request = read_frame_corr(conn)
                except TransportError:
                    return
                admission.acquire()
                executor.submit(work, corr_id, request)
        finally:
            # Dropping the connection (the context manager in the caller
            # closes it) fails the client's pending calls; workers still
            # running just hit a dead socket.
            executor.shutdown(wait=False)

    def stop(self, grace: Optional[float] = None) -> None:
        """Stop accepting, drain in-flight requests, then force-close.

        Connection threads get *grace* seconds (default
        :attr:`STOP_GRACE_SECONDS`) to finish the request they are
        serving; any connection still open afterwards is closed out from
        under its thread, which unblocks its pending ``read_frame``.
        """
        if grace is None:
            grace = self.STOP_GRACE_SECONDS
        self._stopping.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=grace)
        deadline = time.monotonic() + grace
        with self._conn_lock:
            threads = list(self._conn_threads)
        for thread in threads:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)
        with self._conn_lock:
            stragglers = list(self._conn_socks)
        for conn in stragglers:
            # Grace expired: half-close first so the peer observes a
            # clean EOF (not a reset racing its last write), then close.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        with self._conn_lock:
            threads = list(self._conn_threads)
        for thread in threads:
            thread.join(timeout=0.1)
        # Endpoint cleanup (e.g. UDS unlink) strictly after the listener
        # closed above — a successor rebinding the endpoint must never be
        # unlinked by this server's late shutdown.
        self._on_stop()

    def __enter__(self) -> "ThreadedStreamServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class StreamChannel(Channel):
    """Client channel over a single pooled stream connection.

    Subclasses implement :meth:`_open_socket` (dial the endpoint and
    apply per-socket options) and :meth:`_describe` (the endpoint as it
    should read in error messages).
    """

    def __init__(self, timeout: Optional[float] = 30.0) -> None:
        super().__init__()
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        # Schema-cache negotiation state; reset whenever the pooled
        # connection drops so the next connection renegotiates from zero.
        self.schema_session = SchemaSession()

    def _open_socket(self, timeout: Optional[float]) -> socket.socket:
        """A connected socket, or :class:`DeadlineExceededError` /
        :class:`RetryableError` describing why dialing failed."""
        raise NotImplementedError

    def _describe(self) -> str:
        raise NotImplementedError

    def _connect(self, timeout: Optional[float] = None) -> socket.socket:
        if self._sock is None:
            connect_timeout = timeout if timeout is not None else self._timeout
            sock = self._open_socket(connect_timeout)
            # Dialing may leave the connect timeout on the socket;
            # per-request deadlines are applied by the framing layer.
            sock.settimeout(self._timeout)
            self._sock = sock
        return self._sock

    def request(self, payload: bytes, timeout: Optional[float] = None) -> bytes:
        """One request/response exchange; *never* resends on failure.

        A broken pooled connection surfaces as
        :class:`~repro.errors.RetryableError` — the connection is dropped
        so the next attempt reconnects, but resending is the retry
        layer's decision (it attaches a call ID so the server can
        deduplicate). A blind resend here would silently run
        non-idempotent methods twice.
        """
        with self._lock:
            sock = self._connect(timeout)
            try:
                write_frame(sock, payload, timeout=timeout)
                response = read_frame(sock, timeout=timeout)
            except TransportError:
                self._drop_connection()
                raise
            finally:
                if timeout is not None and self._sock is not None:
                    # Restore the pooled connection's default timeout so a
                    # later deadline-free request does not inherit ours.
                    try:
                        self._sock.settimeout(self._timeout)
                    except OSError:
                        pass
            self.stats.record(sent=len(payload), received=len(response))
            return response

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            # The server's per-connection schema cache died with the
            # socket: forget ours too so nothing references stale ids.
            self.schema_session.reset()

    def close(self) -> None:
        with self._lock:
            self._drop_connection()


class _PendingReply:
    """One in-flight call's rendezvous with the reader thread."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[bytearray] = None
        self.error: Optional[Exception] = None


class PipelinedStreamChannel(Channel):
    """A stream channel keeping many calls in flight on one connection.

    Where :class:`StreamChannel` serializes callers behind a lock for the
    whole request/response exchange, this channel only serializes the
    *send*; a background reader thread demultiplexes replies to their
    callers by the correlation id every frame carries. Concurrent callers
    therefore share one connection without head-of-line blocking — a
    sparse delta reply overtakes a bulky full-map reply still streaming
    out of the server.

    Correlation ids are a transport concern and deliberately distinct
    from the RMI layer's at-most-once call IDs: they tag *frames* on one
    connection (every operation, PING and FIELD_GET included), while call
    IDs identify *calls* across connections and retries.

    Failure semantics match :class:`StreamChannel`: a broken connection
    fails every pending call with :class:`~repro.errors.RetryableError`
    and the next request reconnects; this channel never resends.

    Subclasses implement :meth:`_open_socket` / :meth:`_describe` as for
    :class:`StreamChannel`, plus *label* for thread/gauge naming.
    """

    def __init__(self, label: str, timeout: Optional[float] = 30.0) -> None:
        super().__init__()
        self._label = label
        self._timeout = timeout
        self._state_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._pending: Dict[int, _PendingReply] = {}
        self._corr = itertools.count(1)
        # Schema-cache negotiation state; reset whenever the shared
        # connection fails so the next connection renegotiates from zero.
        self.schema_session = SchemaSession()
        #: Peak number of simultaneously in-flight calls (observability).
        self.max_in_flight = 0
        #: Live gauge of calls currently awaiting replies.
        self.in_flight_gauge = Gauge(f"{label}.pipelined.in_flight")

    def _open_socket(self, timeout: Optional[float]) -> socket.socket:
        raise NotImplementedError

    def _describe(self) -> str:
        raise NotImplementedError

    def _ensure_connected(self, timeout: Optional[float]) -> socket.socket:
        with self._state_lock:
            if self._sock is not None:
                return self._sock
            connect_timeout = timeout if timeout is not None else self._timeout
            sock = self._open_socket(connect_timeout)
            # The reader thread blocks in recv with no socket timeout;
            # per-call deadlines are enforced on the caller's event wait
            # instead, so a slow call never breaks the shared connection.
            sock.settimeout(None)
            try:
                sock.sendall(PIPELINE_PREAMBLE)
            except OSError as exc:
                try:
                    sock.close()
                except OSError:
                    pass
                raise RetryableError(f"pipeline handshake failed: {exc}") from exc
            self._sock = sock
            reader = threading.Thread(
                target=self._read_loop,
                args=(sock,),
                name=f"{self._label}-pipe-reader",
                daemon=True,
            )
            reader.start()
            return sock

    def _read_loop(self, sock: socket.socket) -> None:
        try:
            while True:
                corr_id, frame = read_frame_corr(sock)
                with self._state_lock:
                    waiter = self._pending.pop(corr_id, None)
                    self.in_flight_gauge.set(len(self._pending))
                if waiter is not None:
                    waiter.response = frame
                    waiter.event.set()
                # An unknown id is a reply whose caller already timed out
                # and abandoned the wait: drop it.
        except Exception as exc:  # noqa: BLE001 - all reader exits fail pending
            self._fail_connection(sock, exc)

    def _fail_connection(self, sock: socket.socket, exc: Exception) -> None:
        with self._state_lock:
            if self._sock is sock:
                self._sock = None
            pending = list(self._pending.values())
            self._pending.clear()
            self.in_flight_gauge.set(0)
        self.schema_session.reset()
        try:
            sock.close()
        except OSError:
            pass
        for waiter in pending:
            waiter.error = RetryableError(f"pipelined connection lost: {exc}")
            waiter.event.set()

    def request(self, payload: bytes, timeout: Optional[float] = None) -> bytes:
        """One call over the shared connection; safe to invoke from many
        threads concurrently. Never resends (see :class:`StreamChannel`)."""
        sock = self._ensure_connected(timeout)
        corr_id = next(self._corr) & 0xFFFFFFFF
        waiter = _PendingReply()
        with self._state_lock:
            if self._sock is not sock:
                raise RetryableError("pipelined connection lost before send")
            self._pending[corr_id] = waiter
            in_flight = len(self._pending)
            self.in_flight_gauge.set(in_flight)
            if in_flight > self.max_in_flight:
                self.max_in_flight = in_flight
        try:
            with self._send_lock:
                write_frame_corr(sock, corr_id, payload)
        except TransportError as exc:
            with self._state_lock:
                self._pending.pop(corr_id, None)
            self._fail_connection(sock, exc)
            raise
        wait_budget = timeout if timeout is not None else self._timeout
        if not waiter.event.wait(wait_budget):
            with self._state_lock:
                self._pending.pop(corr_id, None)
                self.in_flight_gauge.set(len(self._pending))
            raise DeadlineExceededError(
                f"no reply from {self._describe()} within {wait_budget}s"
            )
        if waiter.error is not None:
            raise waiter.error
        response = waiter.response
        self.stats.record(sent=len(payload), received=len(response))
        return response

    @property
    def in_flight(self) -> int:
        with self._state_lock:
            return len(self._pending)

    def close(self) -> None:
        with self._state_lock:
            sock = self._sock
            self._sock = None
        self.schema_session.reset()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
            # The reader thread notices the closed socket and fails any
            # still-pending calls through _fail_connection.
