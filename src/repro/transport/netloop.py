"""The staged event-loop server core: net loop → bounded queue → workers.

One selector-driven **net thread** owns every socket: it accepts
connections, reads bytes without blocking, assembles frames (plain and
pipelined framing auto-detected per connection exactly like the classic
thread-per-connection server), and writes replies back. Execution happens
on N **worker threads** that block on a bounded job queue; completed
replies travel back to the net thread through a completion queue and a
wake pipe. At rest nothing busy-polls: the net thread blocks in
``select`` and workers block in the queue's condition variable (the
Queueing design — one net thread, bounded workers, blocking waits). The
one bounded exception is doorbell (shm) connections: after traffic the
net thread *linger-polls* their rings for a short window — clearing the
consumer-waiting flag so active clients skip the doorbell syscall
entirely — and re-parks in ``select`` once the window passes quiet.

Overload behaviour is explicit policy, not an accident of threading:

* **bounded queue** — at most ``queue_capacity`` requests wait for a
  worker. Under ``overload_policy="shed"`` a request arriving at a full
  queue is answered immediately with the two-byte BUSY frame — the
  payload is never deserialized, so shedding stays O(1) however large
  the rejected call was. Under ``"block"`` the frame waits at its
  connection and the net thread stops *reading* that connection once its
  backlog fills, pushing backpressure into the kernel socket buffers.
* **per-connection in-flight cap** — a pipelined client may keep at most
  ``max_inflight_per_conn`` calls executing; beyond that its frames
  queue locally and reads pause, so one aggressive client cannot occupy
  every worker.
* **graceful drain** — ``stop(grace)`` closes the listener, stops
  reading, answers already-parsed-but-unsubmitted frames with BUSY, and
  lets queued/executing work finish and flush within the grace budget;
  at the deadline the remainder is rejected with BUSY and connections
  are force-closed. The drain outcome is deterministic: every accepted
  connection ends with a reply, a BUSY, or a clean close.
* **partial-frame deadline** — a connection sitting on an incomplete
  frame (slow-loris) longer than ``partial_read_timeout`` is reaped.

The BUSY frame is the one protocol byte this layer emits itself
(:func:`repro.rmi.protocol.busy_response` — status ``BUSY`` + reason),
the transport-level analogue of an HTTP 503 sent by the listener.

Net-thread discipline: every method reachable from the ``select`` loop
must be non-blocking — no handler execution, no ``time.sleep``, no
blocking frame reads, no blocking queue waits. ``nrmi-lint`` rule
NRMI034 enforces this statically.
"""

from __future__ import annotations

import collections
import selectors
import socket
import struct
import threading
import time
from typing import Deque, Dict, Optional, Tuple

from repro.errors import ServerBusyError, TransportError
from repro.rmi.protocol import busy_response
from repro.transport.base import (
    RequestHandler,
    TransportSession,
    call_handler,
)
from repro.transport.framing import (
    MAX_FRAME_BYTES,
    PIPELINE_MAGIC,
    PIPELINE_VERSION,
)
from repro.util.metrics import MetricsRegistry
from repro.util.ring import yield_cpu as _yield_cpu

_LEN = struct.Struct(">I")
_HEADER_SIZE = _LEN.size

#: Bytes pulled off a readable socket per event — large enough to drain a
#: pipelined burst in few syscalls, small enough to bound per-event work.
_RECV_CHUNK = 256 * 1024

_BUSY_QUEUE_FULL = busy_response(ServerBusyError.QUEUE_FULL)
_BUSY_DRAINING = busy_response(ServerBusyError.DRAINING)

#: Selector-key sentinels for the two non-connection file objects.
_LISTENER = object()
_WAKER = object()


class _FramingViolation(Exception):
    """Peer sent bytes no framing accepts (oversized length, bad magic)."""


class _Connection:
    """Per-connection state, owned exclusively by the net thread.

    No locks: every field is read and written only on the net thread.
    Workers refer to a connection solely as an opaque token inside job
    and completion tuples.
    """

    __slots__ = (
        "sock",
        "fd",
        "session",
        "framing",
        "inbuf",
        "backlog",
        "inflight",
        "out",
        "out_offset",
        "registered",
        "closed",
        "last_progress",
        "doorbell",
        "hot_until",
        "zero_copy",
        "borrow",
    )

    def __init__(self, sock: socket.socket, now: float) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        #: Duplexes that signal write space via doorbell *reads* (shm).
        self.doorbell = bool(getattr(sock, "doorbell_interest", False))
        #: Duplexes whose rings support reserve/commit and borrow/consume
        #: (shm): requests can be handed to workers as borrowed ring
        #: slices and replies written in place as one record.
        self.zero_copy = bool(getattr(sock, "zero_copy_capable", False))
        #: Size of the ring record a worker currently borrows (0 = none).
        #: While set, every ring read on this connection is forbidden —
        #: the span is freed in ``_drain_completions`` once the reply
        #: proves the worker is done with the view.
        self.borrow = 0
        #: Monotonic deadline of this connection's linger-poll window
        #: (doorbell duplexes only; 0.0 = not currently hot).
        self.hot_until = 0.0
        # Schema rx cache etc.: dies with the socket, shared by every
        # worker executing this connection's frames (thread-safe inside).
        self.session = TransportSession()
        self.framing: Optional[str] = None  # None until auto-detected
        self.inbuf = bytearray()
        #: Parsed frames not yet submitted: (corr_id or None, payload).
        self.backlog: Deque[Tuple[Optional[int], bytes]] = collections.deque()
        #: Frames submitted to the queue / executing, reply not yet queued.
        self.inflight = 0
        #: Outbound byte segments awaiting write, FIFO.
        self.out: Deque[memoryview] = collections.deque()
        self.out_offset = 0
        #: Current selector interest mask (0 = not registered).
        self.registered = 0
        self.closed = False
        self.last_progress = now


class _BoundedJobQueue:
    """The stage boundary: net thread pushes without blocking, workers
    block to pop. Capacity is the overload-policy knob, not a guess."""

    #: Yield-spin rounds one worker lingers on an empty queue before the
    #: condition-variable wait. While it spins, a push costs no futex
    #: wake (``notify`` with no waiters is lock-only), and the pop costs
    #: no futex sleep — the two syscalls otherwise paid per request.
    POP_SPIN = 500

    def __init__(self, capacity: int, depth_gauge, active_gauge) -> None:
        self._capacity = capacity
        self._items: Deque[tuple] = collections.deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._active = 0
        #: Set by the net loop while it linger-polls doorbell rings: the
        #: whole pipeline is in low-latency mode, so one worker spins too
        #: and the queue handoff sheds its futex round trip. Off (the
        #: default) workers block immediately — kernel-wakeup transports
        #: gain nothing from a spinner, it is pure scheduling noise.
        self.spin_hot = False
        #: True while some worker holds the (single) spin slot; plain
        #: read-test-then-set under the GIL — the worst case of a lost
        #: race is two spinners for one window, which is only wasted
        #: yields, never a lost job.
        self._spinning = False
        self._depth_gauge = depth_gauge
        self._active_gauge = active_gauge

    def try_push(self, job: tuple) -> bool:
        """Admit *job* unless the queue is full or closed; never blocks."""
        with self._lock:
            if self._closed or len(self._items) >= self._capacity:
                return False
            self._items.append(job)
            self._depth_gauge.set(len(self._items))
            if not self._spinning:
                # With a spinner armed the notify would wake a second
                # worker that loses the race and re-sleeps — a futex
                # round trip per request for nothing. The spinner's
                # post-spin locked re-check makes the skip safe, and
                # ``pop`` cascades a notify when items are left over.
                self._not_empty.notify()
            return True

    def pop(self) -> Optional[tuple]:
        """Blocking take for workers; None once closed and empty."""
        if (
            self.spin_hot
            and not self._items
            and not self._closed
            and not self._spinning
        ):
            # Hot-path linger, queue edition: one worker stays runnable
            # for a bounded window so the next job starts without a
            # condvar sleep/wake round trip. Deque reads are atomic;
            # the locked path below re-checks everything regardless.
            self._spinning = True
            try:
                for _ in range(self.POP_SPIN):
                    if self._items or self._closed or not self.spin_hot:
                        break
                    _yield_cpu()
            finally:
                self._spinning = False
        with self._not_empty:
            while not self._items and not self._closed:
                self._not_empty.wait()
            if not self._items:
                return None
            job = self._items.popleft()
            self._active += 1
            self._depth_gauge.set(len(self._items))
            self._active_gauge.set(self._active)
            if self._items and not self._spinning:
                # Baton pass: a push during a spin window skips its
                # notify, so whoever takes an item wakes the next worker
                # while a backlog remains.
                self._not_empty.notify()
            return job

    def task_done(self) -> None:
        with self._lock:
            self._active -= 1
            self._active_gauge.set(self._active)

    def drain(self) -> list:
        """Remove and return every not-yet-started job (drain rejection)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self._depth_gauge.set(0)
            return items

    def close(self) -> None:
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def outstanding(self) -> int:
        """Jobs queued plus jobs executing (drain-completion condition)."""
        with self._lock:
            return len(self._items) + self._active

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class StagedStreamServer:
    """Serves a request handler over a stream socket until stopped.

    Subclasses pass an already-bound, listening socket plus a *label*
    used for thread naming, and implement :attr:`address` (the string a
    resolver can dial) plus optionally :meth:`_configure_connection`
    (per-accepted-socket options) and :meth:`_on_stop` (endpoint
    cleanup, e.g. unlinking a Unix socket path — called only after the
    listener and net thread are fully down, so a successor reclaiming
    the endpoint can never be unlinked by a late stop).
    """

    #: Default seconds ``stop()`` lets in-flight work drain.
    STOP_GRACE_SECONDS = 2.0
    #: Default worker threads executing requests.
    DEFAULT_WORKERS = 8
    #: Default bounded job-queue capacity (requests awaiting a worker).
    DEFAULT_QUEUE_CAPACITY = 64
    #: Default cap on frames admitted but not yet answered per connection.
    DEFAULT_MAX_INFLIGHT_PER_CONN = 64
    #: Default seconds a partial frame may sit before the conn is reaped.
    DEFAULT_PARTIAL_READ_TIMEOUT = 30.0
    #: Seconds a doorbell (shm) connection stays in the linger poll after
    #: its last traffic. Long enough to cover a sequential caller's
    #: think-time between round trips, short enough that an idle
    #: connection is back to costing zero CPU within a few milliseconds.
    DOORBELL_LINGER_SECONDS = 0.002
    #: Linger-poll rounds between selector services: bounds how long an
    #: accept or doorbell EOF can wait behind ring polling.
    POLL_ROUNDS = 32
    #: Longest the net thread sleeps in ``select`` while any doorbell
    #: connection exists. The doorbell handshake (peer publishes, then
    #: loads our waiting flag; we set the flag, then re-check the ring)
    #: is a store→load pattern pure Python cannot fence — cross-process
    #: on a weakly-ordered CPU the two sides can cross and the wakeup
    #: byte is never sent. Waking on this bound and re-checking the
    #: rings (:meth:`_doorbell_backstop`) turns that lost wakeup into a
    #: bounded latency blip; a few wakeups per second of pure-memory
    #: probes keeps idle CPU effectively zero.
    DOORBELL_BACKSTOP_SECONDS = 0.25

    OVERLOAD_POLICIES = ("shed", "block")

    def __init__(
        self,
        handler: RequestHandler,
        sock: socket.socket,
        label: str,
        *,
        workers: int = DEFAULT_WORKERS,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        max_inflight_per_conn: int = DEFAULT_MAX_INFLIGHT_PER_CONN,
        overload_policy: str = "shed",
        partial_read_timeout: Optional[float] = DEFAULT_PARTIAL_READ_TIMEOUT,
        metrics: Optional[MetricsRegistry] = None,
        zero_copy: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if max_inflight_per_conn < 1:
            raise ValueError(
                f"max_inflight_per_conn must be >= 1, got {max_inflight_per_conn}"
            )
        if overload_policy not in self.OVERLOAD_POLICIES:
            raise ValueError(
                f"overload_policy must be one of {self.OVERLOAD_POLICIES}, "
                f"got {overload_policy!r}"
            )
        self._handler = handler
        self._sock = sock
        self._label = label
        self._max_inflight = max_inflight_per_conn
        self._overload_policy = overload_policy
        self._partial_read_timeout = partial_read_timeout
        #: Serve zero-copy-capable duplexes (shm) through borrowed ring
        #: records and in-place replies. Off = the staged copy path for
        #: every connection (ablation / copy-vs-zero-copy bench rows).
        self._zero_copy = zero_copy
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._shed_counter = self.metrics.counter("server.shed.queue_full")
        self._drain_shed_counter = self.metrics.counter("server.shed.draining")
        self._jobs_counter = self.metrics.counter("server.jobs.submitted")

        self._jobs = _BoundedJobQueue(
            queue_capacity,
            self.metrics.gauge("server.queue_depth"),
            self.metrics.gauge("server.workers.active"),
        )
        #: Finished work travelling worker → net thread:
        #: (conn, corr_id, response bytes, handler_failed). Plain deque —
        #: append/popleft are atomic, no lock needed.
        self._completions: Deque[tuple] = collections.deque()

        self._conns: Dict[int, _Connection] = {}
        #: Every live doorbell connection, by fd (backstop re-check set).
        self._doorbells: Dict[int, _Connection] = {}
        #: Doorbell connections currently in the linger poll, by fd.
        self._hot: Dict[int, _Connection] = {}
        #: True while the net thread is polling instead of blocking in
        #: ``select`` — workers skip the waker syscall when set (the
        #: loop drains completions every iteration anyway).
        self._net_polling = False
        #: Connections whose head frame met a full queue under the
        #: "block" policy; re-pumped when completions free queue space.
        self._parked: set = set()
        self._stopping = threading.Event()
        self._force_stop = threading.Event()
        self._drained = threading.Event()
        self._draining = False
        self._stop_lock = threading.Lock()
        self._stop_called = False

        sock.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(sock, selectors.EVENT_READ, _LISTENER)
        self._wake_rx, self._wake_tx = socket.socketpair()
        self._wake_rx.setblocking(False)
        self._wake_tx.setblocking(False)
        self._selector.register(self._wake_rx, selectors.EVENT_READ, _WAKER)

        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{label}-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._workers:
            thread.start()
        self._net_thread = threading.Thread(
            target=self._net_loop, name=f"{label}-net", daemon=True
        )
        self._net_thread.start()

    # --------------------------------------------------- subclass surface

    @property
    def address(self) -> str:
        raise NotImplementedError

    def _configure_connection(self, conn: socket.socket) -> None:
        """Per-connection socket options (e.g. TCP_NODELAY); default none."""

    def _wrap_accepted(self, conn: socket.socket):
        """Turn a freshly accepted socket into the connection's duplex.

        The default serves the socket itself; a non-socket carrier (the
        shm transport) overrides this to run its handshake and return a
        socket-shaped duplex instead. Must not block: it runs on the net
        thread. Raise ``OSError`` to reject the connection.
        """
        self._configure_connection(conn)
        conn.setblocking(False)
        return conn

    def _on_stop(self) -> None:
        """Endpoint cleanup after the listener closes; default none."""

    @property
    def live_connections(self) -> int:
        """Connections currently being served (reaped handles excluded)."""
        return len(self._conns)

    # ------------------------------------------------------- worker stage

    def _worker_loop(self) -> None:
        jobs = self._jobs
        handler = self._handler
        completed = self.metrics.counter("server.jobs.completed")
        while True:
            job = jobs.pop()
            if job is None:
                return
            conn, corr_id, payload = job
            try:
                response = call_handler(handler, payload, conn.session)
                record = (conn, corr_id, response, False)
            except Exception:  # noqa: BLE001 - handler must not kill server
                # The RMI dispatcher encodes application errors itself;
                # anything escaping to here is a protocol bug, and the
                # only safe move is dropping the connection.
                record = (conn, corr_id, b"", True)
            # Publish the completion BEFORE task_done: the net thread's
            # drain condition is "outstanding == 0 and no completions
            # pending" — the other order could close a connection under
            # a reply that was finished but not yet visible.
            self._completions.append(record)
            completed.add()
            jobs.task_done()
            self._wake()

    def _wake(self) -> None:
        if self._net_polling:
            # The net thread is linger-polling, not parked in ``select``;
            # it drains completions every loop iteration, so the waker
            # byte would be a wasted syscall. The loop clears the flag
            # *before* its post-poll completion drain, and the GIL orders
            # that store against this read: a worker that saw the flag
            # set appended its completion before the drain that follows.
            return
        try:
            self._wake_tx.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # pipe full or closed: a wakeup is already pending / moot

    # ---------------------------------------------------------- net stage

    def _net_loop(self) -> None:
        try:
            while not self._force_stop.is_set():
                if self._stopping.is_set() and not self._draining:
                    self._begin_drain()
                if self._draining and self._drain_complete():
                    break
                events = self._selector.select(self._select_timeout())
                for key, mask in events:
                    if key.data is _LISTENER:
                        self._handle_accept()
                    elif key.data is _WAKER:
                        self._drain_waker()
                    else:
                        connection = key.data
                        if mask & selectors.EVENT_READ:
                            self._handle_read(connection)
                        if mask & selectors.EVENT_WRITE and not connection.closed:
                            self._handle_write(connection)
                if self._doorbells:
                    self._doorbell_backstop()
                if self._hot:
                    # Amortize the selector service: many poll rounds per
                    # ``select(0)``. Each round drains completions too, so
                    # replies never wait on the outer loop; accepts and
                    # doorbell EOFs wait at most POLL_ROUNDS yield-rounds.
                    self._net_polling = True  # nrmi: disable=NRMI041 -- single boolean flag: workers only read it in _wake to skip the waker write, and a stale read merely costs one redundant doorbell byte (see the disarm-ordering comment below)
                    self._jobs.spin_hot = True
                    for _ in range(self.POLL_ROUNDS):
                        self._poll_hot()
                        self._drain_completions()
                        self._pump_parked()
                        if not self._hot:
                            break
                # Order matters: disarm waker suppression BEFORE the
                # completion drain, so any worker that skipped the waker
                # has its completion collected before ``select`` blocks.
                self._net_polling = bool(self._hot)
                self._jobs.spin_hot = self._net_polling
                self._drain_completions()
                self._pump_parked()
                if self._partial_read_timeout is not None:
                    self._reap_stalled()
        finally:
            self._shutdown_loop()

    def _select_timeout(self) -> Optional[float]:
        """Block indefinitely when idle; tick only while a deadline is
        armed (drain in progress, a partial frame that may stall, or a
        doorbell connection whose wakeup byte could have been lost)."""
        if self._hot:
            return 0.0  # linger-polling doorbell rings: never block
        timeout: Optional[float] = None
        if self._draining:
            timeout = 0.05
        elif self._partial_read_timeout is not None and any(
            connection.inbuf for connection in self._conns.values()
        ):
            timeout = min(0.1, self._partial_read_timeout)
        if self._doorbells:
            backstop = self.DOORBELL_BACKSTOP_SECONDS
            timeout = backstop if timeout is None else min(timeout, backstop)
        return timeout

    def _doorbell_backstop(self) -> None:
        """Re-check every parked doorbell ring (lost-wakeup safety net).

        A peer commit whose doorbell byte was elided by the store→load
        race (see :attr:`DOORBELL_BACKSTOP_SECONDS`) shows up here as a
        readable ring — or pending output whose space-freed wakeup went
        missing — and re-enters the linger poll, which reads/flushes it.
        Pure memory probes, no syscalls: safe on the net thread.
        """
        for connection in list(self._doorbells.values()):
            if connection.closed or connection.fd in self._hot:
                continue
            if connection.borrow:
                continue  # unconsumed borrow reads as "ready" forever
            if connection.sock.poll_ready() or (
                # Pending output re-enters the poll only when the ring
                # can accept bytes — a stalled peer must not convert the
                # backstop into a busy-poll on its full ring.
                connection.out
                and connection.sock.poll_send_ready()
            ):
                self._mark_hot(connection)

    def _drain_waker(self) -> None:
        try:
            while self._wake_rx.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _handle_accept(self) -> None:
        while True:
            try:
                conn, _peer = self._sock.accept()
            except (BlockingIOError, OSError):
                return  # drained, or listener closed during shutdown
            if self._draining or self._stopping.is_set():
                # Drain starts by closing the listener, so this race
                # window is one already-queued accept: give it a clean
                # close instead of serving half a connection.
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            try:
                sock_like = self._wrap_accepted(conn)
            except OSError:
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            connection = _Connection(sock_like, time.monotonic())
            self._conns[connection.fd] = connection
            if connection.doorbell:
                self._doorbells[connection.fd] = connection
            self.metrics.counter("server.connections.accepted").add()
            self._update_interest(connection)

    def _handle_read(self, connection: _Connection) -> None:
        if connection.closed:
            return
        if connection.out and connection.doorbell:
            # The doorbell byte may mean "write space freed": flush the
            # pending output first, then fall through to read.
            self._flush_conn(connection)
            if connection.closed:
                return
        if connection.borrow:
            # A worker still owns a borrowed ring record, so every ring
            # read is forbidden. Swallow the doorbell byte (EOF latches
            # inside the duplex and surfaces on the reply send) and keep
            # the linger window open for the imminent reply.
            connection.sock.drain_doorbell()
            self._mark_hot(connection)
            return
        if self._borrow_eligible(connection):
            self._read_borrow(connection, drain=True)
            if connection.doorbell and not connection.closed:
                self._mark_hot(connection)
            return
        try:
            data = connection.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(connection)
            return
        self._ingest(connection, data)
        if connection.doorbell and not connection.closed:
            self._mark_hot(connection)

    def _ingest(self, connection: _Connection, data) -> None:
        """Feed freshly read bytes through framing into the backlog."""
        if not data:
            self._close_conn(connection)  # peer closed; replies are moot
            return
        connection.inbuf += data
        connection.last_progress = time.monotonic()
        try:
            self._parse_frames(connection)
        except _FramingViolation:
            self._close_conn(connection)
            return
        self._pump_conn(connection)

    # ------------------------------------------------ zero-copy borrow path

    def _borrow_eligible(self, connection: _Connection) -> bool:
        """May the next read hand a worker a borrowed ring record?

        Only when that record can be the connection's *entire* parse
        state: plain framing (or not yet detected — the borrow read
        re-checks the preamble), nothing buffered or backlogged, and
        nothing executing. Plain framing's in-flight cap is 1, so a
        successful borrow submit is always within policy.
        """
        return (
            self._zero_copy
            and connection.zero_copy
            and connection.framing != "pipelined"
            and not connection.inbuf
            and not connection.backlog
            and not connection.inflight
            and not self._draining
        )

    def _read_borrow(self, connection: _Connection, drain: bool) -> None:
        """Zero-copy read: borrow the next ring record and, when it is
        exactly one plain frame, submit the payload view straight to a
        worker — no staging copy, no inbuf append, no frame extraction.

        Anything else — the pipelined preamble, an oversized
        announcement, a frame split across records or records carrying
        several frames — copies the record out, consumes it, and feeds
        the bytes through the ordinary staged parser.
        """
        sock = connection.sock
        try:
            record = sock.recv_borrow(drain=drain)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(connection)
            return
        if record is None:
            return  # only a wrap marker was pending
        if not len(record):
            self._close_conn(connection)  # EOF
            return
        connection.last_progress = time.monotonic()
        length = _LEN.unpack_from(record, 0)[0] if (
            len(record) >= _HEADER_SIZE
        ) else -1
        end = _HEADER_SIZE + length
        if length < 0 or length > MAX_FRAME_BYTES or end != len(record):
            # The pipelined preamble lands here too: its magic read as a
            # length exceeds MAX_FRAME_BYTES, and the staged parser is
            # the one place that knows how to detect (or reject) it.
            data = bytes(record)
            sock.consume_borrow()
            self._ingest(connection, data)
            return
        connection.framing = "plain"
        payload = record[_HEADER_SIZE:end]
        if self._jobs.try_push((connection, None, payload)):
            connection.borrow = end
            connection.inflight += 1
            self._jobs_counter.add()
            return
        if self._overload_policy == "shed":
            sock.consume_borrow()
            self._shed_counter.add()
            self._queue_reply(connection, None, _BUSY_QUEUE_FULL)
            return
        # "block": the frame waits for queue space, and it must not hold
        # the ring while it does — copy out, park, and free the span.
        data = bytes(payload)
        sock.consume_borrow()
        connection.backlog.append((None, data))
        self._parked.add(connection)
        self._update_interest(connection)

    # ------------------------------------------------- doorbell linger poll

    def _mark_hot(self, connection: _Connection) -> None:
        """(Re)open a doorbell connection's linger-poll window.

        While hot, the duplex's consumer-waiting flag stays clear, so
        the peer's request path is two ring writes and zero syscalls;
        the net thread polls the ring directly instead of sleeping in
        ``select`` waiting for a doorbell byte.
        """
        connection.hot_until = time.monotonic() + self.DOORBELL_LINGER_SECONDS
        if connection.fd not in self._hot:
            self._hot[connection.fd] = connection
            connection.sock.unpark_rx()

    def _poll_hot(self) -> None:
        """One poll round over hot connections; expire quiet ones.

        Yields the core when nothing is ready: on a loaded single core a
        tight poll would hold the GIL and starve the very peers and
        workers whose progress it is polling for.
        """
        now = time.monotonic()
        progressed = False
        for fd, connection in list(self._hot.items()):
            if connection.closed:
                self._hot.pop(fd, None)
                continue
            if connection.borrow:
                # The reply is what ends a borrow, and it is imminent:
                # hold the window open, touch nothing on the ring.
                connection.hot_until = now + self.DOORBELL_LINGER_SECONDS
                continue
            if connection.out:
                self._flush_conn(connection)
                if connection.closed:
                    self._hot.pop(fd, None)
                    continue
            if connection.sock.poll_ready():
                self._read_ring(connection)
                if connection.closed:
                    self._hot.pop(fd, None)
                    continue
                connection.hot_until = now + self.DOORBELL_LINGER_SECONDS
                progressed = True
            elif now >= connection.hot_until:
                if connection.sock.park_rx():
                    # Bytes slipped in while the flag went up: the peer
                    # may or may not have rung; poll once more either way.
                    connection.hot_until = now + self.DOORBELL_LINGER_SECONDS
                else:
                    connection.hot_until = 0.0
                    self._hot.pop(fd, None)
        if not progressed and self._hot:
            _yield_cpu()

    def _read_ring(self, connection: _Connection) -> None:
        """Ring-only read for the linger poll (no doorbell drain)."""
        if self._borrow_eligible(connection):
            self._read_borrow(connection, drain=False)
            return
        try:
            data = connection.sock.recv_ring(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(connection)
            return
        self._ingest(connection, data)

    def _parse_frames(self, connection: _Connection) -> None:
        """Move complete frames from the byte buffer into the backlog.

        Framing auto-detect, incremental edition: a pipelined client
        opens with the 8-byte preamble; interpreted as a length header
        its first four bytes would announce an illegally oversized
        frame, so plain clients can never collide with it.
        """
        buf = connection.inbuf
        while True:
            if connection.framing is None:
                if len(buf) < _HEADER_SIZE:
                    return
                if bytes(buf[:_HEADER_SIZE]) == PIPELINE_MAGIC:
                    if len(buf) < 2 * _HEADER_SIZE:
                        return
                    if (
                        bytes(buf[_HEADER_SIZE : 2 * _HEADER_SIZE])
                        != PIPELINE_VERSION
                    ):
                        raise _FramingViolation("unknown pipeline revision")
                    del buf[: 2 * _HEADER_SIZE]
                    connection.framing = "pipelined"
                    continue
                connection.framing = "plain"
            if connection.framing == "plain":
                if len(buf) < _HEADER_SIZE:
                    return
                (length,) = _LEN.unpack_from(buf, 0)
                if length > MAX_FRAME_BYTES:
                    raise _FramingViolation("oversized frame announced")
                end = _HEADER_SIZE + length
                if len(buf) < end:
                    return
                payload = bytes(buf[_HEADER_SIZE:end])
                del buf[:end]
                connection.backlog.append((None, payload))
            else:
                if len(buf) < 2 * _HEADER_SIZE:
                    return
                (length,) = _LEN.unpack_from(buf, 0)
                if length > MAX_FRAME_BYTES:
                    raise _FramingViolation("oversized frame announced")
                (corr_id,) = _LEN.unpack_from(buf, _HEADER_SIZE)
                end = 2 * _HEADER_SIZE + length
                if len(buf) < end:
                    return
                payload = bytes(buf[2 * _HEADER_SIZE : end])
                del buf[:end]
                connection.backlog.append((corr_id, payload))

    def _pump_conn(self, connection: _Connection) -> None:
        """Submit backlog frames within the caps; apply overload policy."""
        while connection.backlog and not connection.closed:
            if connection.inflight >= self._conn_inflight_cap(connection):
                break
            corr_id, payload = connection.backlog[0]
            if self._draining:
                connection.backlog.popleft()
                self._drain_shed_counter.add()
                self._queue_reply(connection, corr_id, _BUSY_DRAINING)
                continue
            if self._jobs.try_push((connection, corr_id, payload)):
                connection.backlog.popleft()
                connection.inflight += 1
                self._jobs_counter.add()
                continue
            if self._overload_policy == "shed":
                # Load shedding: the payload is never deserialized; the
                # two-byte BUSY frame is the entire cost of rejection.
                connection.backlog.popleft()
                self._shed_counter.add()
                self._queue_reply(connection, corr_id, _BUSY_QUEUE_FULL)
                continue
            # "block": park the frame; the next completion frees queue
            # space and re-pumps parked connections.
            self._parked.add(connection)
            break
        self._update_interest(connection)

    def _pump_parked(self) -> None:
        """Retry connections whose head frame was parked on a full queue."""
        if not self._parked:
            return
        for connection in list(self._parked):
            self._parked.discard(connection)
            if not connection.closed:
                self._pump_conn(connection)

    def _conn_inflight_cap(self, connection: _Connection) -> int:
        # Plain framing has no correlation ids: replies must leave in
        # request order, so at most one frame executes at a time (the
        # backlog preserves arrival order for the rest).
        if connection.framing == "plain":
            return 1
        return self._max_inflight

    def _drain_completions(self) -> None:
        while self._completions:
            connection, corr_id, response, failed = self._completions.popleft()
            connection.inflight -= 1
            if connection.borrow:
                # The reply proves the worker is done with its borrowed
                # record: free the ring span before writing the reply,
                # so the peer can start its next request immediately.
                connection.borrow = 0
                try:
                    connection.sock.consume_borrow()
                except (OSError, RuntimeError):
                    pass
            if connection.closed:
                continue
            if failed:
                self._close_conn(connection)
                continue
            self._queue_reply(connection, corr_id, response)
            self._pump_conn(connection)

    def _queue_reply(self, connection: _Connection, corr_id, payload) -> None:
        if connection.closed:
            return
        length = len(payload)
        if length > MAX_FRAME_BYTES:
            self._close_conn(connection)
            return
        if (
            self._zero_copy
            and connection.zero_copy
            and corr_id is None
            and not connection.out
        ):
            # Reply fast path for shm: header + payload land as ONE
            # contiguous ring record, which is what lets the client
            # decode the reply off a borrowed slice instead of staging
            # a copy. A full ring falls through to the queued path.
            try:
                connection.sock.send_frame(_LEN.pack(length), payload)
                return
            except (BlockingIOError, InterruptedError):
                pass
            except OSError:
                self._close_conn(connection)
                return
        if corr_id is None:
            connection.out.append(memoryview(_LEN.pack(length)))
        else:
            connection.out.append(
                memoryview(_LEN.pack(length) + _LEN.pack(corr_id & 0xFFFFFFFF))
            )
        if length:
            connection.out.append(memoryview(payload))
        self._flush_conn(connection)

    def _handle_write(self, connection: _Connection) -> None:
        self._flush_conn(connection)

    def _flush_conn(self, connection: _Connection) -> None:
        try:
            while connection.out:
                head = connection.out[0]
                offset = connection.out_offset
                sent = connection.sock.send(head[offset:] if offset else head)
                offset += sent
                if offset >= len(head):
                    connection.out.popleft()
                    connection.out_offset = 0
                else:
                    connection.out_offset = offset
        except (BlockingIOError, InterruptedError):
            pass  # kernel buffer full: EVENT_WRITE finishes the job
        except OSError:
            self._close_conn(connection)
            return
        self._update_interest(connection)

    def _update_interest(self, connection: _Connection) -> None:
        if connection.closed:
            return
        mask = 0
        if (
            not self._draining
            and len(connection.backlog) < self._max_inflight
        ):
            mask |= selectors.EVENT_READ
        if connection.out:
            mask |= selectors.EVENT_WRITE
        if mask and connection.doorbell:
            # Doorbell duplexes signal *everything* — new data and freed
            # write space alike — as a readable doorbell byte, and their
            # fd is always writable, so EVENT_WRITE would spin the loop.
            mask = selectors.EVENT_READ
        if mask == connection.registered:
            return
        try:
            if connection.registered == 0:
                self._selector.register(connection.sock, mask, connection)
            elif mask == 0:
                self._selector.unregister(connection.sock)
            else:
                self._selector.modify(connection.sock, mask, connection)
        except (KeyError, ValueError, OSError):
            self._close_conn(connection)
            return
        connection.registered = mask

    def _close_conn(self, connection: _Connection) -> None:
        if connection.closed:
            return
        connection.closed = True
        if connection.borrow:
            # Release the tracked view WITHOUT advancing the ring head:
            # a worker may still be reading the borrowed payload, and
            # freeing the span would let the peer overwrite it under the
            # decode. The segment itself stays mapped by refcounting.
            connection.borrow = 0
            try:
                connection.sock.consume_borrow(0)
            except (OSError, RuntimeError):
                pass
        if connection.registered:
            try:
                self._selector.unregister(connection.sock)
            except (KeyError, ValueError, OSError):
                pass
            connection.registered = 0
        try:
            connection.sock.close()
        except OSError:
            pass
        self._parked.discard(connection)
        self._conns.pop(connection.fd, None)
        self._doorbells.pop(connection.fd, None)
        self._hot.pop(connection.fd, None)

    def _reap_stalled(self) -> None:
        deadline = self._partial_read_timeout
        now = time.monotonic()
        stalled = [
            connection
            for connection in self._conns.values()
            if connection.inbuf and now - connection.last_progress > deadline
        ]
        for connection in stalled:
            self.metrics.counter("server.connections.reaped_stalled").add()
            self._close_conn(connection)

    # ------------------------------------------------------ drain machine

    def _begin_drain(self) -> None:
        """Drain step 1: stop accepting and reading; BUSY the backlog.

        A connection with work still executing keeps its backlog for
        now: plain framing matches replies to requests by order, so its
        BUSY rejections must queue *after* the in-flight replies —
        ``_pump_conn`` (run on each completion) rejects them then.
        """
        self._draining = True
        self._parked.clear()
        try:
            self._selector.unregister(self._sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        for connection in list(self._conns.values()):
            if connection.inflight == 0:
                self._reject_backlog(connection)
            self._update_interest(connection)

    def _reject_backlog(self, connection: _Connection) -> None:
        while connection.backlog:
            corr_id, _payload = connection.backlog.popleft()
            self._drain_shed_counter.add()
            self._queue_reply(connection, corr_id, _BUSY_DRAINING)

    def _drain_complete(self) -> bool:
        """Drain step 2 exit test: no queued/executing work, no pending
        completions, every reply flushed."""
        if self._jobs.outstanding or self._completions:
            return False
        return all(
            not connection.out and not connection.backlog
            for connection in self._conns.values()
        )

    def _shutdown_loop(self) -> None:
        """Final net-thread cleanup, shared by graceful and forced exits."""
        forced = self._force_stop.is_set()
        if not self._draining:
            self._begin_drain()
        if forced:
            # Grace expired: reject every not-yet-started job with BUSY.
            rejected = self._jobs.drain()
            for connection, corr_id, _payload in rejected:
                connection.inflight -= 1
                self._drain_shed_counter.add()
                self._queue_reply(connection, corr_id, _BUSY_DRAINING)
            if rejected:
                self.metrics.counter("server.drain.rejected").add(len(rejected))
        # Late completions from still-running workers, then one last
        # best-effort flush so BUSY/replies reach peers before close.
        self._drain_completions()
        for connection in list(self._conns.values()):
            self._reject_backlog(connection)
            self._flush_conn(connection)
        for connection in list(self._conns.values()):
            self._close_conn(connection)
        self.metrics.counter(
            "server.drain.forced" if forced else "server.drain.graceful"
        ).add()
        try:
            self._selector.close()
        except OSError:
            pass
        for waker in (self._wake_rx, self._wake_tx):
            try:
                waker.close()
            except OSError:
                pass
        self._drained.set()

    # ------------------------------------------------------------- stop

    def stop(self, grace: Optional[float] = None) -> None:
        """Stop accepting, drain in-flight work, then force-close.

        In-flight and queued requests get *grace* seconds (default
        :attr:`STOP_GRACE_SECONDS`) to finish and flush; whatever is
        still queued at the deadline is rejected with BUSY, and any
        connection still open is closed. The UDS-path unlink (and any
        other :meth:`_on_stop` cleanup) runs strictly after the listener
        and net thread are down.
        """
        if grace is None:
            grace = self.STOP_GRACE_SECONDS
        with self._stop_lock:
            first = not self._stop_called
            self._stop_called = True
        if not first:
            self._drained.wait(grace)
            return
        self._stopping.set()
        self._wake()
        if not self._drained.wait(grace):
            self._force_stop.set()
            self._wake()
            self._drained.wait(5.0)
        self._net_thread.join(timeout=5.0)
        try:
            self._sock.close()  # idempotent; the net loop normally did it
        except OSError:
            pass
        self._jobs.close()
        for thread in self._workers:
            # Workers stuck in a runaway handler are daemons; don't hang
            # shutdown on them.
            thread.join(timeout=0.5)
        self._on_stop()

    def __enter__(self) -> "StagedStreamServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


# Re-exported for callers that want to assert on the exact shed frames.
BUSY_QUEUE_FULL_FRAME = _BUSY_QUEUE_FULL
BUSY_DRAINING_FRAME = _BUSY_DRAINING

# TransportError is imported for the module's public exception surface
# (framing violations close the connection rather than raising to callers).
__all__ = [
    "StagedStreamServer",
    "BUSY_QUEUE_FULL_FRAME",
    "BUSY_DRAINING_FRAME",
    "TransportError",
]
