"""In-process channel: direct dispatch to a handler in the same process.

Used for Baseline 3 ("RMI execution with restore on local machine — no
network overhead"), for unit tests, and as the carrier under the simulated
network. The full marshal/unmarshal path still runs — only the wire is
skipped — which matches the paper's same-machine, two-JVM configuration in
spirit while remaining deterministic.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TransportError
from repro.serde.schema import SchemaSession
from repro.transport.base import Channel, RequestHandler, TransportSession, call_handler


class InProcChannel(Channel):
    """Calls the server's handler directly; bytes still cross the boundary."""

    # In-process dispatch has no connection to lose: the per-channel
    # session lives as long as the channel, so schema references are
    # always safe to emit (even under retries).
    stable_sessions = True

    def __init__(self, handler: RequestHandler) -> None:
        super().__init__()
        self._handler = handler
        self._closed = False
        # Both halves of the schema-cache negotiation, channel-scoped:
        # the client-side tx session and the server-side per-"connection"
        # state the dispatcher keys its rx cache on.
        self.schema_session = SchemaSession()
        self._session = TransportSession()

    def request(self, payload: bytes, timeout: Optional[float] = None) -> bytes:
        # In-process dispatch cannot block on a wire, so the deadline
        # budget (timeout) has nothing to bound here and is ignored.
        if self._closed:
            raise TransportError("channel is closed")
        response = call_handler(self._handler, payload, self._session)
        self.stats.record(sent=len(payload), received=len(response))
        return response

    def close(self) -> None:
        self._closed = True
