"""Unix-domain-socket transport: the stream machinery bound to ``AF_UNIX``.

Same framing, pipelining, reliability, and session semantics as the TCP
transport (both are thin bindings of :mod:`repro.transport.stream`), but
over a filesystem socket: no TCP/IP stack, no checksums, no Nagle — on a
single host the kernel copies bytes between the two endpoints directly,
which is why a ``uds://`` round trip undercuts TCP loopback.

Address form is ``uds://<absolute path>``. Servers bind a path (a fresh
one under the system temp dir when none is given) and unlink it on
``stop()``; a stale path from a crashed predecessor is unlinked before
binding, matching how Unix daemons traditionally reclaim their sockets.
"""

from __future__ import annotations

import os
import socket
import tempfile
import uuid
from typing import Optional

from repro.errors import DeadlineExceededError, RetryableError, TransportError
from repro.transport.base import RequestHandler
from repro.transport.stream import (
    PipelinedStreamChannel,
    StreamChannel,
    StreamServer,
)


def _require_af_unix() -> None:
    """Fail with a clear message on platforms without Unix sockets."""
    if not hasattr(socket, "AF_UNIX"):
        raise TransportError(
            "uds:// transport requires AF_UNIX support (POSIX); "
            "this platform does not provide Unix domain sockets"
        )


def default_socket_path() -> str:
    """A fresh, collision-free socket path under the system temp dir.

    Kept short deliberately: ``sun_path`` is limited to ~108 bytes on
    Linux (104 on BSDs), so deep temp hierarchies are a real failure
    mode for Unix sockets.
    """
    return os.path.join(tempfile.gettempdir(), f"nrmi-{uuid.uuid4().hex[:12]}.sock")


def _dial_uds(path: str, timeout: Optional[float]) -> socket.socket:
    """A connected ``AF_UNIX`` stream socket, with stream-transport error
    mapping (timeout → deadline, refusal/absence → retryable)."""
    _require_af_unix()
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(path)
    except socket.timeout as exc:
        sock.close()
        raise DeadlineExceededError(f"connect to {path} timed out: {exc}") from exc
    except OSError as exc:
        sock.close()
        raise RetryableError(f"cannot connect to {path}: {exc}") from exc
    return sock


class UdsServer(StreamServer):
    """Serves a request handler over a Unix domain socket until stopped.

    Usable as a context manager::

        with UdsServer(handler) as server:
            channel = UdsChannel(server.path)

    With no *path*, a fresh socket under the temp dir is used and both
    the path attribute and :attr:`address` report where it landed.

    Keyword *server_options* pass through to the staged stream server:
    ``workers``, ``queue_capacity``, ``max_inflight_per_conn``,
    ``overload_policy``, ``partial_read_timeout``, ``metrics``.
    """

    def __init__(
        self,
        handler: RequestHandler,
        path: Optional[str] = None,
        **server_options: object,
    ) -> None:
        _require_af_unix()
        self.path = path if path is not None else default_socket_path()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            os.unlink(self.path)  # reclaim a stale socket from a dead server
        except OSError:
            pass
        try:
            sock.bind(self.path)
        except OSError as exc:
            sock.close()
            raise TransportError(f"cannot bind uds socket {self.path!r}: {exc}") from exc
        sock.listen(128)
        super().__init__(handler, sock, label="uds", **server_options)

    @property
    def address(self) -> str:
        return f"uds://{self.path}"

    def _on_stop(self) -> None:
        # The staged server invokes this only after the listener is
        # closed and the net thread has exited, so this unlink can never
        # race a successor that already reclaimed the path by binding it.
        try:
            os.unlink(self.path)
        except OSError:
            pass


class UdsChannel(StreamChannel):
    """Client channel over a single pooled Unix-socket connection."""

    def __init__(self, path: str, timeout: Optional[float] = 30.0) -> None:
        super().__init__(timeout=timeout)
        self.path = path

    def _open_socket(self, timeout: Optional[float]) -> socket.socket:
        return _dial_uds(self.path, timeout)

    def _describe(self) -> str:
        return self.path


class PipelinedUdsChannel(PipelinedStreamChannel):
    """A Unix-socket channel keeping many calls in flight on one
    connection; see :class:`repro.transport.stream.PipelinedStreamChannel`."""

    def __init__(self, path: str, timeout: Optional[float] = 30.0) -> None:
        super().__init__(label="uds", timeout=timeout)
        self.path = path

    def _open_socket(self, timeout: Optional[float]) -> socket.socket:
        return _dial_uds(self.path, timeout)

    def _describe(self) -> str:
        return self.path
