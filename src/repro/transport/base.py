"""Channel interface and per-channel statistics.

A :class:`Channel` is the client's view of an endpoint: a synchronous
``request(bytes) -> bytes`` pipe. Servers are request handlers — callables
from request bytes to response bytes. Everything above this layer (RMI
protocol, NRMI semantics) is transport-agnostic.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

RequestHandler = Callable[[bytes], bytes]


class TransportSession:
    """Server-side per-connection state a transport hands the dispatcher.

    One instance lives exactly as long as one client connection (or, for
    connectionless transports like in-process dispatch, as long as the
    channel). The dispatcher keys negotiated per-connection state on it —
    today the receive-side schema cache for session-cached wire schemas.
    """

    __slots__ = ("_schema_rx",)

    def __init__(self) -> None:
        self._schema_rx = None

    @property
    def schema_rx(self):
        """The connection's receive-side schema cache, created lazily."""
        if self._schema_rx is None:
            from repro.serde.schema import SchemaRxCache

            self._schema_rx = SchemaRxCache()
        return self._schema_rx


def call_handler(
    handler: RequestHandler, request: bytes, session: Optional[TransportSession]
) -> bytes:
    """Invoke *handler*, passing *session* only to session-aware handlers.

    Transports call this instead of ``handler(request)`` so plain
    ``bytes -> bytes`` handlers (tests, examples, custom servers) keep
    working unchanged while the dispatcher (which sets ``wants_session``)
    receives per-connection state.
    """
    if getattr(handler, "wants_session", False):
        return handler(request, session=session)
    return handler(request)


class ChannelStats:
    """Round trips and bytes moved through one channel (thread-safe)."""

    __slots__ = ("_lock", "requests", "bytes_sent", "bytes_received")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def record(self, sent: int, received: int) -> None:
        with self._lock:
            self.requests += 1
            self.bytes_sent += sent
            self.bytes_received += received

    def reset(self) -> None:
        with self._lock:
            self.requests = 0
            self.bytes_sent = 0
            self.bytes_received = 0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
            }

    def __repr__(self) -> str:
        return (
            f"ChannelStats(requests={self.requests}, sent={self.bytes_sent}, "
            f"received={self.bytes_received})"
        )


class Channel:
    """A synchronous request/response pipe to one remote endpoint.

    ``timeout`` is the caller's *remaining per-call deadline* in seconds;
    a transport that can bound the exchange must raise
    :class:`~repro.errors.DeadlineExceededError` when it fires. ``None``
    means the transport's own default applies. Transports that cannot
    block (in-process dispatch) may ignore it.
    """

    #: Whether one logical call always reuses the same underlying
    #: connection-scoped session as its predecessors (no reconnects, no
    #: retries landing on a different connection). True only for
    #: transports with process-lifetime sessions (in-process dispatch);
    #: the invocation layer gates schema-reference emission on it when
    #: retries are enabled.
    stable_sessions = False

    def __init__(self) -> None:
        self.stats = ChannelStats()

    def request(self, payload: bytes, timeout: Optional[float] = None) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources; idempotent."""
