"""Transport substrate: how request/response frames move between endpoints.

Three interchangeable channels behind one interface:

* :mod:`repro.transport.inproc` — direct in-process dispatch (Baseline 3's
  "no network" configuration, and the carrier the simulated network wraps);
* :mod:`repro.transport.tcp` — a real threaded TCP server with
  length-prefixed framing (integration tests exercise the full stack over
  sockets);
* :mod:`repro.transport.uds` — the same stream machinery
  (:mod:`repro.transport.stream`) over Unix domain sockets, the low-
  latency single-host carrier;
* :mod:`repro.transport.shm` — the same framed stream over mmap'd
  shared-memory rings (Unix-socket handshake, then no kernel in the
  data path), the fastest co-located carrier;
* :mod:`repro.transport.simnet` — a deterministic network model
  (bandwidth, per-message latency, per-host CPU scale) layered over the
  in-process channel; it *accounts* simulated transfer time instead of
  sleeping, so benchmark runs are fast and reproducible.

Addressing and channel caching live in :mod:`repro.transport.resolver`;
failure policy (retry/backoff, deadlines, circuit breaking, the reply
cache behind at-most-once) in :mod:`repro.transport.reliability`.
"""

from repro.transport.base import Channel, ChannelStats, RequestHandler
from repro.transport.framing import read_frame, write_frame
from repro.transport.inproc import InProcChannel
from repro.transport.reliability import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    ReplyCache,
    RetryPolicy,
)
from repro.transport.resolver import (
    ChannelResolver,
    global_resolver,
    register_scheme,
    supported_schemes,
    unregister_scheme,
)
from repro.transport.shm import ShmChannel, ShmServer
from repro.transport.simnet import NetworkModel, SimulatedChannel
from repro.transport.tcp import TcpChannel, TcpServer
from repro.transport.uds import UdsChannel, UdsServer

__all__ = [
    "Channel",
    "ChannelStats",
    "RequestHandler",
    "read_frame",
    "write_frame",
    "InProcChannel",
    "ChannelResolver",
    "global_resolver",
    "register_scheme",
    "supported_schemes",
    "unregister_scheme",
    "NetworkModel",
    "SimulatedChannel",
    "ShmChannel",
    "ShmServer",
    "TcpChannel",
    "TcpServer",
    "UdsChannel",
    "UdsServer",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "ReplyCache",
    "RetryPolicy",
]
