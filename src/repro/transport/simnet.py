"""Deterministic simulated network.

The paper's testbed — a 750 MHz SunBlade and a 440 MHz Ultra 10 on a
100 Mbps LAN — is unavailable, so the benchmark harness substitutes a
*network model*: every request/response through a :class:`SimulatedChannel`
accrues

    latency  +  bytes / bandwidth

of **simulated** time per direction, accumulated in an account rather than
slept away. The harness adds the account to measured compute time, so the
reported milliseconds have the same structure as the paper's tables
(processing + transmission) while runs stay fast and reproducible.

A per-host CPU scale factor models the fast/slow machine asymmetry: time
measured while executing on the "slow host" side is multiplied up by the
harness (see :mod:`repro.bench.harness`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.transport.base import Channel


@dataclass(frozen=True)
class NetworkModel:
    """Parameters of the modelled link."""

    bandwidth_bits_per_s: float = 100e6   # the paper's 100 Mbps LAN
    latency_s: float = 0.0003             # per message, per direction
    protocol_overhead_bytes: int = 64     # per message framing/TCP cost

    def transfer_seconds(self, payload_bytes: int) -> float:
        """Simulated one-way time for one message of *payload_bytes*."""
        total_bits = (payload_bytes + self.protocol_overhead_bytes) * 8
        return self.latency_s + total_bits / self.bandwidth_bits_per_s


#: A link so fast it contributes nothing: Baseline 3's "no network" setup.
LOOPBACK_MODEL = NetworkModel(
    bandwidth_bits_per_s=float("inf"), latency_s=0.0, protocol_overhead_bytes=0
)


class SimulatedChannel(Channel):
    """Wraps a channel, accounting simulated wire time for every exchange."""

    def __init__(self, inner: Channel, model: NetworkModel) -> None:
        super().__init__()
        self._inner = inner
        self.model = model
        self._lock = threading.Lock()
        self._simulated_seconds = 0.0

    @property
    def stable_sessions(self) -> bool:
        """Session stability is a property of the wrapped carrier."""
        return self._inner.stable_sessions

    @property
    def schema_session(self):
        """The wrapped channel's schema session, if it keeps one.

        The simulated network only accounts time; the schema-cache
        negotiation belongs to whatever real channel sits underneath.
        """
        return getattr(self._inner, "schema_session", None)

    @property
    def simulated_seconds(self) -> float:
        """Total simulated wire time accrued so far."""
        with self._lock:
            return self._simulated_seconds

    def reset_account(self) -> None:
        with self._lock:
            self._simulated_seconds = 0.0

    def request(self, payload: bytes, timeout: Optional[float] = None) -> bytes:
        response = self._inner.request(payload, timeout=timeout)
        cost = self.model.transfer_seconds(len(payload)) + self.model.transfer_seconds(
            len(response)
        )
        with self._lock:
            self._simulated_seconds += cost
        self.stats.record(sent=len(payload), received=len(response))
        return response

    def close(self) -> None:
        self._inner.close()
