"""TCP transport: the stream-transport machinery bound to ``AF_INET``.

All the serving, framing-autodetect, pipelining, and pooled-channel
logic lives in :mod:`repro.transport.stream`; this module contributes
only what is TCP-specific — binding a listening ``AF_INET`` socket,
``TCP_NODELAY`` on every connection, dialing ``host:port``, and the
``tcp://host:port`` address form.
"""

from __future__ import annotations

import socket
from typing import Optional

from repro.errors import DeadlineExceededError, RetryableError
from repro.transport.base import RequestHandler
from repro.transport.stream import (
    PipelinedStreamChannel,
    StreamChannel,
    StreamServer,
    ThreadedStreamServer,
)


def _bind_tcp(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(128)
    return sock


def _dial_tcp(host: str, port: int, timeout: Optional[float]) -> socket.socket:
    """A connected, NODELAY ``AF_INET`` socket, with stream-transport
    error mapping (timeout → deadline, refusal → retryable)."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except socket.timeout as exc:
        raise DeadlineExceededError(
            f"connect to {host}:{port} timed out: {exc}"
        ) from exc
    except OSError as exc:
        raise RetryableError(f"cannot connect to {host}:{port}: {exc}") from exc
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class TcpServer(StreamServer):
    """Serves a request handler over TCP until stopped (staged core).

    Keyword *server_options* pass through to the staged stream server:
    ``workers``, ``queue_capacity``, ``max_inflight_per_conn``,
    ``overload_policy``, ``partial_read_timeout``, ``metrics``.

    Usable as a context manager::

        with TcpServer(handler) as server:
            channel = TcpChannel(server.host, server.port)
    """

    def __init__(
        self,
        handler: RequestHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        **server_options: object,
    ) -> None:
        sock = _bind_tcp(host, port)
        self.host, self.port = sock.getsockname()
        super().__init__(
            handler, sock, label=f"tcp-{self.port}", **server_options
        )

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    def _configure_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class ThreadedTcpServer(ThreadedStreamServer):
    """Thread-per-connection TCP server, kept as the scaling baseline
    for the staged core's concurrency sweep (see ``repro.bench.regress``)."""

    def __init__(
        self, handler: RequestHandler, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        sock = _bind_tcp(host, port)
        self.host, self.port = sock.getsockname()
        super().__init__(handler, sock, label=f"tcp-thr-{self.port}")

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    def _configure_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class TcpChannel(StreamChannel):
    """Client channel over a single pooled TCP connection."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        super().__init__(timeout=timeout)
        self.host = host
        self.port = port

    def _open_socket(self, timeout: Optional[float]) -> socket.socket:
        return _dial_tcp(self.host, self.port, timeout)

    def _describe(self) -> str:
        return f"{self.host}:{self.port}"


class PipelinedTcpChannel(PipelinedStreamChannel):
    """A TCP channel keeping many calls in flight on one connection.

    See :class:`repro.transport.stream.PipelinedStreamChannel` for the
    correlation-id protocol and failure semantics.
    """

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        super().__init__(label="tcp", timeout=timeout)
        self.host = host
        self.port = port

    def _open_socket(self, timeout: Optional[float]) -> socket.socket:
        return _dial_tcp(self.host, self.port, timeout)

    def _describe(self) -> str:
        return f"{self.host}:{self.port}"
