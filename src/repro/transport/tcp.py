"""TCP transport: a threaded socket server and a pooled client channel.

The server accepts connections and serves framed request/response pairs,
one thread per connection (the model of classic RMI's connection handling).
Connection handles are reaped as peers disconnect, and ``stop()`` drains
in-flight requests within a bounded grace period before force-closing
stragglers.

The client channel keeps one connection and serializes requests over it
with a lock; callers needing parallel requests open extra channels. The
channel never resends on its own: a broken exchange surfaces as
:class:`~repro.errors.RetryableError` and only the retry layer
(:mod:`repro.transport.reliability`), which stamps a call ID the server
can deduplicate, may send the same request twice.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Optional

from repro.errors import RetryableError, TransportError
from repro.transport.base import Channel, RequestHandler
from repro.transport.framing import read_frame, write_frame


class TcpServer:
    """Serves a request handler over TCP until stopped.

    Usable as a context manager::

        with TcpServer(handler) as server:
            channel = TcpChannel(server.host, server.port)
    """

    #: Default seconds ``stop()`` waits for in-flight requests to drain.
    STOP_GRACE_SECONDS = 2.0

    def __init__(
        self, handler: RequestHandler, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._handler = handler
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(32)
        self.host, self.port = self._sock.getsockname()
        self._stopping = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{self.port}", daemon=True
        )
        self._conn_lock = threading.Lock()
        self._conn_threads: set[threading.Thread] = set()
        self._conn_socks: set[socket.socket] = set()
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    @property
    def live_connections(self) -> int:
        """Connections currently being served (reaped handles excluded)."""
        with self._conn_lock:
            return len(self._conn_threads)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                return  # listening socket closed during shutdown
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"tcp-conn-{self.port}",
                daemon=True,
            )
            with self._conn_lock:
                if self._stopping.is_set():
                    conn.close()
                    return
                self._conn_threads.add(thread)
                self._conn_socks.add(conn)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                while not self._stopping.is_set():
                    try:
                        request = read_frame(conn)
                    except TransportError:
                        return  # peer closed or connection broke
                    try:
                        response = self._handler(request)
                    except Exception:  # noqa: BLE001 - handler must not kill server
                        # The RMI dispatcher encodes application errors itself;
                        # anything escaping to here is a protocol bug, and the
                        # only safe move is dropping the connection.
                        return
                    try:
                        write_frame(conn, response)
                    except TransportError:
                        return
        finally:
            # Reap this handle so the sets track only live connections.
            with self._conn_lock:
                self._conn_threads.discard(threading.current_thread())
                self._conn_socks.discard(conn)

    def stop(self, grace: Optional[float] = None) -> None:
        """Stop accepting, drain in-flight requests, then force-close.

        Connection threads get *grace* seconds (default
        :attr:`STOP_GRACE_SECONDS`) to finish the request they are
        serving; any connection still open afterwards is closed out from
        under its thread, which unblocks its pending ``read_frame``.
        """
        if grace is None:
            grace = self.STOP_GRACE_SECONDS
        self._stopping.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=grace)
        deadline = time.monotonic() + grace
        with self._conn_lock:
            threads = list(self._conn_threads)
        for thread in threads:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)
        with self._conn_lock:
            stragglers = list(self._conn_socks)
        for conn in stragglers:
            try:
                conn.close()
            except OSError:
                pass
        with self._conn_lock:
            threads = list(self._conn_threads)
        for thread in threads:
            thread.join(timeout=0.1)

    def __enter__(self) -> "TcpServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class TcpChannel(Channel):
    """Client channel over a single pooled TCP connection."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        super().__init__()
        self.host = host
        self.port = port
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    def _connect(self, timeout: Optional[float] = None) -> socket.socket:
        if self._sock is None:
            connect_timeout = timeout if timeout is not None else self._timeout
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=connect_timeout
                )
            except socket.timeout as exc:
                from repro.errors import DeadlineExceededError

                raise DeadlineExceededError(
                    f"connect to {self.host}:{self.port} timed out: {exc}"
                ) from exc
            except OSError as exc:
                raise RetryableError(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # create_connection leaves the connect timeout on the socket;
            # per-request deadlines are applied by the framing layer.
            sock.settimeout(self._timeout)
            self._sock = sock
        return self._sock

    def request(self, payload: bytes, timeout: Optional[float] = None) -> bytes:
        """One request/response exchange; *never* resends on failure.

        A broken pooled connection surfaces as
        :class:`~repro.errors.RetryableError` — the connection is dropped
        so the next attempt reconnects, but resending is the retry
        layer's decision (it attaches a call ID so the server can
        deduplicate). A blind resend here would silently run
        non-idempotent methods twice.
        """
        with self._lock:
            sock = self._connect(timeout)
            try:
                write_frame(sock, payload, timeout=timeout)
                response = read_frame(sock, timeout=timeout)
            except TransportError:
                self._drop_connection()
                raise
            finally:
                if timeout is not None and self._sock is not None:
                    # Restore the pooled connection's default timeout so a
                    # later deadline-free request does not inherit ours.
                    try:
                        self._sock.settimeout(self._timeout)
                    except OSError:
                        pass
            self.stats.record(sent=len(payload), received=len(response))
            return response

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop_connection()
