"""TCP transport: a threaded socket server and a pooled client channel.

The server accepts connections and serves framed request/response pairs,
one thread per connection (the model of classic RMI's connection handling).
The client channel keeps one connection and serializes requests over it
with a lock; callers needing parallel requests open extra channels.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from repro.errors import TransportError
from repro.transport.base import Channel, RequestHandler
from repro.transport.framing import read_frame, write_frame


class TcpServer:
    """Serves a request handler over TCP until stopped.

    Usable as a context manager::

        with TcpServer(handler) as server:
            channel = TcpChannel(server.host, server.port)
    """

    def __init__(
        self, handler: RequestHandler, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._handler = handler
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(32)
        self.host, self.port = self._sock.getsockname()
        self._stopping = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{self.port}", daemon=True
        )
        self._conn_threads: list[threading.Thread] = []
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _peer = self._sock.accept()
            except OSError:
                return  # listening socket closed during shutdown
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"tcp-conn-{self.port}",
                daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._stopping.is_set():
                try:
                    request = read_frame(conn)
                except TransportError:
                    return  # peer closed or connection broke
                try:
                    response = self._handler(request)
                except Exception:  # noqa: BLE001 - handler must not kill server
                    # The RMI dispatcher encodes application errors itself;
                    # anything escaping to here is a protocol bug, and the
                    # only safe move is dropping the connection.
                    return
                try:
                    write_frame(conn, response)
                except TransportError:
                    return

    def stop(self) -> None:
        self._stopping.set()
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TcpServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class TcpChannel(Channel):
    """Client channel over a single pooled TCP connection."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        super().__init__()
        self.host = host
        self.port = port
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    def _connect(self) -> socket.socket:
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self._timeout
                )
            except OSError as exc:
                raise TransportError(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def request(self, payload: bytes) -> bytes:
        with self._lock:
            sock = self._connect()
            try:
                write_frame(sock, payload)
                response = read_frame(sock)
            except TransportError:
                # One reconnect attempt: the pooled connection may have
                # idled out; a fresh socket retries the request exactly once.
                self._drop_connection()
                sock = self._connect()
                write_frame(sock, payload)
                response = read_frame(sock)
            self.stats.record(sent=len(payload), received=len(response))
            return response

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop_connection()
