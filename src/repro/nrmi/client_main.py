"""One-shot NRMI client: invoke a remote method from the shell.

The counterpart of :mod:`repro.nrmi.server_main`, for smoke-testing a
deployment without writing a script::

    python -m repro.nrmi.client_main \\
        --address tcp://127.0.0.1:45123 --name trees \\
        --method mutate --args '["III", null, 7]'

``--args`` is a JSON array of positional arguments (JSON maps onto the
wire's primitives and containers: numbers, strings, booleans, null,
arrays, objects). The result is printed as JSON when possible, else via
``repr``. ``--list`` prints the registry's bindings instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro.nrmi.runtime import Endpoint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nrmi-call", description="Invoke a remote NRMI method once."
    )
    parser.add_argument("--address", required=True, help="e.g. tcp://host:port")
    parser.add_argument("--name", help="registry binding to look up")
    parser.add_argument("--method", help="method to invoke")
    parser.add_argument("--args", default="[]",
                        help="JSON array of positional arguments")
    parser.add_argument("--list", action="store_true",
                        help="list the remote registry's bindings and exit")
    parser.add_argument("--ping", action="store_true",
                        help="liveness-check the endpoint and exit")
    return parser


def render(result: Any) -> str:
    try:
        return json.dumps(result, indent=2, sort_keys=True)
    except (TypeError, ValueError):
        return repr(result)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    client = Endpoint(name="nrmi-call")
    try:
        if args.ping:
            alive = client.ping(args.address)
            print("alive" if alive else "unreachable")
            return 0 if alive else 1
        if args.list:
            registry_names = client.lookup_registry_names(args.address)
            print(render(registry_names))
            return 0
        if not args.name or not args.method:
            print("--name and --method are required (or use --list/--ping)",
                  file=sys.stderr)
            return 2
        try:
            call_args = json.loads(args.args)
        except json.JSONDecodeError as exc:
            print(f"--args is not valid JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(call_args, list):
            print("--args must be a JSON array", file=sys.stderr)
            return 2
        stub = client.lookup(args.address, args.name)
        result = getattr(stub, args.method)(*call_args)
        print(render(result))
        return 0
    finally:
        client.close()


if __name__ == "__main__":
    sys.exit(main())
