"""NRMI runtime configuration.

The paper evaluates a matrix of configurations; this dataclass is how the
reproduction spells each of them:

===========================  =========================================
paper configuration          NRMIConfig
===========================  =========================================
RMI, JDK 1.3                 profile="legacy",  policy="none"
RMI, JDK 1.4                 profile="modern",  policy="none"
NRMI portable (1.3 or 1.4)   implementation="portable", policy="full"
NRMI optimized (1.4 only)    implementation="optimized", policy="full",
                             profile="modern"
NRMI + delta (future work)   policy="delta"
DCE RPC semantics            policy="dce"
===========================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transport.reliability import (
    DEFAULT_RETRY_POLICY,
    CircuitBreakerPolicy,
    RetryPolicy,
)

_VALID_PROFILES = ("legacy", "modern")
_VALID_IMPLEMENTATIONS = ("portable", "optimized")
# "auto" is a client-side choice, never a wire policy: each call resolves
# it to "full" or "delta" from the observed dirty-slot ratio per address.
_VALID_POLICIES = ("none", "full", "delta", "dce", "auto")


@dataclass(frozen=True)
class NRMIConfig:
    """How an endpoint marshals, restores, and accounts.

    ``profile``
        Serialization substrate: ``legacy`` (JDK 1.3-like) or ``modern``
        (JDK 1.4-like).
    ``implementation``
        Field-access machinery used by the restore engine and reachability
        computation: ``portable`` (reflective, uncached) or ``optimized``
        (cached class plans) — the paper's two NRMI implementations.
    ``policy``
        Restore policy applied when a call has restorable parameters.
    ``leak_budget``
        Optional cap on live remotely-referenced exports; exceeding it
        raises :class:`~repro.errors.DistributedLeakError` (models the
        paper's 1 GB heap limit in the Table 6 experiment).
    """

    profile: str = "modern"
    implementation: str = "optimized"
    policy: str = "full"
    leak_budget: int | None = None
    # Ablation of the paper's optimization 5.2.4 #1: transmit the linear
    # map explicitly instead of reconstructing it during deserialization.
    # Always off in the paper's NRMI; exists here for the ablation bench.
    ship_linear_map: bool = False
    # DGC lease duration for exported references (None = no leases; refs
    # live until released). Java RMI's default is 10 minutes.
    lease_seconds: float | None = None
    # Failure policy for outgoing calls: attempts, backoff, per-call
    # deadline. The default is one attempt and no deadline — identical
    # behaviour to a stack without the reliability layer. Retries are
    # at-most-once safe: every call carries an ID the server's reply
    # cache deduplicates.
    retry: RetryPolicy = DEFAULT_RETRY_POLICY
    # Per-address circuit breaking for outgoing calls (None = disabled).
    breaker: CircuitBreakerPolicy | None = None
    # Bound on the server-side reply cache backing at-most-once dedup
    # (entries, LRU-evicted). 0 disables caching — callers retrying
    # against such an endpoint fall back to at-least-once semantics.
    reply_cache_size: int = 256
    # Server side of the dirty-slot reply negotiation: when False this
    # endpoint never answers with the delta-slots frame (requested
    # "delta" downgrades to a full-map reply) — a "full-only server".
    delta_replies: bool = True
    # Client side: advertise CAP_DELTA_SLOTS on outgoing calls. When
    # False this endpoint decodes only the classic reply kinds, so
    # servers fall back to legacy object-delta or full-map replies.
    delta_reply_frames: bool = True
    # Use the pipelined TCP channel (multiple in-flight calls on one
    # connection, replies demuxed by correlation id) for tcp:// peers.
    # Servers accept both framings regardless of this knob.
    tcp_pipelined: bool = True
    # Session-cached wire schemas. Client side: advertise
    # CAP_SCHEMA_CACHE on outgoing calls and, once the server acks,
    # encode argument streams against a per-connection schema cache
    # (class descriptors and field-name tables ship once, then collapse
    # to compact ids). Server side: acknowledge and decode such streams.
    # When False this endpoint behaves as a legacy peer on both sides.
    schema_cache: bool = True
    # Route the modern profile through exec-generated per-class
    # encode/decode functions (repro.serde.codegen). When False the
    # endpoint uses the interpreted compiled-plan path only; the wire
    # format is byte-identical either way, so the knob is purely a
    # performance ablation / escape hatch.
    serde_codegen: bool = True
    # Socket transport ``serve_remote()`` exposes: "tcp" (cross-host),
    # "uds" (Unix domain socket — single host, lower latency), or "shm"
    # (shared-memory rings — single host, no kernel in the data path).
    # Servers accept both framings on any; this picks the listener.
    transport: str = "tcp"
    # Over shm, encode CALL frames directly into the ring reservation and
    # decode replies off borrowed ring slices (no staging copy). Wire
    # bytes are identical either way; False forces the staged copy path
    # — kept as an ablation knob and for the bench's copy-vs-zero-copy
    # ladder. Ignored by socket transports.
    shm_zero_copy: bool = True
    # Staged-server sizing: worker threads executing requests, and the
    # bounded job-queue capacity between the net loop and the workers.
    # The queue bound is the overload knob — see overload_policy.
    server_workers: int = 8
    queue_capacity: int = 64
    # Cap on frames one connection may have admitted-but-unanswered; a
    # pipelined client past the cap has its reads paused, so one client
    # cannot monopolize every worker.
    max_inflight_per_conn: int = 64
    # What the server does when the job queue is full: "shed" answers
    # immediately with the fast BUSY frame (client retries with backoff);
    # "block" pauses reading and lets kernel socket buffers backpressure.
    overload_policy: str = "shed"

    def __post_init__(self) -> None:
        if self.profile not in _VALID_PROFILES:
            raise ValueError(
                f"profile must be one of {_VALID_PROFILES}, got {self.profile!r}"
            )
        if self.implementation not in _VALID_IMPLEMENTATIONS:
            raise ValueError(
                "implementation must be one of "
                f"{_VALID_IMPLEMENTATIONS}, got {self.implementation!r}"
            )
        if self.policy not in _VALID_POLICIES:
            raise ValueError(
                f"policy must be one of {_VALID_POLICIES}, got {self.policy!r}"
            )
        if not isinstance(self.retry, RetryPolicy):
            raise ValueError(
                f"retry must be a RetryPolicy, got {type(self.retry).__name__}"
            )
        if self.breaker is not None and not isinstance(
            self.breaker, CircuitBreakerPolicy
        ):
            raise ValueError(
                "breaker must be a CircuitBreakerPolicy or None, got "
                f"{type(self.breaker).__name__}"
            )
        if self.transport not in ("tcp", "uds", "shm"):
            raise ValueError(
                f"transport must be 'tcp', 'uds', or 'shm', got {self.transport!r}"
            )
        if self.reply_cache_size < 0:
            raise ValueError(
                f"reply_cache_size must be >= 0, got {self.reply_cache_size}"
            )
        if self.server_workers < 1:
            raise ValueError(
                f"server_workers must be >= 1, got {self.server_workers}"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_inflight_per_conn < 1:
            raise ValueError(
                "max_inflight_per_conn must be >= 1, got "
                f"{self.max_inflight_per_conn}"
            )
        if self.overload_policy not in ("shed", "block"):
            raise ValueError(
                "overload_policy must be 'shed' or 'block', got "
                f"{self.overload_policy!r}"
            )
        if self.implementation == "optimized" and self.profile == "legacy":
            # The paper's optimized NRMI exists only on JDK 1.4; mirror that
            # constraint so configurations stay meaningful.
            raise ValueError(
                "the optimized implementation requires the modern profile "
                "(the paper's optimized NRMI is JDK 1.4-only)"
            )
