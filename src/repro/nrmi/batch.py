"""Call batching: many invocations, one round trip per endpoint.

On a network where latency dominates (every NRMI exchange pays a full
round trip), batching N small calls into one frame amortizes the latency
N ways. The batch marshals each call exactly as a solo call would —
including per-call copy-restore — queues the requests, then flushes one
``CALL_BATCH`` frame per target endpoint; replies are applied in order.

Usage::

    with client.batch() as batch:
        first = batch.call(service, "price", cart_a)
        second = batch.call(service, "price", cart_b)
    assert first.result() == 42          # available after the with-block

Semantics notes:

* Each call is marshalled **when queued**, so later local mutations of an
  argument are not visible to the batched call — identical to having
  called at that moment over a slow network.
* Cross-call aliasing is *not* unified: two calls sharing an argument
  produce two server-side copies (each call is an independent stream),
  exactly as two sequential solo calls would.
* Failures are per-call: one call raising remotely does not poison the
  others; its exception surfaces from its handle's ``result()``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import RemoteError
from repro.nrmi.invocation import PreparedCall, complete_call, prepare_call
from repro.rmi.protocol import (
    Status,
    decode_batch_responses,
    encode_batch,
    split_response,
)
from repro.rmi.remote_ref import RemoteStub


class BatchHandle:
    """The pending result of one batched call."""

    __slots__ = ("_state", "_value")

    _PENDING, _VALUE, _ERROR = 0, 1, 2

    def __init__(self) -> None:
        self._state = self._PENDING
        self._value: Any = None

    def _resolve(self, value: Any) -> None:
        self._state = self._VALUE
        self._value = value

    def _fail(self, error: BaseException) -> None:
        self._state = self._ERROR
        self._value = error

    @property
    def done(self) -> bool:
        return self._state != self._PENDING

    def result(self) -> Any:
        if self._state == self._PENDING:
            raise RemoteError("batch not flushed yet; leave the with-block first")
        if self._state == self._ERROR:
            raise self._value
        return self._value


class CallBatch:
    """Queues calls through one client endpoint; flushes per target."""

    def __init__(self, endpoint: Any) -> None:
        self._endpoint = endpoint
        self._queued: List[tuple] = []  # (address, PreparedCall, BatchHandle)
        self._flushed = False

    def call(self, stub: RemoteStub, method: str, *args: Any, **kwargs: Any) -> BatchHandle:
        """Queue ``stub.method(*args, **kwargs)``; returns its handle."""
        if self._flushed:
            raise RemoteError("batch already flushed")
        if not isinstance(stub, RemoteStub):
            raise RemoteError(f"batch.call needs a stub, got {type(stub).__name__}")
        prepared = prepare_call(
            self._endpoint, stub.descriptor, method, args, kwargs=kwargs
        )
        handle = BatchHandle()
        self._queued.append((stub.descriptor.address, prepared, handle))
        return handle

    def __len__(self) -> int:
        return len(self._queued)

    def flush(self) -> None:
        """Send every queued call (one frame per endpoint), apply replies."""
        if self._flushed:
            return
        self._flushed = True
        by_address: Dict[str, List[tuple]] = {}
        for address, prepared, handle in self._queued:
            by_address.setdefault(address, []).append((prepared, handle))
        for address, entries in by_address.items():
            self._flush_one_endpoint(address, entries)

    def _flush_one_endpoint(self, address: str, entries: List[tuple]) -> None:
        request = encode_batch([prepared.request for prepared, _handle in entries])
        for prepared, _handle in entries:
            prepared.release()  # sub-frames are copied into the batch frame
        try:
            channel = self._endpoint.channel_to(address)
            response = channel.request(request)
            status, reader = split_response(response)
            if status is not Status.OK:
                raise RemoteError(
                    f"batch to {address} failed: {reader.read_str()}"
                )
            sub_responses = decode_batch_responses(reader)
        except BaseException as exc:  # noqa: BLE001 - fan the failure out
            for _prepared, handle in entries:
                handle._fail(exc)
            return
        if len(sub_responses) != len(entries):
            error = RemoteError(
                f"batch reply carries {len(sub_responses)} results "
                f"for {len(entries)} calls"
            )
            for _prepared, handle in entries:
                handle._fail(error)
            return
        for (prepared, handle), sub_response in zip(entries, sub_responses):
            try:
                handle._resolve(
                    complete_call(self._endpoint, prepared, sub_response)
                )
            except BaseException as exc:  # noqa: BLE001 - per-call failure
                handle._fail(exc)

    def __enter__(self) -> "CallBatch":
        return self

    def __exit__(self, exc_type: Any, _exc: Any, _tb: Any) -> None:
        if exc_type is None:
            self.flush()
