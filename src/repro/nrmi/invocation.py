"""The invocation pipeline: both halves of a remote call.

Client side (:func:`client_call`):

1. resolve each argument's passing mode from its type;
2. marshal all arguments into **one** stream (one handle table → aliasing
   across arguments preserved), recording the linear map as a side effect;
3. keep the subset of the map reachable from the copy-restore arguments —
   "create a linear map ... keep a reference to it" (algorithm step 1);
4. send; on reply, hand the payload to the agreed restore policy, which
   matches maps and applies steps 4-6 of the algorithm.

Server side (:func:`handle_call`):

1. unmarshal the arguments, reconstructing the linear map during
   deserialization (the paper's optimization — the map never crosses the
   wire);
2. retain the same subset, computed by the same deterministic rule, so the
   two endpoints' retained lists are index-aligned by construction;
3. run the method at full speed — no read/write barriers, no traffic;
4. let the policy build the response (return value + restore payload in
   one stream, so the return value shares structure with restored data).
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, List, Sequence, Tuple

from repro.core.restore_protocol import (
    ClientRestoreContext,
    ServerRestoreContext,
    policy_by_name,
)
from repro.core.semantics import PassingMode, resolve_modes
from repro.errors import (
    RemoteError,
    RemoteInvocationError,
    UnmarshalError,
)
from repro.nrmi.annotations import effective_policy
from repro.rmi.protocol import (
    CAP_DELTA_SLOTS,
    CAP_SCHEMA_CACHE,
    REPLY_FLAG_SCHEMA_ACK,
    CallRequest,
    Status,
    decode_call,
    encode_call,
    encode_call_header,
    exception_response,
    ok_response,
    policy_from_wire,
    policy_wire_id,
    raise_if_busy,
    set_attempt,
    split_response,
)
from repro.transport.reliability import call_with_retry
from repro.rmi.remote_ref import RemoteDescriptor, is_opaque_remote
from repro.serde.accessors import FieldAccessor
from repro.serde.linear_map import LinearMap
from repro.serde.profiles import profile_by_name
from repro.serde.reader import ObjectReader
from repro.serde.walker import reachable
from repro.serde.writer import ObjectWriter
from repro.util.buffers import BufferReader
from repro.util.identity import IdentitySet
from repro.util.logging import get_logger

logger = get_logger("nrmi.invocation")


class ReplyPolicyChooser:
    """Resolves the per-call ``auto`` restore policy from observed traffic.

    Tracks an exponentially-weighted dirty-slot ratio per remote address
    (fed by delta-slots replies). Sparse mutators keep the ratio low and
    ``auto`` keeps choosing ``delta``; once a peer's methods dirty most of
    the map, full replies are cheaper (no per-slot header, no digest
    passes) and the chooser switches to ``full`` — probing ``delta``
    periodically so it can switch back when the workload changes.
    """

    #: Above this EWMA dirty ratio, full-map replies win.
    DENSE_THRESHOLD = 0.6
    #: While in full mode, retry delta every this many calls.
    PROBE_EVERY = 16
    #: EWMA weight of the newest observation.
    ALPHA = 0.3

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ratio: dict = {}       # address -> EWMA dirty ratio
        self._full_streak: dict = {} # address -> calls since last delta probe

    def choose(self, address: str) -> str:
        with self._lock:
            ratio = self._ratio.get(address)
            if ratio is None or ratio <= self.DENSE_THRESHOLD:
                return "delta"
            streak = self._full_streak.get(address, 0) + 1
            if streak >= self.PROBE_EVERY:
                self._full_streak[address] = 0
                return "delta"
            self._full_streak[address] = streak
            return "full"

    def observe(self, address: str, dirty: int, total: int) -> None:
        if total <= 0:
            return
        sample = dirty / total
        with self._lock:
            previous = self._ratio.get(address)
            if previous is None:
                self._ratio[address] = sample
            else:
                self._ratio[address] = (
                    previous + self.ALPHA * (sample - previous)
                )


def compute_retained_indexed(
    linear_map: LinearMap, roots: Sequence[Any], accessor: FieldAccessor
) -> Tuple[List[Any], List[int]]:
    """The retained subset plus each member's position in the linear map.

    Both endpoints run this over isomorphic graphs with identical map
    order, so position *i* on one side corresponds to position *i* on the
    other — the invariant that makes step 4's match-up positional. The
    positions let the server look up digests captured per linear-map slot
    during deserialization without re-walking anything.
    """
    if not roots:
        return [], []
    reach = IdentitySet()
    for obj in reachable(
        list(roots), accessor, mutable_only=True, stop=is_opaque_remote
    ):
        reach.add(obj)
    retained: List[Any] = []
    indices: List[int] = []
    for index, obj in enumerate(linear_map):
        if obj in reach:
            retained.append(obj)
            indices.append(index)
    return retained, indices


def compute_retained(
    linear_map: LinearMap, roots: Sequence[Any], accessor: FieldAccessor
) -> List[Any]:
    """The subset of the linear map reachable from the copy-restore roots."""
    return compute_retained_indexed(linear_map, roots, accessor)[0]


def _restore_roots(args: Sequence[Any], modes: Sequence[PassingMode]) -> List[Any]:
    return [
        arg
        for arg, mode in zip(args, modes)
        if mode is PassingMode.BY_COPY_RESTORE
    ]


class PreparedCall:
    """A marshalled request plus the caller-side state its reply needs.

    When the endpoint owns a buffer pool, ``request`` is a ``memoryview``
    over a pooled encode buffer; :meth:`release` returns that storage to
    the pool once the frame has been sent. Unreleased buffers simply fall
    to the garbage collector — release is an optimization, not a safety
    requirement.
    """

    __slots__ = (
        "request", "originals", "descriptor", "method", "_pool", "_buffer",
        "schema_session", "schemas_defined", "schema_flagged",
    )

    def __init__(
        self,
        request: bytes,
        originals: List[Any],
        descriptor: RemoteDescriptor,
        method: str,
        pool: Any = None,
        buffer: Any = None,
        schema_session: Any = None,
        schemas_defined: Sequence[Any] = (),
        schema_flagged: bool = False,
    ) -> None:
        self.request = request
        self.originals = originals
        self.descriptor = descriptor
        self.method = method
        self._pool = pool
        self._buffer = buffer
        # Schema-cache state the reply hands back to the session: the
        # channel's session (when the cap was advertised), the pending
        # definitions this stream carried, and whether the stream was
        # actually encoded in schema mode.
        self.schema_session = schema_session
        self.schemas_defined = schemas_defined
        self.schema_flagged = schema_flagged

    def release(self) -> None:
        """Return the pooled request buffer; idempotent, safe without a pool."""
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        if type(self.request) is memoryview:
            self.request.release()
        pool.release(self._buffer)
        self._buffer = None


class _CallPlan:
    """Everything about one call that is decided *before* marshalling."""

    __slots__ = (
        "args", "modes", "policy_name", "kwarg_names", "caps",
        "schema_session", "use_schema", "ship_map",
    )


def _plan_call(
    endpoint: Any,
    descriptor: RemoteDescriptor,
    args: Tuple[Any, ...],
    policy_name: str | None,
    kwargs: dict | None,
    channel: Any,
) -> _CallPlan:
    """Resolve modes, restore policy, capability bits, and schema-cache
    participation — shared by the staged and zero-copy encode paths."""
    plan = _CallPlan()
    kwarg_items = tuple((kwargs or {}).items())
    plan.kwarg_names = tuple(name for name, _value in kwarg_items)
    plan.args = tuple(args) + tuple(value for _name, value in kwarg_items)
    plan.modes = resolve_modes(plan.args)
    has_restorable = any(
        mode is PassingMode.BY_COPY_RESTORE for mode in plan.modes
    )
    if not has_restorable:
        policy_name = "none"
    elif policy_name is None:
        policy_name = endpoint.config.policy
    if policy_name == "auto":
        # "auto" never crosses the wire: resolve it here from the per-
        # address dirty-ratio history (delta while replies stay sparse,
        # full once this peer's methods dirty most of the map).
        chooser = getattr(endpoint, "reply_chooser", None)
        policy_name = (
            chooser.choose(descriptor.address) if chooser is not None else "delta"
        )
    plan.policy_name = policy_name
    caps = 0
    if getattr(endpoint.config, "delta_reply_frames", False):
        # Advertise that our complete_call can decode the dirty-slot
        # reply frame; the server only uses it for "delta" calls, so the
        # bit is harmless on every other policy.
        caps |= CAP_DELTA_SLOTS

    plan.schema_session = None
    plan.use_schema = False
    if getattr(endpoint.config, "schema_cache", True) and channel is not None:
        schema_session = getattr(channel, "schema_session", None)
        if schema_session is not None:
            plan.schema_session = schema_session
            caps |= CAP_SCHEMA_CACHE
            # Flag the stream only once (a) the peer has acked the
            # capability and (b) schema references are safe: either no
            # retries (each frame is sent on at most one connection) or a
            # transport whose sessions cannot silently change between
            # attempts. A defs-only stream would be a net byte loss, so
            # the flag itself waits for the same conditions as refs.
            plan.use_schema = schema_session.peer_ok and (
                not endpoint.config.retry.enabled or channel.stable_sessions
            )
    plan.caps = caps
    plan.ship_map = (
        bool(getattr(endpoint.config, "ship_linear_map", False))
        and policy_name != "none"
    )
    return plan


def prepare_call(
    endpoint: Any,
    descriptor: RemoteDescriptor,
    method: str,
    args: Tuple[Any, ...],
    policy_name: str | None = None,
    kwargs: dict | None = None,
    channel: Any = None,
) -> PreparedCall:
    """Marshal one call into a request, recording the retained originals.

    When *channel* is given and carries a schema session, the call takes
    part in the session-cached wire schema negotiation: the capability is
    advertised, and once the peer has acked, argument streams are encoded
    against the connection's schema cache.
    """
    plan = _plan_call(endpoint, descriptor, args, policy_name, kwargs, channel)
    args = plan.args
    modes = plan.modes
    policy_name = plan.policy_name
    kwarg_names = plan.kwarg_names
    caps = plan.caps
    schema_session = plan.schema_session
    use_schema = plan.use_schema
    ship_map = plan.ship_map
    profile = endpoint.profile
    externalizers = endpoint.externalizers()
    # Steady-state calls allocate no fresh write buffers: the argument
    # stream and the request envelope are both built in recycled pool
    # storage, and the args bytes flow into the envelope through a view.
    pool = getattr(endpoint, "buffer_pool", None)
    args_buffer = pool.acquire() if pool is not None else None
    envelope_buffer = None
    args_payload = None
    writer = ObjectWriter(
        profile=profile, externalizers=externalizers, buffer=args_buffer,
        schema_tx=schema_session.tx if use_schema else None,
    )
    try:
        for arg in args:
            writer.write_root(arg)
        if ship_map:
            # Ablation: transmit the map as an extra root. Its entries are all
            # back references, so this costs ~2 bytes per reachable object plus
            # an extra encode/decode pass — the cost optimization 5.2.4 #1 avoids.
            writer.write_root(list(writer.linear_map.objects))
        args_payload = writer.view() if pool is not None else writer.getvalue()

        originals: List[Any] = []
        if policy_name != "none":
            originals = compute_retained(
                writer.linear_map, _restore_roots(args, modes), endpoint.accessor
            )

        envelope_buffer = pool.acquire() if pool is not None else None
        request = encode_call(
            CallRequest(
                object_id=descriptor.object_id,
                method=method,
                policy=policy_name,
                profile=profile.name,
                modes=modes,
                args_payload=args_payload,
                ship_map=ship_map,
                kwarg_names=kwarg_names,
                # Every call gets an at-most-once identity: should any layer
                # (retry, a duplicated frame) deliver this request twice, the
                # server's reply cache collapses it to one execution.
                call_id=endpoint.next_call_id(),
                caps=caps,
            ),
            buffer=envelope_buffer,
        )
    except BaseException:
        # Failed marshal/encode: hand every pooled buffer back (and drop
        # the writer's memo pins) instead of leaking them until GC — a
        # chaos run injecting encode faults would otherwise drain the pool.
        if args_payload is not None and type(args_payload) is memoryview:
            args_payload.release()
        writer.discard(pool, args_buffer)
        if pool is not None:
            pool.release(envelope_buffer)
        raise
    if pool is not None:
        # The args stream has been copied into the envelope; its buffer
        # can go straight back to the pool.
        args_payload.release()
        pool.release(args_buffer)
    return PreparedCall(
        request=request,
        originals=originals,
        descriptor=descriptor,
        method=method,
        pool=pool,
        buffer=envelope_buffer,
        schema_session=schema_session,
        schemas_defined=writer.schemas_defined,
        schema_flagged=use_schema,
    )


def complete_call(endpoint: Any, prepared: PreparedCall, response: bytes) -> Any:
    """Apply one reply: raise remote errors or run the restore phase."""
    descriptor = prepared.descriptor
    method = prepared.method
    profile = endpoint.profile
    externalizers = endpoint.externalizers()
    status, reader = split_response(response)
    session = prepared.schema_session
    if status is Status.EXCEPTION:
        # No schema confirmation here: the server may have raised before
        # decoding the arguments (bad method, missing export), in which
        # case any definitions this stream carried were never registered.
        exc_type = reader.read_str()
        message = reader.read_str()
        remote_tb = reader.read_str()
        raise RemoteInvocationError(exc_type, message, remote_tb)
    if status is Status.PROTOCOL_ERROR:
        if session is not None and prepared.schema_flagged:
            # A schema-mode stream the server could not decode — e.g. a
            # reference to an id its connection state no longer holds.
            # Renegotiating from scratch self-heals the next call.
            session.reset()
        raise RemoteError(f"protocol error from {descriptor.address}: {reader.read_str()}")

    # The response leads with the policy the SERVER actually applied: a
    # method-level @restore_policy/@no_restore annotation may have
    # overridden the caller's request (never upgrading from 'none').
    # Its high bit is the schema-cache acknowledgement.
    applied = reader.read_u8()
    applied_policy_name = policy_from_wire(applied & 0x7F)
    if session is not None:
        if applied & REPLY_FLAG_SCHEMA_ACK:
            session.record_ack()
        # An OK reply proves the server decoded this stream's arguments,
        # so any schema definitions it carried are registered over there:
        # later streams on this connection may reference them.
        session.confirm(prepared.schemas_defined)
    # Zero-copy: the restore payload is parsed in place from the response
    # frame (parse_response consumes it synchronously).
    payload = reader.read_view(reader.remaining)
    policy = policy_by_name(applied_policy_name)
    context = ClientRestoreContext(
        originals=prepared.originals,
        profile=profile,
        engine=endpoint.engine,
        externalizers=externalizers,
    )
    try:
        result, stats = policy.parse_response(payload, context)
    except RemoteError:
        raise
    except Exception as exc:
        raise UnmarshalError(f"failed to unmarshal reply for {method!r}: {exc}") from exc
    endpoint.record_restore_stats(stats)
    info = context.reply_info
    if info.get("kind") == "delta-slots":
        dirty, total = info.get("dirty", 0), info.get("total", 0)
        metrics = endpoint.metrics
        metrics.counter("delta.slot_replies").add()
        if total:
            metrics.distribution("delta.reply_dirty_ratio").record(dirty / total)
        chooser = getattr(endpoint, "reply_chooser", None)
        if chooser is not None:
            chooser.observe(descriptor.address, dirty, total)
    return result


def _zero_copy_call(
    endpoint: Any,
    channel: Any,
    descriptor: RemoteDescriptor,
    method: str,
    args: Tuple[Any, ...],
    policy_name: str | None,
    kwargs: dict | None,
) -> Any:
    """One remote call with both client-side payload copies deleted.

    Instead of marshalling into a pooled staging buffer and handing the
    channel a finished frame, the envelope header and the argument
    stream are encoded *through* the channel, directly into its tx-ring
    reservation (spilling to a pooled buffer only when the frame
    outgrows the contiguous span). The reply is decoded off a borrowed
    rx-ring slice inside the channel's exchange — ``complete_call``
    materializes every decoded value, so nothing aliases ring memory
    once the borrow is consumed. Wire bytes are identical to the staged
    path's.
    """
    plan = _plan_call(endpoint, descriptor, args, policy_name, kwargs, channel)
    profile = endpoint.profile
    externalizers = endpoint.externalizers()
    request = CallRequest(
        object_id=descriptor.object_id,
        method=method,
        policy=plan.policy_name,
        profile=profile.name,
        modes=plan.modes,
        args_payload=b"",  # encoded in place, after the header
        ship_map=plan.ship_map,
        kwarg_names=plan.kwarg_names,
        call_id=endpoint.next_call_id(),
        caps=plan.caps,
    )
    originals: List[Any] = []
    schemas_defined: Sequence[Any] = ()

    def encode(writer: Any) -> None:
        nonlocal originals, schemas_defined
        encode_call_header(writer, request)
        obj_writer = ObjectWriter(
            profile=profile,
            externalizers=externalizers,
            schema_tx=plan.schema_session.tx if plan.use_schema else None,
            out=writer,
        )
        try:
            for arg in plan.args:
                obj_writer.write_root(arg)
            if plan.ship_map:
                obj_writer.write_root(list(obj_writer.linear_map.objects))
            if plan.policy_name != "none":
                originals = compute_retained(
                    obj_writer.linear_map,
                    _restore_roots(plan.args, plan.modes),
                    endpoint.accessor,
                )
        except BaseException:
            # The channel rolls the ring reservation back; dropping the
            # writer's memo pins here keeps the failed encode leak-free.
            obj_writer.discard()
            raise
        schemas_defined = obj_writer.schemas_defined

    def consume(response: Any) -> Any:
        prepared = PreparedCall(
            request=b"",
            originals=originals,
            descriptor=descriptor,
            method=method,
            schema_session=plan.schema_session,
            schemas_defined=schemas_defined,
            schema_flagged=plan.use_schema,
        )
        return complete_call(endpoint, prepared, response)

    return channel.request_zero_copy(
        encode, consume, pool=getattr(endpoint, "buffer_pool", None)
    )


def client_call(
    endpoint: Any,
    descriptor: RemoteDescriptor,
    method: str,
    args: Tuple[Any, ...],
    policy_name: str | None = None,
    kwargs: dict | None = None,
) -> Any:
    """Perform one remote call through *endpoint*; returns the result.

    Keyword arguments travel as trailing named roots; their passing modes
    resolve from their types exactly like positional arguments.

    Transport failures are handled per the endpoint's
    :class:`~repro.transport.reliability.RetryPolicy`: transient errors
    are retried with exponential backoff (the request's call ID lets the
    server deduplicate an attempt that already executed), the per-call
    deadline bounds all attempts together, and a per-address circuit
    breaker fails fast when the target keeps breaking.

    Raises :class:`RemoteInvocationError` if the remote method raised, and
    transport/marshalling errors for middleware failures.
    """
    # Resolved before marshalling: the channel's schema session decides
    # whether the argument stream may use the connection's schema cache.
    channel = endpoint.channel_to(descriptor.address)
    retry = endpoint.config.retry
    if (
        not retry.enabled
        and endpoint.breaker_for(descriptor.address) is None
        and getattr(channel, "supports_zero_copy", False)
        and getattr(endpoint.config, "shm_zero_copy", True)
        # Chunked-buffer profiles (legacy) build their stream in chunks
        # and cannot target an external sink; they keep the staged path.
        and not endpoint.profile.chunked_buffers
    ):
        # Hot path over shm: encode straight into the tx ring and decode
        # the reply off a borrowed rx-ring slice. Reliability machinery
        # is incompatible by construction — a resend needs a retained
        # frame to re-stamp, which is exactly the copy this path deletes.
        return _zero_copy_call(
            endpoint, channel, descriptor, method, args, policy_name, kwargs
        )
    prepared = prepare_call(
        endpoint, descriptor, method, args, policy_name=policy_name,
        kwargs=kwargs, channel=channel,
    )
    breaker = endpoint.breaker_for(descriptor.address)
    try:
        if breaker is None and not retry.enabled:
            # Hot path: reliability machinery fully disabled.
            response = channel.request(prepared.request)
        else:
            metrics = endpoint.metrics
            frame = prepared.request
            if not (
                isinstance(frame, bytearray)
                or (isinstance(frame, memoryview) and not frame.readonly)
            ):
                # Immutable frame (legacy no-pool path): one mutable copy
                # so the attempt counter can be re-stamped across resends.
                frame = bytearray(frame)

            def send(attempt: int, remaining: float | None) -> bytes:
                if attempt:
                    # Pooled frames are writable views: the attempt byte
                    # sits at a fixed offset, so resends re-stamp it
                    # without re-marshalling the arguments.
                    set_attempt(frame, attempt)
                    metrics.counter("calls.retries").add()
                response = channel.request(frame, timeout=remaining)
                # A BUSY shed must surface *inside* the retry boundary:
                # to the transport it is a successful exchange, but to
                # the call it is a retryable failure (the request never
                # executed), so backoff-and-retry applies.
                raise_if_busy(response)
                return response

            def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
                logger.debug(
                    "retrying %s on %s (attempt %d) after %s: backoff %.3fs",
                    method,
                    descriptor.address,
                    attempt,
                    exc,
                    delay,
                )

            try:
                response = call_with_retry(
                    send,
                    retry,
                    rng=endpoint.retry_rng,
                    breaker=breaker,
                    on_retry=on_retry,
                )
            except Exception as exc:
                from repro.errors import (
                    CircuitOpenError,
                    DeadlineExceededError,
                    ServerBusyError,
                )

                if isinstance(exc, DeadlineExceededError):
                    metrics.counter("calls.deadline_exceeded").add()
                elif isinstance(exc, CircuitOpenError):
                    metrics.counter("calls.breaker_rejected").add()
                elif isinstance(exc, ServerBusyError):
                    # Every retry attempt was shed: the server stayed
                    # saturated (or draining) through the whole backoff
                    # schedule.
                    metrics.counter("calls.server_busy").add()
                raise
    finally:
        prepared.release()
    return complete_call(endpoint, prepared, response)


def handle_call(
    endpoint: Any, reader: BufferReader, call_id: int = 0, attempt: int = 0,
    session: Any = None,
) -> bytes:
    """Server half: decode, retain, execute, build the restore response.

    *session* is the transport's per-connection state (None for
    session-less carriers): it holds the receive side of the schema-cache
    negotiation, and its presence is what lets this endpoint acknowledge
    the client's :data:`CAP_SCHEMA_CACHE` advertisement.
    """
    request = decode_call(reader, call_id=call_id, attempt=attempt)
    profile = profile_by_name(request.profile)
    if profile.use_codegen and not getattr(endpoint.config, "serde_codegen", True):
        # The codegen knob is per-endpoint, not per-wire: a server with
        # codegen disabled still speaks identical bytes, it just runs the
        # interpreted plan path for this call.
        from dataclasses import replace as _dc_replace

        profile = _dc_replace(profile, use_codegen=False)
    externalizers = endpoint.externalizers()

    # Method resolution and policy negotiation run BEFORE the arguments
    # are decoded: the effective policy decides whether the decoder
    # captures slot digests as it traverses (the fused decode+digest
    # pass), and a bad method is rejected without paying for a decode.
    impl = endpoint.exports.get(request.object_id)
    if request.method.startswith("_"):
        raise RemoteError(f"refusing to dispatch private method {request.method!r}")
    allowed = endpoint.exports.allowed_methods(request.object_id)
    if allowed is not None and request.method not in allowed:
        raise RemoteError(
            f"method {request.method!r} is outside the remote interface "
            f"of object {request.object_id}"
        )
    target = getattr(impl, request.method, None)
    if not callable(target):
        raise RemoteError(
            f"{type(impl).__name__} has no remote method {request.method!r}"
        )

    policy_name = effective_policy(request.policy, target)
    if policy_name == "delta":
        if not getattr(endpoint.config, "delta_replies", True):
            # Full-only server: it will not build any delta reply, so the
            # requested "delta" downgrades to a full-map reply. Legal
            # because the reply leads with the policy actually applied.
            policy_name = "full"
        elif request.caps & CAP_DELTA_SLOTS:
            # Negotiated upgrade: the caller can decode dirty-slot frames,
            # so answer with reply kind 4 instead of the legacy object
            # delta. Non-advertising (older) callers keep getting kind 2.
            policy_name = "delta-slots"
    policy = policy_by_name(policy_name)

    # Dirty-slot calls digest every slot as it is registered in the
    # linear map — the paper's "keep a reference to the map" walk and the
    # delta snapshot collapse into the decode traversal, so the retained
    # map is never re-walked before the method runs.
    fuse_digest = policy_name == "delta-slots" and not request.ship_map
    args_reader = ObjectReader(
        request.args_payload,
        profile=profile,
        externalizers=externalizers,
        schema_rx=session.schema_rx if session is not None else None,
        digest_accessor=endpoint.accessor if fuse_digest else None,
    )
    args = [args_reader.read_root() for _ in request.modes]
    shipped_map: List[Any] | None = None
    if request.ship_map:
        shipped_map = args_reader.read_root()
    args_reader.expect_end()

    roots = _restore_roots(args, request.modes)
    retained: List[Any] = []
    predigested = None
    if policy_name != "none":
        if shipped_map is not None:
            # Ablation path: trust the transmitted map instead of the one
            # reconstructed during deserialization.
            retained = compute_retained(
                LinearMap(shipped_map), roots, endpoint.accessor
            )
        else:
            retained, retained_indices = compute_retained_indexed(
                args_reader.linear_map, roots, endpoint.accessor
            )
            if fuse_digest:
                predigested = args_reader.digest_table(retained_indices)

    context = ServerRestoreContext(
        retained=retained,
        restore_roots=roots,
        profile=profile,
        accessor=endpoint.accessor,
        externalizers=externalizers,
        stop=is_opaque_remote,
        metrics=endpoint.metrics,
        predigested=predigested,
    )
    snapshot = policy.snapshot(context)

    positional = args
    keyword = {}
    if request.kwarg_names:
        split = len(args) - len(request.kwarg_names)
        positional = args[:split]
        keyword = dict(zip(request.kwarg_names, args[split:]))
    try:
        result = target(*positional, **keyword)
    except Exception as exc:  # noqa: BLE001 - becomes the remote exception
        logger.debug(
            "remote method %s.%s raised %s: %s",
            type(impl).__name__,
            request.method,
            type(exc).__name__,
            exc,
        )
        return exception_response(
            type(exc).__name__, str(exc), traceback.format_exc()
        )

    response_payload = policy.build_response(result, context, snapshot)
    applied = policy_wire_id(policy_name)
    if (
        session is not None
        and request.caps & CAP_SCHEMA_CACHE
        and getattr(endpoint.config, "schema_cache", True)
    ):
        # Acknowledge the schema-cache capability on the applied-policy
        # byte's high bit: this connection keeps per-session decode state,
        # so the client may start encoding against its schema cache.
        applied |= REPLY_FLAG_SCHEMA_ACK
    return ok_response(bytes([applied]) + response_payload)
