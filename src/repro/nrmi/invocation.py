"""The invocation pipeline: both halves of a remote call.

Client side (:func:`client_call`):

1. resolve each argument's passing mode from its type;
2. marshal all arguments into **one** stream (one handle table → aliasing
   across arguments preserved), recording the linear map as a side effect;
3. keep the subset of the map reachable from the copy-restore arguments —
   "create a linear map ... keep a reference to it" (algorithm step 1);
4. send; on reply, hand the payload to the agreed restore policy, which
   matches maps and applies steps 4-6 of the algorithm.

Server side (:func:`handle_call`):

1. unmarshal the arguments, reconstructing the linear map during
   deserialization (the paper's optimization — the map never crosses the
   wire);
2. retain the same subset, computed by the same deterministic rule, so the
   two endpoints' retained lists are index-aligned by construction;
3. run the method at full speed — no read/write barriers, no traffic;
4. let the policy build the response (return value + restore payload in
   one stream, so the return value shares structure with restored data).
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, List, Sequence, Tuple

from repro.core.restore_protocol import (
    ClientRestoreContext,
    ServerRestoreContext,
    policy_by_name,
)
from repro.core.semantics import PassingMode, resolve_modes
from repro.errors import (
    RemoteError,
    RemoteInvocationError,
    UnmarshalError,
)
from repro.nrmi.annotations import effective_policy
from repro.rmi.protocol import (
    CAP_DELTA_SLOTS,
    CallRequest,
    Status,
    decode_call,
    encode_call,
    exception_response,
    ok_response,
    policy_from_wire,
    policy_wire_id,
    set_attempt,
    split_response,
)
from repro.transport.reliability import call_with_retry
from repro.rmi.remote_ref import RemoteDescriptor, is_opaque_remote
from repro.serde.accessors import FieldAccessor
from repro.serde.linear_map import LinearMap
from repro.serde.profiles import profile_by_name
from repro.serde.reader import ObjectReader
from repro.serde.walker import reachable
from repro.serde.writer import ObjectWriter
from repro.util.buffers import BufferReader
from repro.util.identity import IdentitySet
from repro.util.logging import get_logger

logger = get_logger("nrmi.invocation")


class ReplyPolicyChooser:
    """Resolves the per-call ``auto`` restore policy from observed traffic.

    Tracks an exponentially-weighted dirty-slot ratio per remote address
    (fed by delta-slots replies). Sparse mutators keep the ratio low and
    ``auto`` keeps choosing ``delta``; once a peer's methods dirty most of
    the map, full replies are cheaper (no per-slot header, no digest
    passes) and the chooser switches to ``full`` — probing ``delta``
    periodically so it can switch back when the workload changes.
    """

    #: Above this EWMA dirty ratio, full-map replies win.
    DENSE_THRESHOLD = 0.6
    #: While in full mode, retry delta every this many calls.
    PROBE_EVERY = 16
    #: EWMA weight of the newest observation.
    ALPHA = 0.3

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ratio: dict = {}       # address -> EWMA dirty ratio
        self._full_streak: dict = {} # address -> calls since last delta probe

    def choose(self, address: str) -> str:
        with self._lock:
            ratio = self._ratio.get(address)
            if ratio is None or ratio <= self.DENSE_THRESHOLD:
                return "delta"
            streak = self._full_streak.get(address, 0) + 1
            if streak >= self.PROBE_EVERY:
                self._full_streak[address] = 0
                return "delta"
            self._full_streak[address] = streak
            return "full"

    def observe(self, address: str, dirty: int, total: int) -> None:
        if total <= 0:
            return
        sample = dirty / total
        with self._lock:
            previous = self._ratio.get(address)
            if previous is None:
                self._ratio[address] = sample
            else:
                self._ratio[address] = (
                    previous + self.ALPHA * (sample - previous)
                )


def compute_retained(
    linear_map: LinearMap, roots: Sequence[Any], accessor: FieldAccessor
) -> List[Any]:
    """The subset of the linear map reachable from the copy-restore roots.

    Both endpoints run this over isomorphic graphs with identical map
    order, so position *i* on one side corresponds to position *i* on the
    other — the invariant that makes step 4's match-up positional.
    """
    if not roots:
        return []
    reach = IdentitySet()
    for obj in reachable(
        list(roots), accessor, mutable_only=True, stop=is_opaque_remote
    ):
        reach.add(obj)
    return [obj for obj in linear_map if obj in reach]


def _restore_roots(args: Sequence[Any], modes: Sequence[PassingMode]) -> List[Any]:
    return [
        arg
        for arg, mode in zip(args, modes)
        if mode is PassingMode.BY_COPY_RESTORE
    ]


class PreparedCall:
    """A marshalled request plus the caller-side state its reply needs.

    When the endpoint owns a buffer pool, ``request`` is a ``memoryview``
    over a pooled encode buffer; :meth:`release` returns that storage to
    the pool once the frame has been sent. Unreleased buffers simply fall
    to the garbage collector — release is an optimization, not a safety
    requirement.
    """

    __slots__ = ("request", "originals", "descriptor", "method", "_pool", "_buffer")

    def __init__(
        self,
        request: bytes,
        originals: List[Any],
        descriptor: RemoteDescriptor,
        method: str,
        pool: Any = None,
        buffer: Any = None,
    ) -> None:
        self.request = request
        self.originals = originals
        self.descriptor = descriptor
        self.method = method
        self._pool = pool
        self._buffer = buffer

    def release(self) -> None:
        """Return the pooled request buffer; idempotent, safe without a pool."""
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        if type(self.request) is memoryview:
            self.request.release()
        pool.release(self._buffer)
        self._buffer = None


def prepare_call(
    endpoint: Any,
    descriptor: RemoteDescriptor,
    method: str,
    args: Tuple[Any, ...],
    policy_name: str | None = None,
    kwargs: dict | None = None,
) -> PreparedCall:
    """Marshal one call into a request, recording the retained originals."""
    kwarg_items = tuple((kwargs or {}).items())
    kwarg_names = tuple(name for name, _value in kwarg_items)
    args = tuple(args) + tuple(value for _name, value in kwarg_items)
    modes = resolve_modes(args)
    has_restorable = any(mode is PassingMode.BY_COPY_RESTORE for mode in modes)
    if not has_restorable:
        policy_name = "none"
    elif policy_name is None:
        policy_name = endpoint.config.policy
    if policy_name == "auto":
        # "auto" never crosses the wire: resolve it here from the per-
        # address dirty-ratio history (delta while replies stay sparse,
        # full once this peer's methods dirty most of the map).
        chooser = getattr(endpoint, "reply_chooser", None)
        policy_name = (
            chooser.choose(descriptor.address) if chooser is not None else "delta"
        )
    profile = endpoint.profile
    externalizers = endpoint.externalizers()
    caps = 0
    if getattr(endpoint.config, "delta_reply_frames", False):
        # Advertise that our complete_call can decode the dirty-slot
        # reply frame; the server only uses it for "delta" calls, so the
        # bit is harmless on every other policy.
        caps |= CAP_DELTA_SLOTS

    ship_map = bool(getattr(endpoint.config, "ship_linear_map", False))
    # Steady-state calls allocate no fresh write buffers: the argument
    # stream and the request envelope are both built in recycled pool
    # storage, and the args bytes flow into the envelope through a view.
    pool = getattr(endpoint, "buffer_pool", None)
    args_buffer = pool.acquire() if pool is not None else None
    envelope_buffer = None
    args_payload = None
    writer = ObjectWriter(
        profile=profile, externalizers=externalizers, buffer=args_buffer
    )
    try:
        for arg in args:
            writer.write_root(arg)
        if ship_map and policy_name != "none":
            # Ablation: transmit the map as an extra root. Its entries are all
            # back references, so this costs ~2 bytes per reachable object plus
            # an extra encode/decode pass — the cost optimization 5.2.4 #1 avoids.
            writer.write_root(list(writer.linear_map.objects))
        args_payload = writer.view() if pool is not None else writer.getvalue()

        originals: List[Any] = []
        if policy_name != "none":
            originals = compute_retained(
                writer.linear_map, _restore_roots(args, modes), endpoint.accessor
            )

        envelope_buffer = pool.acquire() if pool is not None else None
        request = encode_call(
            CallRequest(
                object_id=descriptor.object_id,
                method=method,
                policy=policy_name,
                profile=profile.name,
                modes=modes,
                args_payload=args_payload,
                ship_map=ship_map and policy_name != "none",
                kwarg_names=kwarg_names,
                # Every call gets an at-most-once identity: should any layer
                # (retry, a duplicated frame) deliver this request twice, the
                # server's reply cache collapses it to one execution.
                call_id=endpoint.next_call_id(),
                caps=caps,
            ),
            buffer=envelope_buffer,
        )
    except BaseException:
        # Failed marshal/encode: hand every pooled buffer back (and drop
        # the writer's memo pins) instead of leaking them until GC — a
        # chaos run injecting encode faults would otherwise drain the pool.
        if args_payload is not None and type(args_payload) is memoryview:
            args_payload.release()
        writer.discard(pool, args_buffer)
        if pool is not None:
            pool.release(envelope_buffer)
        raise
    if pool is not None:
        # The args stream has been copied into the envelope; its buffer
        # can go straight back to the pool.
        args_payload.release()
        pool.release(args_buffer)
    return PreparedCall(
        request=request,
        originals=originals,
        descriptor=descriptor,
        method=method,
        pool=pool,
        buffer=envelope_buffer,
    )


def complete_call(endpoint: Any, prepared: PreparedCall, response: bytes) -> Any:
    """Apply one reply: raise remote errors or run the restore phase."""
    descriptor = prepared.descriptor
    method = prepared.method
    profile = endpoint.profile
    externalizers = endpoint.externalizers()
    status, reader = split_response(response)
    if status is Status.EXCEPTION:
        exc_type = reader.read_str()
        message = reader.read_str()
        remote_tb = reader.read_str()
        raise RemoteInvocationError(exc_type, message, remote_tb)
    if status is Status.PROTOCOL_ERROR:
        raise RemoteError(f"protocol error from {descriptor.address}: {reader.read_str()}")

    # The response leads with the policy the SERVER actually applied: a
    # method-level @restore_policy/@no_restore annotation may have
    # overridden the caller's request (never upgrading from 'none').
    applied_policy_name = policy_from_wire(reader.read_u8())
    # Zero-copy: the restore payload is parsed in place from the response
    # frame (parse_response consumes it synchronously).
    payload = reader.read_view(reader.remaining)
    policy = policy_by_name(applied_policy_name)
    context = ClientRestoreContext(
        originals=prepared.originals,
        profile=profile,
        engine=endpoint.engine,
        externalizers=externalizers,
    )
    try:
        result, stats = policy.parse_response(payload, context)
    except RemoteError:
        raise
    except Exception as exc:
        raise UnmarshalError(f"failed to unmarshal reply for {method!r}: {exc}") from exc
    endpoint.record_restore_stats(stats)
    info = context.reply_info
    if info.get("kind") == "delta-slots":
        dirty, total = info.get("dirty", 0), info.get("total", 0)
        metrics = endpoint.metrics
        metrics.counter("delta.slot_replies").add()
        if total:
            metrics.distribution("delta.reply_dirty_ratio").record(dirty / total)
        chooser = getattr(endpoint, "reply_chooser", None)
        if chooser is not None:
            chooser.observe(descriptor.address, dirty, total)
    return result


def client_call(
    endpoint: Any,
    descriptor: RemoteDescriptor,
    method: str,
    args: Tuple[Any, ...],
    policy_name: str | None = None,
    kwargs: dict | None = None,
) -> Any:
    """Perform one remote call through *endpoint*; returns the result.

    Keyword arguments travel as trailing named roots; their passing modes
    resolve from their types exactly like positional arguments.

    Transport failures are handled per the endpoint's
    :class:`~repro.transport.reliability.RetryPolicy`: transient errors
    are retried with exponential backoff (the request's call ID lets the
    server deduplicate an attempt that already executed), the per-call
    deadline bounds all attempts together, and a per-address circuit
    breaker fails fast when the target keeps breaking.

    Raises :class:`RemoteInvocationError` if the remote method raised, and
    transport/marshalling errors for middleware failures.
    """
    prepared = prepare_call(
        endpoint, descriptor, method, args, policy_name=policy_name, kwargs=kwargs
    )
    channel = endpoint.channel_to(descriptor.address)
    retry = endpoint.config.retry
    breaker = endpoint.breaker_for(descriptor.address)
    try:
        if breaker is None and not retry.enabled:
            # Hot path: reliability machinery fully disabled.
            response = channel.request(prepared.request)
        else:
            metrics = endpoint.metrics
            frame = prepared.request
            if not (
                isinstance(frame, bytearray)
                or (isinstance(frame, memoryview) and not frame.readonly)
            ):
                # Immutable frame (legacy no-pool path): one mutable copy
                # so the attempt counter can be re-stamped across resends.
                frame = bytearray(frame)

            def send(attempt: int, remaining: float | None) -> bytes:
                if attempt:
                    # Pooled frames are writable views: the attempt byte
                    # sits at a fixed offset, so resends re-stamp it
                    # without re-marshalling the arguments.
                    set_attempt(frame, attempt)
                    metrics.counter("calls.retries").add()
                return channel.request(frame, timeout=remaining)

            def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
                logger.debug(
                    "retrying %s on %s (attempt %d) after %s: backoff %.3fs",
                    method,
                    descriptor.address,
                    attempt,
                    exc,
                    delay,
                )

            try:
                response = call_with_retry(
                    send,
                    retry,
                    rng=endpoint.retry_rng,
                    breaker=breaker,
                    on_retry=on_retry,
                )
            except Exception as exc:
                from repro.errors import CircuitOpenError, DeadlineExceededError

                if isinstance(exc, DeadlineExceededError):
                    metrics.counter("calls.deadline_exceeded").add()
                elif isinstance(exc, CircuitOpenError):
                    metrics.counter("calls.breaker_rejected").add()
                raise
    finally:
        prepared.release()
    return complete_call(endpoint, prepared, response)


def handle_call(
    endpoint: Any, reader: BufferReader, call_id: int = 0, attempt: int = 0
) -> bytes:
    """Server half: decode, retain, execute, build the restore response."""
    request = decode_call(reader, call_id=call_id, attempt=attempt)
    profile = profile_by_name(request.profile)
    externalizers = endpoint.externalizers()

    args_reader = ObjectReader(
        request.args_payload, profile=profile, externalizers=externalizers
    )
    args = [args_reader.read_root() for _ in request.modes]
    shipped_map: List[Any] | None = None
    if request.ship_map:
        shipped_map = args_reader.read_root()
    args_reader.expect_end()

    impl = endpoint.exports.get(request.object_id)
    if request.method.startswith("_"):
        raise RemoteError(f"refusing to dispatch private method {request.method!r}")
    allowed = endpoint.exports.allowed_methods(request.object_id)
    if allowed is not None and request.method not in allowed:
        raise RemoteError(
            f"method {request.method!r} is outside the remote interface "
            f"of object {request.object_id}"
        )
    target = getattr(impl, request.method, None)
    if not callable(target):
        raise RemoteError(
            f"{type(impl).__name__} has no remote method {request.method!r}"
        )

    policy_name = effective_policy(request.policy, target)
    if policy_name == "delta":
        if not getattr(endpoint.config, "delta_replies", True):
            # Full-only server: it will not build any delta reply, so the
            # requested "delta" downgrades to a full-map reply. Legal
            # because the reply leads with the policy actually applied.
            policy_name = "full"
        elif request.caps & CAP_DELTA_SLOTS:
            # Negotiated upgrade: the caller can decode dirty-slot frames,
            # so answer with reply kind 4 instead of the legacy object
            # delta. Non-advertising (older) callers keep getting kind 2.
            policy_name = "delta-slots"
    policy = policy_by_name(policy_name)
    roots = _restore_roots(args, request.modes)
    retained: List[Any] = []
    if policy_name != "none":
        if shipped_map is not None:
            # Ablation path: trust the transmitted map instead of the one
            # reconstructed during deserialization.
            base_map = LinearMap(shipped_map)
        else:
            base_map = args_reader.linear_map
        retained = compute_retained(base_map, roots, endpoint.accessor)

    context = ServerRestoreContext(
        retained=retained,
        restore_roots=roots,
        profile=profile,
        accessor=endpoint.accessor,
        externalizers=externalizers,
        stop=is_opaque_remote,
        metrics=endpoint.metrics,
    )
    snapshot = policy.snapshot(context)

    positional = args
    keyword = {}
    if request.kwarg_names:
        split = len(args) - len(request.kwarg_names)
        positional = args[:split]
        keyword = dict(zip(request.kwarg_names, args[split:]))
    try:
        result = target(*positional, **keyword)
    except Exception as exc:  # noqa: BLE001 - becomes the remote exception
        logger.debug(
            "remote method %s.%s raised %s: %s",
            type(impl).__name__,
            request.method,
            type(exc).__name__,
            exc,
        )
        return exception_response(
            type(exc).__name__, str(exc), traceback.format_exc()
        )

    response_payload = policy.build_response(result, context, snapshot)
    return ok_response(bytes([policy_wire_id(policy_name)]) + response_payload)
