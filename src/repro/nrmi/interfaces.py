"""Remote interface contracts.

Java RMI services expose a *remote interface*: clients program against
it, and only its methods are callable remotely. This module brings the
same discipline here:

* declare an interface (a plain class with method stubs);
* bind a service with ``endpoint.bind(name, impl, interface=I)`` — the
  binding validates the implementation and the dispatcher then refuses
  any method outside the contract (defence against callers poking at
  implementation internals);
* optionally check a stub against the interface on the client.

Example::

    class PricingContract:
        def price(self, cart): ...
        def quote(self, sku, quantity): ...

    endpoint.bind("pricing", PricingImpl(), interface=PricingContract)
"""

from __future__ import annotations

import inspect
from typing import Any, FrozenSet, Iterable, List

from repro.errors import RemoteError


def is_remote_callable(member: Any) -> bool:
    """True when a class member counts as a remotely callable method.

    Only plain functions and (class/static) methods qualify. Arbitrary
    callables — nested classes, ``functools.partial`` attributes, callable
    instances stored on the class — are *not* remote methods: a dispatcher
    invoking them would bypass the method-call contract, and the static
    analyzer (rule NRMI004) flags them at the declaration site.
    """
    return inspect.isfunction(member) or inspect.ismethod(member)


def interface_methods(interface: type) -> FrozenSet[str]:
    """The public method names an interface declares (MRO included).

    Restricted to real functions/methods via :func:`is_remote_callable`;
    nested classes and callable attributes never enter the contract.
    """
    names = set()
    for name, member in inspect.getmembers(interface, is_remote_callable):
        if not name.startswith("_"):
            names.add(name)
    if not names:
        raise RemoteError(
            f"interface {interface.__name__} declares no public methods"
        )
    return frozenset(names)


def validate_implementation(impl: Any, interface: type) -> FrozenSet[str]:
    """Check *impl* provides every interface method; returns the whitelist.

    *impl* may be an instance (methods looked up bound) or a class
    (methods looked up unbound — used for lazily-activated services whose
    instance must not be constructed just to validate).

    Signatures are compared structurally: the implementation must accept
    every call the interface describes (same positional arity or more
    permissive, compatible keyword names).
    """
    is_class = isinstance(impl, type)
    source = impl if is_class else type(impl)
    label = source.__name__
    methods = interface_methods(interface)
    missing: List[str] = []
    incompatible: List[str] = []
    for name in sorted(methods):
        target = getattr(impl, name, None)
        if not callable(target):
            missing.append(name)
            continue
        declared = getattr(interface, name)
        if _signatures_clash(declared, target, target_unbound=is_class):
            incompatible.append(name)
    if missing or incompatible:
        problems = []
        if missing:
            problems.append(f"missing: {', '.join(missing)}")
        if incompatible:
            problems.append(f"incompatible signature: {', '.join(incompatible)}")
        raise RemoteError(
            f"{label} does not implement "
            f"{interface.__name__} ({'; '.join(problems)})"
        )
    return methods


def _positional_capacity(signature: inspect.Signature) -> tuple:
    """(min_required, max_allowed_or_None) positional args after self."""
    minimum = 0
    maximum: Any = 0
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            maximum += 1
            if parameter.default is inspect.Parameter.empty:
                minimum += 1
        elif parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            maximum = None
    return minimum, maximum


def _strip_self(signature: inspect.Signature) -> inspect.Signature:
    parameters = list(signature.parameters.values())
    if parameters and parameters[0].name in ("self", "cls"):
        return signature.replace(parameters=parameters[1:])
    return signature


def _signatures_clash(declared: Any, target: Any, target_unbound: bool = False) -> bool:
    """True when *target* cannot accept calls shaped like *declared*."""
    try:
        declared_sig = inspect.signature(declared)
        target_sig = inspect.signature(target)
    except (TypeError, ValueError):
        return False  # builtins etc.: give the benefit of the doubt
    # `declared` is an unbound function (self included); `target` is bound
    # unless validating a class (lazily-activated services).
    declared_sig = _strip_self(declared_sig)
    if target_unbound:
        target_sig = _strip_self(target_sig)
    declared_min, declared_max = _positional_capacity(declared_sig)
    target_min, target_max = _positional_capacity(target_sig)
    if target_min > declared_min:
        return True  # impl demands more than the contract promises callers
    if target_max is not None and (declared_max is None or declared_max > target_max):
        return True  # impl cannot absorb the contract's maximum arity
    return False


class CheckedStub:
    """A client-side wrapper allowing only the interface's methods."""

    def __init__(self, stub: Any, interface: type) -> None:
        self._stub = stub
        self._interface = interface
        self._methods = interface_methods(interface)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        if name not in self.__dict__["_methods"]:
            raise AttributeError(
                f"{self.__dict__['_interface'].__name__} declares no "
                f"method {name!r}"
            )
        return getattr(self.__dict__["_stub"], name)

    def __repr__(self) -> str:
        return f"CheckedStub({self._interface.__name__}, {self._stub!r})"
