"""Standalone NRMI server: serve services over TCP from the command line.

The `rmiregistry`-style entry point for real multi-process deployments::

    python -m repro.nrmi.server_main \\
        --bind trees=repro.bench.mutators:TreeService \\
        --host 127.0.0.1 --port 0 \\
        --announce /tmp/nrmi-address

Each ``--bind NAME=MODULE:CLASS`` imports ``CLASS`` from ``MODULE``,
instantiates it with no arguments, and binds it under ``NAME``. With
``--announce FILE`` the final ``tcp://host:port`` address is written to
FILE (and to stdout) once the server is accepting — the rendezvous a
launching process or test harness waits on.

The process serves until SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import importlib
import signal
import sys
import threading
from typing import Any, List, Optional, Tuple

from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint


def parse_binding(spec: str) -> Tuple[str, str, str]:
    """Split ``NAME=MODULE:CLASS`` into its three parts."""
    name, separator, target = spec.partition("=")
    if not separator or not name:
        raise ValueError(f"binding must look like NAME=MODULE:CLASS, got {spec!r}")
    module_name, separator, class_name = target.partition(":")
    if not separator or not module_name or not class_name:
        raise ValueError(f"binding target must look like MODULE:CLASS, got {target!r}")
    return name, module_name, class_name


def instantiate(module_name: str, class_name: str) -> Any:
    module = importlib.import_module(module_name)
    try:
        cls = getattr(module, class_name)
    except AttributeError:
        raise ValueError(f"{module_name} has no attribute {class_name}") from None
    return cls()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nrmi-server", description="Serve NRMI services over TCP."
    )
    parser.add_argument(
        "--bind",
        action="append",
        required=True,
        metavar="NAME=MODULE:CLASS",
        help="service binding (repeatable)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = pick a free one)")
    parser.add_argument("--announce", default=None, metavar="FILE",
                        help="write the bound address to FILE when ready")
    parser.add_argument("--profile", choices=["legacy", "modern"], default="modern")
    parser.add_argument("--policy", choices=["none", "full", "delta", "dce"],
                        default="full")
    parser.add_argument("--lease-seconds", type=float, default=None)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    implementation = "portable" if args.profile == "legacy" else "optimized"
    config = NRMIConfig(
        profile=args.profile,
        implementation=implementation,
        policy=args.policy,
        lease_seconds=args.lease_seconds,
    )
    endpoint = Endpoint(name="nrmi-server", config=config)
    try:
        for spec in args.bind:
            name, module_name, class_name = parse_binding(spec)
            service = instantiate(module_name, class_name)
            endpoint.bind(name, service)
            print(f"bound {name!r} -> {module_name}:{class_name}", flush=True)
        address = endpoint.serve_tcp(host=args.host, port=args.port)
        print(f"serving at {address}", flush=True)
        if args.announce:
            with open(args.announce, "w", encoding="utf-8") as handle:
                handle.write(address)

        stop = threading.Event()

        def shutdown(_signum: int, _frame: Any) -> None:
            stop.set()

        signal.signal(signal.SIGINT, shutdown)
        signal.signal(signal.SIGTERM, shutdown)
        stop.wait()
        print("shutting down", flush=True)
        return 0
    finally:
        endpoint.close()


if __name__ == "__main__":
    sys.exit(main())
