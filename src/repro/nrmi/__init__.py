"""NRMI: the drop-in middleware API.

The programmer-facing layer, mirroring the paper's Section 5.1:

* declare a class ``Restorable`` → its instances pass by copy-restore;
* declare it ``Serializable`` (or use plain containers) → by copy;
* subclass ``Remote`` → by reference (stubs);
* primitives always pass by value.

Minimal usage::

    from repro import nrmi
    from repro.core import Remote, Restorable

    class Counter(Restorable):
        def __init__(self):
            self.value = 0

    class Service(Remote):
        def bump(self, counter):
            counter.value += 1

    with nrmi.serve(Service(), name="svc") as server:
        client = nrmi.Endpoint(name="client")
        svc = client.lookup(server.address, "svc")
        counter = Counter()
        svc.bump(counter)
        assert counter.value == 1      # restored in place

``NRMIConfig`` selects the serialization profile (``legacy``/``modern``,
modelling JDK 1.3/1.4), the restore implementation
(``portable``/``optimized``), and the restore policy (``full`` — the
paper's NRMI; ``delta`` — its future-work optimization; ``dce`` — the DCE
RPC baseline; ``none`` — plain RMI call-by-copy).
"""

from repro.core.markers import Remote, Restorable, Serializable
from repro.nrmi.annotations import no_restore, restore_policy
from repro.nrmi.batch import BatchHandle, CallBatch
from repro.nrmi.config import NRMIConfig
from repro.nrmi.interfaces import (
    CheckedStub,
    interface_methods,
    is_remote_callable,
    validate_implementation,
)
from repro.nrmi.runtime import (
    Endpoint,
    async_call,
    default_endpoint,
    lookup,
    serve,
)
from repro.rmi.activation import Activatable

__all__ = [
    "Remote",
    "Restorable",
    "Serializable",
    "NRMIConfig",
    "Endpoint",
    "async_call",
    "default_endpoint",
    "lookup",
    "serve",
    "no_restore",
    "restore_policy",
    "CallBatch",
    "BatchHandle",
    "CheckedStub",
    "interface_methods",
    "is_remote_callable",
    "validate_implementation",
    "Activatable",
]
