"""The endpoint runtime: one NRMI/RMI node.

An :class:`Endpoint` is a peer — simultaneously server (export table,
dispatcher, registry) and client (stubs, pointers, channels). That
symmetry matters for the paper's call-by-reference experiment, where the
*client* exports its tree nodes and the server calls back into them.

Endpoints are reachable through ``inproc://`` addresses by default (each
registers itself with the resolver); :meth:`Endpoint.serve_tcp` also
exposes the same dispatcher over real sockets.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import uuid
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Iterator, Optional, Tuple

from repro.core.copy_restore import RestoreEngine, RestoreStats
from repro.core.markers import Remote
from repro.errors import RemoteError, TransportError
from repro.nrmi.config import NRMIConfig
from repro.nrmi.invocation import ReplyPolicyChooser, client_call
from repro.rmi.dispatcher import Dispatcher
from repro.rmi.export import ExportTable
from repro.rmi.protocol import (
    Status,
    encode_dgc_release,
    encode_dgc_renew,
    encode_field_get,
    encode_field_set,
    encode_ping,
    split_response,
)
from repro.rmi.registry import REGISTRY_OBJECT_ID, RegistryService
from repro.rmi.remote_ref import (
    POINTER_EXT,
    POINTER_VALUE_TYPES,
    REMOTE_EXT,
    RemoteDescriptor,
    RemotePointer,
    RemoteStub,
    is_opaque_remote,
)
from repro.serde.accessors import accessor_by_name
from repro.serde.profiles import SerializationProfile, profile_by_name
from repro.serde.reader import ObjectReader
from repro.serde.registry import Externalizer
from repro.serde.writer import ObjectWriter
from repro.transport.base import Channel
from repro.transport.reliability import BreakerRegistry, CircuitBreaker
from repro.transport.resolver import ChannelResolver, global_resolver
from repro.transport.shm import ShmServer
from repro.transport.stream import StreamServer
from repro.transport.tcp import TcpServer
from repro.transport.uds import UdsServer
from repro.util.rng import DeterministicRandom
from repro.util.buffers import BufferPool, BufferReader, BufferWriter
from repro.util.metrics import MetricsRegistry
from repro.errors import RemoteInvocationError


def resolve_profile(config: NRMIConfig) -> SerializationProfile:
    """The serialization profile *config* selects, codegen knob applied.

    ``serde_codegen=False`` strips the exec-generated fast path off the
    modern profile, leaving the interpreted compiled-plan path (the
    legacy profile never had codegen, so the knob is a no-op there).
    """
    import dataclasses

    profile = profile_by_name(config.profile)
    if not config.serde_codegen and profile.use_codegen:
        profile = dataclasses.replace(profile, use_codegen=False)
    return profile


class Endpoint:
    """One middleware node: exports objects, makes and serves remote calls."""

    def __init__(
        self,
        name: Optional[str] = None,
        config: Optional[NRMIConfig] = None,
        resolver: ChannelResolver = global_resolver,
    ) -> None:
        self.config = config if config is not None else NRMIConfig()
        self.resolver = resolver
        self.profile = resolve_profile(self.config)
        self.accessor = accessor_by_name(self.config.implementation)
        self.engine = RestoreEngine(accessor=self.accessor, opaque=is_opaque_remote)
        self.exports = ExportTable(
            leak_budget=self.config.leak_budget,
            lease_seconds=self.config.lease_seconds,
        )
        self.registry_service = RegistryService()
        registry_id = self.exports.export(self.registry_service, pin=True)
        if registry_id != REGISTRY_OBJECT_ID:  # pragma: no cover - invariant
            raise RemoteError("registry must receive the well-known object id")
        self.metrics = MetricsRegistry()
        # Recycled encode-buffer storage for the invocation pipeline:
        # steady-state calls marshal into pooled bytearrays instead of
        # allocating fresh write buffers per call.
        self.buffer_pool = BufferPool()
        self.dispatcher = Dispatcher(self)
        self.name = name or f"ep-{uuid.uuid4().hex[:10]}"
        # At-most-once identity: call IDs are unique per endpoint lifetime
        # (random 32-bit session prefix + sequence) so a reply cached for
        # one call can never answer a different one.
        self._call_id_prefix = (uuid.uuid4().int & 0x7FFFFFFF) or 1
        self._call_id_seq = itertools.count(1)
        # Backoff jitter draws from a stream seeded by the endpoint name:
        # deterministic under test, decorrelated across endpoints.
        self.retry_rng = DeterministicRandom(zlib.crc32(self.name.encode("utf-8")))
        # Resolves the "auto" restore policy per call from the dirty-slot
        # ratios observed in this endpoint's delta replies.
        self.reply_chooser = ReplyPolicyChooser()
        self._breakers = BreakerRegistry(
            self.config.breaker, on_transition=self._record_breaker_transition
        )
        self.address = resolver.register_inproc(self.name, self.dispatcher.handle)
        self._tcp_server: Optional[TcpServer] = None
        self._uds_server: Optional[StreamServer] = None
        self._shm_server: Optional[StreamServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._closed = False
        self._stats_lock = threading.Lock()
        self.last_restore_stats: Optional[RestoreStats] = None
        self._externalizers = (
            self._make_remote_externalizer(),
            self._make_pointer_externalizer(),
        )

    # ------------------------------------------------------------ lifecycle

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> str:
        """Additionally expose this endpoint over TCP; returns the address.

        Stubs minted after this call carry the TCP address, so they stay
        valid for peers in other processes.
        """
        if self._tcp_server is None:
            self._tcp_server = TcpServer(
                self.dispatcher.handle,
                host=host,
                port=port,
                **self._server_options(),
            )
            self.address = self._tcp_server.address
        return self._tcp_server.address

    def _server_options(self) -> dict:
        """Staged-server sizing and overload policy from the config."""
        return {
            "workers": self.config.server_workers,
            "queue_capacity": self.config.queue_capacity,
            "max_inflight_per_conn": self.config.max_inflight_per_conn,
            "overload_policy": self.config.overload_policy,
            "metrics": self.metrics,
            # Only shm duplexes are zero-copy capable; socket transports
            # accept and ignore the knob.
            "zero_copy": self.config.shm_zero_copy,
        }

    def serve_uds(self, path: Optional[str] = None) -> str:
        """Additionally expose this endpoint over a Unix domain socket.

        Returns the ``uds://<path>`` address (a fresh temp-dir socket
        when *path* is omitted). Stubs minted after this call carry the
        UDS address, so they stay valid for other processes on this
        host. Raises :class:`~repro.errors.TransportError` on platforms
        without ``AF_UNIX``.
        """
        if self._uds_server is None:
            self._uds_server = UdsServer(
                self.dispatcher.handle, path=path, **self._server_options()
            )
            self.address = self._uds_server.address
        return self._uds_server.address

    def serve_shm(self, name: Optional[str] = None) -> str:
        """Additionally expose this endpoint over shared-memory rings.

        Returns the ``shm://<name>`` address (a fresh name when omitted).
        Stubs minted after this call carry the shm address, so they stay
        valid for co-located processes. Raises
        :class:`~repro.errors.TransportError` on platforms without
        ``AF_UNIX`` + ``SCM_RIGHTS`` fd passing.
        """
        if self._shm_server is None:
            self._shm_server = ShmServer(
                self.dispatcher.handle, name=name, **self._server_options()
            )
            self.address = self._shm_server.address
        return self._shm_server.address

    def serve_remote(self, **kwargs: Any) -> str:
        """Expose this endpoint over the socket transport the config picks.

        ``config.transport == "tcp"`` forwards *kwargs* to
        :meth:`serve_tcp` (host/port), ``"uds"`` to :meth:`serve_uds`
        (path), ``"shm"`` to :meth:`serve_shm` (name); returns the
        resulting address either way.
        """
        if self.config.transport == "uds":
            return self.serve_uds(**kwargs)
        if self.config.transport == "shm":
            return self.serve_shm(**kwargs)
        return self.serve_tcp(**kwargs)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.resolver.unregister_inproc(self.name)
        if self._tcp_server is not None:
            self._tcp_server.stop()
        if self._uds_server is not None:
            self._uds_server.stop()
        if self._shm_server is not None:
            self._shm_server.stop()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        sweeper_stop = getattr(self, "_sweeper_stop", None)
        if sweeper_stop is not None:
            sweeper_stop.set()

    def __enter__(self) -> "Endpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------- externalizers

    def externalizers(self) -> Tuple[Externalizer, ...]:
        """Per-call serialization hooks giving remote objects by-reference
        semantics on this endpoint."""
        return self._externalizers

    def _make_remote_externalizer(self) -> Externalizer:
        def claims(obj: Any) -> bool:
            return isinstance(obj, (Remote, RemoteStub))

        def replace(obj: Any) -> bytes:
            if isinstance(obj, RemoteStub):
                return obj.descriptor.encode()
            object_id = self.exports.export_marshalled(obj)
            return RemoteDescriptor(self.address, object_id).encode()

        def resolve(payload: bytes) -> Any:
            descriptor = RemoteDescriptor.decode(payload)
            if descriptor.address == self.address:
                return self.exports.get(descriptor.object_id)
            return RemoteStub(self, descriptor)

        return Externalizer(REMOTE_EXT, claims, replace, resolve, type_based=True)

    def _make_pointer_externalizer(self) -> Externalizer:
        def claims(obj: Any) -> bool:
            return isinstance(obj, RemotePointer)

        def replace(obj: Any) -> bytes:
            return obj.descriptor.encode()

        def resolve(payload: bytes) -> Any:
            descriptor = RemoteDescriptor.decode(payload)
            if descriptor.address == self.address:
                return self.exports.get(descriptor.object_id)
            return RemotePointer(self, descriptor)

        return Externalizer(POINTER_EXT, claims, replace, resolve, type_based=True)

    # ------------------------------------------------------------- client

    def channel_to(self, address: str) -> Channel:
        return self.resolver.resolve(
            address, pipelined=getattr(self.config, "tcp_pipelined", False)
        )

    # ---------------------------------------------------------- reliability

    def next_call_id(self) -> int:
        """A fresh at-most-once call ID (non-zero, unique per endpoint)."""
        return (self._call_id_prefix << 32) | next(self._call_id_seq)

    def breaker_for(self, address: str) -> Optional[CircuitBreaker]:
        """The circuit breaker guarding *address* (None when disabled)."""
        return self._breakers.breaker_for(address)

    def breaker_states(self) -> dict:
        """Current breaker state per address (observability surface)."""
        return self._breakers.states()

    def _record_breaker_transition(self, address: str, old: str, new: str) -> None:
        self.metrics.counter(f"breaker.to_{new}").add()
        self.metrics.gauge(f"breaker.state.{address}").set(
            {
                CircuitBreaker.CLOSED: 0,
                CircuitBreaker.OPEN: 1,
                CircuitBreaker.HALF_OPEN: 2,
            }[new]
        )

    def invoke(
        self,
        descriptor: RemoteDescriptor,
        method: str,
        args: Tuple[Any, ...],
        policy: Optional[str] = None,
        kwargs: Optional[dict] = None,
    ) -> Any:
        """Invoke *method* on the remote object behind *descriptor*."""
        self.metrics.counter("calls.outgoing").add()
        return client_call(
            self, descriptor, method, args, policy_name=policy, kwargs=kwargs
        )

    def invoke_async(
        self,
        descriptor: RemoteDescriptor,
        method: str,
        args: Tuple[Any, ...],
        policy: Optional[str] = None,
    ) -> "Future[Any]":
        """Invoke without blocking; returns a Future.

        The restore phase runs on the worker thread just before the future
        resolves, so a multi-threaded caller must not read the restorable
        arguments until ``result()`` returns — the caveat Section 4.1 of
        the paper raises for multi-threaded clients generally.
        """
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=8, thread_name_prefix=f"nrmi-{self.name}"
                )
            executor = self._executor
        return executor.submit(self.invoke, descriptor, method, args, policy)

    def batch(self) -> "CallBatch":
        """Start a call batch: queue calls, flush them in one round trip
        per target endpoint (use as a context manager)."""
        from repro.nrmi.batch import CallBatch

        return CallBatch(self)

    def lookup(self, address: str, name: str) -> Any:
        """Look *name* up in the registry of the endpoint at *address*."""
        registry_stub = RemoteStub(
            self, RemoteDescriptor(address, REGISTRY_OBJECT_ID)
        )
        return registry_stub.lookup(name)

    def lookup_registry_names(self, address: str) -> list:
        """List the names bound at the endpoint at *address*."""
        registry_stub = RemoteStub(
            self, RemoteDescriptor(address, REGISTRY_OBJECT_ID)
        )
        return registry_stub.list_names()

    def ping(self, address: str) -> bool:
        response = self.channel_to(address).request(encode_ping())
        status, _reader = split_response(response)
        return status is Status.OK

    def record_restore_stats(self, stats: Optional[RestoreStats]) -> None:
        with self._stats_lock:
            self.last_restore_stats = stats
        if stats is not None:
            self.metrics.counter("restore.old_overwritten").add(stats.old_overwritten)
            self.metrics.counter("restore.new_adopted").add(stats.new_adopted)

    # ------------------------------------------------------------- server

    def bind(self, name: str, service: Any, interface: Optional[type] = None) -> None:
        """Bind *service* in this endpoint's registry (must be Remote).

        With *interface*, the implementation is validated against the
        contract and remote dispatch is restricted to its methods.
        """
        if not isinstance(service, Remote):
            raise RemoteError(
                f"cannot bind {type(service).__name__}: services passed "
                "by reference must subclass repro.core.Remote"
            )
        object_id = self.exports.export(service, pin=True)
        if interface is not None:
            from repro.nrmi.interfaces import validate_implementation
            from repro.rmi.activation import Activatable

            if isinstance(service, Activatable) and isinstance(
                service._factory, type
            ):
                # Validate the factory class so binding stays lazy.
                methods = validate_implementation(service._factory, interface)
            else:
                methods = validate_implementation(service, interface)
            self.exports.set_allowed_methods(object_id, methods)
        self.registry_service.rebind(name, service)

    def unbind(self, name: str) -> None:
        self.registry_service.unbind(name)

    # ------------------------------------------------- remote pointers (Fig 3)

    def pointer_to(self, obj: Any) -> RemotePointer:
        """Export *obj* and return a pointer handing out by-reference access.

        This is the naive call-by-reference of the paper's Figure 3: give
        the pointer to a remote method and every field access it performs
        becomes a round trip back here.
        """
        object_id = self.exports.export_marshalled(obj)
        return RemotePointer(self, RemoteDescriptor(self.address, object_id))

    def pointer_field_get(self, descriptor: RemoteDescriptor, name: str) -> Any:
        request = encode_field_get(descriptor.object_id, name)
        response = self.channel_to(descriptor.address).request(request)
        reader = self._require_ok(descriptor, response)
        return self.decode_pointer_value(reader.read_bytes(reader.remaining))

    def pointer_field_set(
        self, descriptor: RemoteDescriptor, name: str, value: Any
    ) -> None:
        request = encode_field_set(
            descriptor.object_id, name, self.encode_pointer_value(value)
        )
        response = self.channel_to(descriptor.address).request(request)
        self._require_ok(descriptor, response)

    def _require_ok(
        self, descriptor: RemoteDescriptor, response: bytes
    ) -> BufferReader:
        status, reader = split_response(response)
        if status is Status.EXCEPTION:
            exc_type = reader.read_str()
            message = reader.read_str()
            remote_tb = reader.read_str()
            raise RemoteInvocationError(exc_type, message, remote_tb)
        if status is Status.PROTOCOL_ERROR:
            raise RemoteError(
                f"protocol error from {descriptor.address}: {reader.read_str()}"
            )
        return reader

    def encode_pointer_value(self, value: Any) -> bytes:
        """By-reference value coding: primitives by value, the rest as pointers."""
        writer = BufferWriter()
        if isinstance(value, RemotePointer):
            writer.write_u8(1)
            writer.write_bytes(value.descriptor.encode())
        elif type(value) in POINTER_VALUE_TYPES or value is None:
            writer.write_u8(0)
            inner = ObjectWriter(profile=self.profile)
            inner.write_root(value)
            writer.write_bytes(inner.getvalue())
        else:
            object_id = self.exports.export_marshalled(value)
            writer.write_u8(1)
            writer.write_bytes(RemoteDescriptor(self.address, object_id).encode())
        return writer.getvalue()

    def decode_pointer_value(self, payload: bytes) -> Any:
        reader = BufferReader(payload)
        kind = reader.read_u8()
        body = reader.read_bytes(reader.remaining)
        if kind == 0:
            inner = ObjectReader(body, profile=self.profile)
            value = inner.read_root()
            inner.expect_end()
            return value
        descriptor = RemoteDescriptor.decode(body)
        if descriptor.address == self.address:
            return self.exports.get(descriptor.object_id)
        return RemotePointer(self, descriptor)

    # ----------------------------------------------------------------- DGC

    def renew(self, ref: Any) -> bool:
        """Renew the lease on a remote reference at its owner.

        Returns False when the owner no longer holds the object (the
        lease already expired, or it was released).
        """
        descriptor = self._descriptor_of(ref)
        request = encode_dgc_renew([descriptor.object_id])
        try:
            response = self.channel_to(descriptor.address).request(request)
        except TransportError:
            return False
        status, reader = split_response(response)
        if status is not Status.OK or reader.remaining < 1:
            return False
        return bool(reader.read_u8())

    def sweep_leases(self) -> list:
        """Drop expired leases on this endpoint's exports (server side)."""
        return self.exports.dgc.expire_leases()

    def start_lease_sweeper(self, interval_seconds: float = 30.0) -> None:
        """Run :meth:`sweep_leases` periodically on a daemon thread.

        Idempotent; the thread stops when the endpoint closes.
        """
        if getattr(self, "_sweeper_thread", None) is not None:
            return
        stop_event = threading.Event()
        self._sweeper_stop = stop_event

        def sweep_loop() -> None:
            while not stop_event.wait(interval_seconds):
                self.sweep_leases()

        thread = threading.Thread(
            target=sweep_loop, name=f"nrmi-sweeper-{self.name}", daemon=True
        )
        self._sweeper_thread = thread
        thread.start()

    @staticmethod
    def _descriptor_of(ref: Any) -> RemoteDescriptor:
        if isinstance(ref, (RemoteStub, RemotePointer)):
            return ref.descriptor
        if isinstance(ref, RemoteDescriptor):
            return ref
        raise RemoteError(f"not a remote reference: {type(ref).__name__}")

    def release(self, ref: Any, count: int = 1) -> None:
        """Tell a reference's owner we dropped *count* references to it."""
        if isinstance(ref, (RemoteStub, RemotePointer)):
            descriptor = ref.descriptor
        elif isinstance(ref, RemoteDescriptor):
            descriptor = ref
        else:
            raise RemoteError(f"cannot release {type(ref).__name__}")
        request = encode_dgc_release([(descriptor.object_id, count)])
        try:
            response = self.channel_to(descriptor.address).request(request)
        except TransportError:
            return  # owner gone: nothing to release
        split_response(response)


_default_endpoint: Optional[Endpoint] = None
_default_lock = threading.Lock()


def default_endpoint() -> Endpoint:
    """The process-wide client endpoint, created lazily."""
    global _default_endpoint
    with _default_lock:
        if _default_endpoint is None or _default_endpoint._closed:
            _default_endpoint = Endpoint(name="default")
        return _default_endpoint


@contextlib.contextmanager
def serve(
    service: Any,
    name: str,
    config: Optional[NRMIConfig] = None,
    tcp: bool = False,
) -> Iterator[Endpoint]:
    """Run *service* under *name* on a fresh endpoint (context manager)."""
    endpoint = Endpoint(config=config)
    try:
        endpoint.bind(name, service)
        if tcp:
            endpoint.serve_tcp()
        yield endpoint
    finally:
        endpoint.close()


def lookup(address: str, name: str, client: Optional[Endpoint] = None) -> Any:
    """Convenience lookup through *client* (default process endpoint)."""
    caller = client if client is not None else default_endpoint()
    return caller.lookup(address, name)


def async_call(stub: RemoteStub, method: str, *args: Any) -> "Future[Any]":
    """Invoke ``stub.method(*args)`` without blocking; returns a Future."""
    if not isinstance(stub, RemoteStub):
        raise RemoteError(
            f"async_call needs a remote stub, got {type(stub).__name__}"
        )
    endpoint = stub.__dict__["_endpoint"]
    return endpoint.invoke_async(stub.descriptor, method, tuple(args))
