"""Method-level semantics annotations for remote services.

NRMI picks calling semantics per *type* (the paper's design); sometimes a
server also wants to pin the restore behaviour per *method* — e.g. a
read-only query over a big restorable structure shouldn't pay for a
restore payload at all, whatever the argument types say. The decorators
here attach that choice to the method; the dispatcher honours it and the
response tells the caller which policy actually built the payload, so
both sides always agree.

Rules:

* An override never *upgrades* a plain call-by-copy request: if the
  caller sent no restorable arguments (policy ``none``), there is no
  recorded linear map to restore into, so ``none`` it stays.
* Between restoring policies (``full``/``delta``/``dce``) the server's
  choice wins — the caller's recorded map supports all three.

Example::

    class Library(Remote):
        @no_restore
        def count_books(self, catalog):   # read-only: skip the restore
            return len(catalog.books)

        @restore_policy("delta")
        def reindex(self, catalog):       # sparse writes: delta pays off
            ...
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

_VALID = ("none", "full", "delta", "dce")

POLICY_ATTR = "__nrmi_policy__"

F = TypeVar("F", bound=Callable)


def restore_policy(name: str) -> Callable[[F], F]:
    """Pin the restore policy used when this remote method is invoked."""
    if name not in _VALID:
        raise ValueError(f"policy must be one of {_VALID}, got {name!r}")

    def decorate(fn: F) -> F:
        setattr(fn, POLICY_ATTR, name)
        return fn

    return decorate


def no_restore(fn: F) -> F:
    """Shorthand: the method never sends a restore payload (read-only)."""
    return restore_policy("none")(fn)


def method_policy_override(target: Callable) -> Optional[str]:
    """The policy a server method pinned, or None."""
    return getattr(target, POLICY_ATTR, None)


def effective_policy(requested: str, target: Callable) -> str:
    """Combine the caller's requested policy with the method's override."""
    override = method_policy_override(target)
    if override is None:
        return requested
    if requested == "none":
        # No linear map was recorded on the caller: cannot upgrade.
        return "none"
    return override
