"""The paper's running example (Figures 1-9) as executable heap states.

``build_figure1`` constructs the tree of Figure 1 — a binary tree whose
interior nodes are aliased by ``alias1`` and ``alias2`` — and ``foo`` is
the paper's mutator verbatim. The ``expected_*`` functions return
comparable snapshots of the heap states the paper's figures draw, which
the test suite asserts against every calling semantics:

* Figure 2 — local call / call-by-reference / NRMI copy-restore;
* Figure 9 — DCE RPC partial restore;
* call-by-copy — no client-visible change at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.bench.trees import TreeNode


@dataclass
class Figure1:
    """The running example: tree ``t`` plus two aliases into it."""

    t: TreeNode
    alias1: TreeNode  # the original t.left   (data 1)
    alias2: TreeNode  # the original t.right  (data 7)
    node12: TreeNode  # the original t.right.right (data 12)
    node3: TreeNode   # the original t.right.right.left (data 3)


def build_figure1() -> Figure1:
    """Figure 1: t(5) with left 1, right 7, right.right 12, 12.left 3."""
    node3 = TreeNode(3)
    node12 = TreeNode(12, left=node3)
    right = TreeNode(7, right=node12)
    left = TreeNode(1)
    t = TreeNode(5, left=left, right=right)
    return Figure1(t=t, alias1=left, alias2=right, node12=node12, node3=node3)


def foo(tree: TreeNode) -> TreeNode:
    """The paper's Section 2 mutator, verbatim (returns the new subtree)."""
    tree.left.data = 0
    tree.right.data = 9
    tree.right.right.data = 8
    tree.left = None
    temp = TreeNode(2, tree.right.right, None)
    tree.right.right = None
    tree.right = temp
    return temp


Snapshot = Dict[str, Tuple[Optional[int], ...]]


def snapshot(fig: Figure1) -> Snapshot:
    """Project the observable state of the running example's heap.

    Tuple layout per entry: (data, left.data, right.data) with None for
    missing children; identity facts are captured as booleans.
    """

    def view(node: Optional[TreeNode]) -> Tuple[Optional[int], ...]:
        if node is None:
            return (None, None, None)
        return (
            node.data,
            node.left.data if node.left is not None else None,
            node.right.data if node.right is not None else None,
        )

    return {
        "t": view(fig.t),
        "t.right": view(fig.t.right),
        "alias1": view(fig.alias1),
        "alias2": view(fig.alias2),
        "node12": view(fig.node12),
        "t.left_is_none": (fig.t.left is None,),
        "t.right.left_is_node12": (
            fig.t.right is not None and fig.t.right.left is fig.node12,
        ),
        "node12.left_is_node3": (fig.node12.left is fig.node3,),
    }


def expected_figure2() -> Snapshot:
    """Figure 2: the state after a local (or copy-restore) call to foo."""
    return {
        "t": (5, None, 2),
        "t.right": (2, 8, None),
        "alias1": (0, None, None),
        "alias2": (9, None, None),
        "node12": (8, 3, None),
        "t.left_is_none": (True,),
        "t.right.left_is_node12": (True,),
        "node12.left_is_node3": (True,),
    }


def expected_figure9() -> Snapshot:
    """Figure 9: DCE RPC — changes to param-unreachable nodes are lost."""
    return {
        "t": (5, None, 2),
        "t.right": (2, 8, None),
        "alias1": (1, None, None),        # update lost
        "alias2": (7, None, 8),           # update lost; still points at node12
        "node12": (8, 3, None),           # reachable via temp: restored
        "t.left_is_none": (True,),
        "t.right.left_is_node12": (True,),
        "node12.left_is_node3": (True,),
    }


def expected_unchanged() -> Snapshot:
    """Plain call-by-copy: the caller's heap is untouched."""
    return {
        "t": (5, 1, 7),
        "t.right": (7, None, 12),
        "alias1": (1, None, None),
        "alias2": (7, None, 12),
        "node12": (12, 3, None),
        "t.left_is_none": (False,),
        "t.right.left_is_node12": (False,),
        "node12.left_is_node3": (True,),
    }


def render(snap: Snapshot) -> str:
    """Human-readable dump, used by ``python -m repro.bench.figures``."""
    lines = []
    for key in sorted(snap):
        lines.append(f"  {key:28s} {snap[key]}")
    return "\n".join(lines)


def main() -> None:
    from repro.core.markers import Remote
    from repro.nrmi.runtime import Endpoint, serve
    from repro.nrmi.config import NRMIConfig

    class FooService(Remote):
        def foo(self, tree: TreeNode) -> TreeNode:
            return foo(tree)

    print("Figure 1 (initial state):")
    print(render(snapshot(build_figure1())))

    fig = build_figure1()
    foo(fig.t)
    print("\nFigure 2 (after local foo(t)):")
    print(render(snapshot(fig)))

    for policy, label in (("full", "NRMI copy-restore"), ("dce", "DCE RPC"), ("none", "RMI call-by-copy")):
        fig = build_figure1()
        with serve(FooService(), name="foo-svc", config=NRMIConfig(policy=policy)) as server:
            client = Endpoint(config=NRMIConfig(policy=policy))
            try:
                service = client.lookup(server.address, "foo-svc")
                service.foo(fig.t)
            finally:
                client.close()
        print(f"\nAfter remote foo(t) under {label}:")
        print(render(snapshot(fig)))


if __name__ == "__main__":
    main()
