"""Benchmark drivers: one function per paper configuration.

Methodology (documented in EXPERIMENTS.md):

* **Compute time** is measured for real (``perf_counter`` around the whole
  exchange; in-process dispatch means client + server processing are both
  inside the window).
* **Network time** is *modelled*: every channel is wrapped in a
  :class:`SimulatedChannel` that accounts ``latency + bytes/bandwidth``
  per direction on the paper's 100 Mbps LAN. Nothing sleeps; runs are fast
  and deterministic in byte counts and round trips.
* The paper's slow host (440 MHz vs 750 MHz) is modelled as a CPU scale
  factor applied to compute time where a table calls for it.
* Reported per-call milliseconds are the median over ``reps`` fresh
  workloads (the tree is regenerated per repetition because mutation
  changes it).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.bench.manual_restore import ManualTreeService, manual_call
from repro.bench.mutators import TreeService, mutator_for
from repro.bench.trees import TreeWorkload, generate_workload
from repro.errors import ReproError
from repro.errors import DistributedLeakError, RemoteInvocationError
from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint
from repro.transport.resolver import ChannelResolver
from repro.transport.simnet import NetworkModel, SimulatedChannel

#: 750 MHz / 440 MHz: the paper's fast-to-slow host ratio.
CPU_SLOW_SCALE = 750.0 / 440.0

#: The paper's LAN.
PAPER_NETWORK = NetworkModel(
    bandwidth_bits_per_s=100e6, latency_s=0.0003, protocol_overhead_bytes=64
)

#: Export budget standing in for the paper's 1 GB heap limit in Table 6.
#: Sized so the 16/64/256-node runs complete and the 1024-node runs exhaust
#: it mid-experiment, as the paper's did.
REMOTE_REF_LEAK_BUDGET = 1500


@dataclass
class BenchRecord:
    """One measured cell of a table."""

    table: str
    scenario: str
    size: int
    config: str
    ms_compute: float = 0.0
    ms_network: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    round_trips: int = 0
    reps: int = 0
    failed: Optional[str] = None  # e.g. "leak" for Table 6 at 1024 nodes

    @property
    def ms_total(self) -> float:
        return self.ms_compute + self.ms_network

    def cell(self) -> str:
        """The table-cell rendering (paper style: ms, '-' for failures)."""
        if self.failed:
            return "-"
        total = self.ms_total
        return "<1" if total < 1.0 else f"{total:.0f}"


def _median_ms(samples: List[float]) -> float:
    return statistics.median(samples) * 1000.0


class BenchmarkInvariantError(ReproError):
    """A configuration broke the paper's visibility invariant."""


def _verify_against_local(
    scenario: str,
    size: int,
    seed: int,
    call_once: Callable[[TreeWorkload, int], Any],
    label: str,
) -> None:
    """Assert the configuration leaves the caller in the local-call state.

    The paper (5.3.2): "The invariant maintained is that all the changes
    are visible to the caller." One untimed extra exchange checks it.
    """
    remote_workload = generate_workload(scenario, size, seed)
    call_once(remote_workload, seed)
    local_workload = generate_workload(scenario, size, seed)
    mutator_for(scenario)(local_workload.root, seed)
    if remote_workload.visible_data() != local_workload.visible_data():
        raise BenchmarkInvariantError(
            f"{label}: caller-visible state diverged from local execution "
            f"(scenario {scenario}, size {size}, seed {seed})"
        )


@dataclass
class _Env:
    """A private two-endpoint world with simulated links."""

    server: Endpoint
    client: Endpoint
    resolver: ChannelResolver
    sim_channels: List[SimulatedChannel] = field(default_factory=list)

    def network_seconds(self) -> float:
        return sum(channel.simulated_seconds for channel in self.sim_channels)

    def reset_network(self) -> None:
        for channel in self.sim_channels:
            channel.reset_account()

    def traffic(self) -> tuple:
        sent = received = trips = 0
        for channel in self.sim_channels:
            snap = channel.stats.snapshot()
            sent += snap["bytes_sent"]
            received += snap["bytes_received"]
            trips += snap["requests"]
        return sent, received, trips

    def close(self) -> None:
        self.client.close()
        self.server.close()
        self.resolver.close_all()


def _make_env(
    server_config: NRMIConfig,
    client_config: NRMIConfig,
    network: Optional[NetworkModel],
) -> _Env:
    resolver = ChannelResolver()
    env_channels: List[SimulatedChannel] = []
    if network is not None:

        def wrap(inner: Any) -> SimulatedChannel:
            channel = SimulatedChannel(inner, network)
            env_channels.append(channel)
            return channel

    server = Endpoint(name="bench-server", config=server_config, resolver=resolver)
    client = Endpoint(name="bench-client", config=client_config, resolver=resolver)
    if network is not None:
        resolver.set_wrapper(server.address, wrap)
        resolver.set_wrapper(client.address, wrap)
    return _Env(server=server, client=client, resolver=resolver, sim_channels=env_channels)


def _measure(
    env: Optional[_Env],
    make_workload: Callable[[int], TreeWorkload],
    call_once: Callable[[TreeWorkload, int], Any],
    reps: int,
    record: BenchRecord,
    cpu_scale: float = 1.0,
) -> BenchRecord:
    # One unrecorded warmup exchange fills descriptor/accessor caches, so
    # the recorded samples measure steady state (the paper ensured all
    # code was JIT-compiled before measuring).
    warmup = make_workload(reps)
    call_once(warmup, reps)
    compute_samples: List[float] = []
    network_samples: List[float] = []
    for rep in range(reps):
        workload = make_workload(rep)
        if env is not None:
            env.reset_network()
        start = time.perf_counter()
        call_once(workload, rep)
        elapsed = time.perf_counter() - start
        compute_samples.append(elapsed)
        if env is not None:
            network_samples.append(env.network_seconds())
    record.ms_compute = _median_ms(compute_samples) * cpu_scale
    record.ms_network = _median_ms(network_samples) if network_samples else 0.0
    record.reps = reps
    if env is not None:
        record.bytes_sent, record.bytes_received, record.round_trips = env.traffic()
    return record


def run_local(
    scenario: str, size: int, reps: int = 5, machine: str = "fast", seed: int = 2003
) -> BenchRecord:
    """Table 1: local execution — the mutator alone, no middleware."""
    record = BenchRecord("1", scenario, size, f"local/{machine}")
    mutate = mutator_for(scenario)

    def make(rep: int) -> TreeWorkload:
        return generate_workload(scenario, size, seed + rep)

    def call(workload: TreeWorkload, rep: int) -> None:
        mutate(workload.root, seed + rep)

    scale = CPU_SLOW_SCALE if machine == "slow" else 1.0
    return _measure(None, make, call, reps, record, cpu_scale=scale)


def run_oneway(
    scenario: str,
    size: int,
    profile: str = "modern",
    reps: int = 5,
    seed: int = 2003,
    network: Optional[NetworkModel] = PAPER_NETWORK,
) -> BenchRecord:
    """Table 2: RMI call-by-copy, tree shipped one way, nothing restored."""
    implementation = "portable" if profile == "legacy" else "optimized"
    config = NRMIConfig(profile=profile, implementation=implementation, policy="none")
    record = BenchRecord("2", scenario, size, f"oneway/{profile}")
    env = _make_env(config, config, network)
    try:
        env.server.bind("trees", TreeService())
        service = env.client.lookup(env.server.address, "trees")

        def make(rep: int) -> TreeWorkload:
            return generate_workload(scenario, size, seed + rep)

        def call(workload: TreeWorkload, rep: int) -> None:
            service.mutate(scenario, workload.root, seed + rep)

        return _measure(env, make, call, reps, record)
    finally:
        env.close()


def run_manual_restore(
    scenario: str,
    size: int,
    profile: str = "modern",
    reps: int = 5,
    seed: int = 2003,
    network: Optional[NetworkModel] = PAPER_NETWORK,
    verify: bool = False,
) -> BenchRecord:
    """Tables 3 & 4: call-by-copy plus the hand-written restore emulation.

    ``network=None`` is Table 3 (same machine); the paper LAN is Table 4.
    """
    implementation = "portable" if profile == "legacy" else "optimized"
    config = NRMIConfig(profile=profile, implementation=implementation, policy="none")
    table = "3" if network is None else "4"
    record = BenchRecord(table, scenario, size, f"manual/{profile}")
    env = _make_env(config, config, network)
    try:
        env.server.bind("manual", ManualTreeService())
        service = env.client.lookup(env.server.address, "manual")

        def make(rep: int) -> TreeWorkload:
            return generate_workload(scenario, size, seed + rep)

        def call(workload: TreeWorkload, rep: int) -> None:
            manual_call(service, workload, seed + rep)

        def verify_call(workload: TreeWorkload, verify_seed: int) -> None:
            manual_call(service, workload, verify_seed)

        result = _measure(env, make, call, reps, record)
        if verify:
            _verify_against_local(
                scenario, size, seed + reps + 1, verify_call, record.config
            )
        return result
    finally:
        env.close()


def run_nrmi(
    scenario: str,
    size: int,
    profile: str = "modern",
    implementation: str = "optimized",
    policy: str = "full",
    reps: int = 5,
    seed: int = 2003,
    network: Optional[NetworkModel] = PAPER_NETWORK,
    verify: bool = False,
) -> BenchRecord:
    """Table 5: NRMI call-by-copy-restore (and the delta/dce ablations)."""
    config = NRMIConfig(profile=profile, implementation=implementation, policy=policy)
    record = BenchRecord(
        "5", scenario, size, f"nrmi-{policy}/{profile}/{implementation}"
    )
    env = _make_env(config, config, network)
    try:
        env.server.bind("trees", TreeService())
        service = env.client.lookup(env.server.address, "trees")

        def make(rep: int) -> TreeWorkload:
            return generate_workload(scenario, size, seed + rep)

        def call(workload: TreeWorkload, rep: int) -> None:
            service.mutate(scenario, workload.root, seed + rep)

        def verify_call(workload: TreeWorkload, verify_seed: int) -> None:
            service.mutate(scenario, workload.root, verify_seed)

        result = _measure(env, make, call, reps, record)
        if verify:
            _verify_against_local(
                scenario, size, seed + reps + 1, verify_call, record.config
            )
        return result
    finally:
        env.close()


def run_remote_ref(
    scenario: str,
    size: int,
    profile: str = "modern",
    reps: int = 3,
    seed: int = 2003,
    network: Optional[NetworkModel] = PAPER_NETWORK,
    leak_budget: int = REMOTE_REF_LEAK_BUDGET,
) -> BenchRecord:
    """Table 6: call-by-reference through remote pointers (Figure 3).

    The client exports every accessed node; the server's field accesses
    are individual round trips; server-allocated nodes spliced into the
    client's tree create distributed cycles the reference-counting DGC can
    never reclaim. With the paper-scale budget the 1024-node runs fail by
    leak, mirroring the paper's heap exhaustion.
    """
    implementation = "portable" if profile == "legacy" else "optimized"
    client_config = NRMIConfig(
        profile=profile,
        implementation=implementation,
        policy="none",
        leak_budget=leak_budget,
    )
    server_config = NRMIConfig(profile=profile, implementation=implementation, policy="none")
    record = BenchRecord("6", scenario, size, f"remote-ref/{profile}")
    env = _make_env(server_config, client_config, network)
    try:
        env.server.bind("trees", TreeService())
        service = env.client.lookup(env.server.address, "trees")

        def make(rep: int) -> TreeWorkload:
            return generate_workload(scenario, size, seed + rep)

        def call(workload: TreeWorkload, rep: int) -> None:
            pointer = env.client.pointer_to(workload.root)
            service.mutate(scenario, pointer, seed + rep)

        try:
            return _measure(env, make, call, reps, record)
        except DistributedLeakError as exc:
            record.failed = f"leak: {exc}"
            record.reps = reps
            return record
        except RemoteInvocationError as exc:
            # The leak fires inside the *client's* dispatcher while it
            # serves the server's field accesses, so it arrives wrapped.
            if "DistributedLeakError" not in f"{exc.exc_type_name} {exc.remote_message}":
                raise
            record.failed = "leak (remote)"
            record.reps = reps
            return record
    finally:
        env.close()
