"""Server-side tree mutators.

The remote method "performs random changes to its input tree" (paper
5.3.2). Two mutators cover the scenarios:

* :func:`mutate_data` — changes node payloads only (scenario II keeps the
  structure intact);
* :func:`mutate_structure` — additionally swaps children, detaches
  subtrees, and splices in newly allocated nodes (scenarios I and III).

Both are written with **plain attribute access and no identity-based
bookkeeping**, so exactly the same code runs on local trees, on
deserialized copies (NRMI / RMI), and on :class:`RemotePointer` proxies
(the call-by-reference baseline) — the paper's point that the server code
"can proceed at full speed" unchanged. Decisions are drawn from a seeded
stream in deterministic preorder, so a given seed produces the same
mutation everywhere; tests exploit this to compare remote configurations
against local execution.
"""

from __future__ import annotations

from typing import Any

from repro.core.markers import Remote
from repro.bench.trees import TreeNode
from repro.util.rng import DeterministicRandom

#: Probabilities of each mutation applied per visited node.
DATA_CHANGE_CHANCE = 0.6
SWAP_CHANCE = 0.15
DETACH_CHANCE = 0.08
SPLICE_CHANCE = 0.15


def mutate_data(root: Any, seed: int) -> int:
    """Randomly overwrite node payloads; structure untouched.

    Returns the number of nodes changed.
    """
    rng = DeterministicRandom(seed).fork("mutate-data")
    changed = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if rng.chance(DATA_CHANGE_CHANCE):
            node.data = rng.randint(10_001, 20_000)
            changed += 1
        stack.append(node.right)
        stack.append(node.left)
    return changed


def mutate_structure(root: Any, seed: int) -> int:
    """Randomly change data *and* structure; the root object stays the root.

    Per visited node (deterministic preorder) the mutator may overwrite the
    payload, swap the children, detach a subtree (orphaning nodes the
    caller may still alias — the hard case for by-hand restoration), or
    splice a freshly allocated node above a child. Returns the number of
    mutations applied.
    """
    rng = DeterministicRandom(seed).fork("mutate-structure")
    mutations = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if rng.chance(DATA_CHANGE_CHANCE):
            node.data = rng.randint(10_001, 20_000)
            mutations += 1
        if rng.chance(SWAP_CHANCE):
            node.left, node.right = node.right, node.left
            mutations += 1
        if rng.chance(DETACH_CHANCE):
            if rng.chance(0.5):
                node.left = None
            else:
                node.right = None
            mutations += 1
        if rng.chance(SPLICE_CHANCE):
            fresh = TreeNode(rng.randint(20_001, 30_000))
            if rng.chance(0.5):
                fresh.left = node.left
                node.left = fresh
            else:
                fresh.right = node.right
                node.right = fresh
            mutations += 1
        stack.append(node.right)
        stack.append(node.left)
    return mutations


def mutate_sparse(root: Any, seed: int, fraction: float = 0.05) -> int:
    """Overwrite only ~*fraction* of the payloads (delta-policy ablation).

    With few changes, the delta restore policy ships almost nothing back,
    while the full policy still returns the entire linear map.
    """
    rng = DeterministicRandom(seed).fork("mutate-sparse")
    changed = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if rng.chance(fraction):
            node.data = rng.randint(10_001, 20_000)
            changed += 1
        stack.append(node.right)
        stack.append(node.left)
    return changed


def mutator_for(scenario: str):
    """The mutator a scenario's remote method applies."""
    return mutate_data if scenario == "II" else mutate_structure


class TreeService(Remote):
    """The remote tree service used by the NRMI and baseline benchmarks."""

    def mutate_data(self, tree: Any, seed: int) -> int:
        return mutate_data(tree, seed)

    def mutate_structure(self, tree: Any, seed: int) -> int:
        return mutate_structure(tree, seed)

    def mutate(self, scenario: str, tree: Any, seed: int) -> int:
        return mutator_for(scenario)(tree, seed)

    def mutate_sparse(self, tree: Any, seed: int, fraction: float = 0.05) -> int:
        return mutate_sparse(tree, seed, fraction)

    def noop(self, tree: Any) -> None:
        """Receives the tree and changes nothing (delta-policy ablation)."""
