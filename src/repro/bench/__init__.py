"""Benchmark harness reproducing the paper's evaluation (Section 5.3).

* :mod:`repro.bench.trees` — randomly generated binary-tree workloads for
  the three benchmark scenarios (no aliases / aliases + stable structure /
  aliases + arbitrary structure changes);
* :mod:`repro.bench.mutators` — the remote tree services, written with
  plain attribute access so the same code runs on local objects and on
  remote pointers;
* :mod:`repro.bench.manual_restore` — the hand-written call-by-copy
  emulations of copy-restore the paper describes (return-value
  reassignment, isomorphic traversal, shadow tree), with the line counts
  Section 5.3.2 reports;
* :mod:`repro.bench.figures` — the running example (Figures 1-9) as
  executable heap states;
* :mod:`repro.bench.harness` — drivers measuring compute time, simulated
  network time, bytes, and round trips for every configuration;
* :mod:`repro.bench.tables` — the paper's Tables 1-6 as data plus the
  reproduction's table specifications;
* :mod:`repro.bench.report` — CLI that regenerates each table.
"""

from repro.bench.trees import TreeNode, TreeWorkload, generate_workload
from repro.bench.mutators import TreeService, mutate_data, mutate_structure

__all__ = [
    "TreeNode",
    "TreeWorkload",
    "generate_workload",
    "TreeService",
    "mutate_data",
    "mutate_structure",
]
