"""Additional workload families beyond the paper's binary trees.

The paper's evaluation uses random binary trees, but its motivation names
"lists, graphs, trees, hash tables" (Section 1). This module adds the
other shapes as clearly-labelled **extension workloads**, each with the
same contract as the tree workloads: deterministic generation by seed, a
client-side alias set, a deterministic server-side mutator usable on both
local objects and remote pointers, and a ``visible_data()`` observation
the oracle tests compare against local execution.

Families:

* **linked list** — a singly linked list with aliases to interior cells;
  mutation reverses random sublists and splices new cells (the structure
  whose by-hand restoration via "return the new head" breaks as soon as
  one alias exists);
* **hash index** — a dict-of-buckets keyed by category, values aliased by
  a "recent" list (the multiple-indexing pattern of Section 4.3);
* **general graph** — nodes with arbitrary out-edges (cycles included),
  mutation rewires edges and payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

from repro.core.markers import Remote, Restorable
from repro.util.rng import DeterministicRandom

FAMILIES = ("list", "hash", "graph")


class Cell(Restorable):
    """A linked-list cell."""

    def __init__(self, value: int, tail: "Cell" = None) -> None:
        self.value = value
        self.tail = tail


class Entry(Restorable):
    """A record stored in the hash index."""

    def __init__(self, key: str, amount: int) -> None:
        self.key = key
        self.amount = amount
        self.touched = False


class GraphNode(Restorable):
    """A node with arbitrary out-edges."""

    def __init__(self, label: int) -> None:
        self.label = label
        self.edges = []


class HashIndex(Restorable):
    """Dict-of-buckets plus a 'recent' alias list (multiple indexing)."""

    def __init__(self) -> None:
        self.buckets = {}
        self.recent = []


@dataclass
class StructureWorkload:
    """One extension-workload instance."""

    family: str
    size: int
    seed: int
    root: Any = None
    aliases: List[Any] = field(default_factory=list)

    def visible_data(self) -> tuple:
        if self.family == "list":
            values = []
            cell = self.root
            guard = 0
            while cell is not None and guard < self.size * 4:
                values.append(cell.value)
                cell = cell.tail
                guard += 1
            alias_view = tuple(alias.value for alias in self.aliases)
            return tuple(values), alias_view
        if self.family == "hash":
            buckets = tuple(
                (key, tuple((entry.key, entry.amount, entry.touched) for entry in bucket))
                for key, bucket in sorted(self.root.buckets.items())
            )
            recent = tuple(
                (entry.key, entry.amount, entry.touched) for entry in self.root.recent
            )
            alias_view = tuple(
                (alias.key, alias.amount, alias.touched) for alias in self.aliases
            )
            return buckets, recent, alias_view
        # graph: BFS projection from root + alias payloads
        seen = []
        order = {}
        queue = [self.root]
        while queue:
            node = queue.pop(0)
            if id(node) in order:
                continue
            order[id(node)] = len(order)
            seen.append(node)
            queue.extend(node.edges)
        shape = tuple(
            (node.label, tuple(order[id(edge)] for edge in node.edges))
            for node in seen
        )
        alias_view = tuple(alias.label for alias in self.aliases)
        return shape, alias_view


# ---------------------------------------------------------------- builders


def generate_structure(family: str, size: int, seed: int) -> StructureWorkload:
    if family not in FAMILIES:
        raise ValueError(f"family must be one of {FAMILIES}, got {family!r}")
    if size < 1:
        raise ValueError(f"size must be positive, got {size}")
    rng = DeterministicRandom(seed).fork(f"struct-{family}-{size}")
    workload = StructureWorkload(family=family, size=size, seed=seed)
    if family == "list":
        head = None
        cells = []
        for index in range(size):
            head = Cell(rng.randint(0, 10_000), head)
            cells.append(head)
        workload.root = head
        workload.aliases = rng.sample(cells[:-1] or cells, max(1, size // 8))
    elif family == "hash":
        index = HashIndex()
        entries = []
        for number in range(size):
            entry = Entry(f"k{number}", rng.randint(0, 10_000))
            bucket = f"b{rng.randint(0, max(1, size // 8))}"
            index.buckets.setdefault(bucket, []).append(entry)
            entries.append(entry)
        index.recent = rng.sample(entries, max(1, size // 4))
        workload.root = index
        workload.aliases = rng.sample(entries, max(1, size // 8))
    else:
        nodes = [GraphNode(number) for number in range(size)]
        for node in nodes:
            for _ in range(rng.randint(0, 3)):
                node.edges.append(rng.choice(nodes))
        workload.root = nodes[0]
        # Root must reach everything for copy-restore to carry it all:
        # chain unreached nodes onto the root.
        reached = set()
        stack = [nodes[0]]
        while stack:
            node = stack.pop()
            if id(node) in reached:
                continue
            reached.add(id(node))
            stack.extend(node.edges)
        for node in nodes:
            if id(node) not in reached:
                nodes[0].edges.append(node)
        workload.aliases = rng.sample(nodes[1:] or nodes, max(1, size // 8))
    return workload


# ---------------------------------------------------------------- mutators


def mutate_structure_family(family: str, root: Any, seed: int) -> int:
    """Deterministic server-side mutation for each family."""
    rng = DeterministicRandom(seed).fork(f"mutate-{family}")
    changes = 0
    if family == "list":
        # Reverse the first K cells and splice fresh cells behind them.
        cell, previous = root.tail, None
        count = 0
        while cell is not None and count < 64:
            if rng.chance(0.5):
                cell.value = rng.randint(10_001, 20_000)
                changes += 1
            if rng.chance(0.2):
                fresh = Cell(rng.randint(20_001, 30_000), cell.tail)
                cell.tail = fresh
                changes += 1
            previous, cell = cell, cell.tail
            count += 1
        if rng.chance(0.5) and root.tail is not None:
            # Detach the second cell but keep mutating it: the alias case.
            detached = root.tail
            root.tail = detached.tail
            detached.value = -detached.value
            changes += 2
    elif family == "hash":
        for key in sorted(root.buckets):
            for entry in root.buckets[key]:
                if rng.chance(0.4):
                    entry.amount += 7
                    entry.touched = True
                    changes += 1
        if root.recent and rng.chance(0.8):
            promoted = root.recent[0]
            bucket = root.buckets.setdefault("hot", [])
            if promoted not in bucket:
                bucket.append(promoted)
                changes += 1
    else:
        visited = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            if rng.chance(0.5):
                node.label = rng.randint(10_001, 20_000)
                changes += 1
            if node.edges and rng.chance(0.3):
                node.edges.pop(rng.randint(0, len(node.edges) - 1))
                changes += 1
            if rng.chance(0.2):
                fresh = GraphNode(rng.randint(20_001, 30_000))
                fresh.edges.append(node)
                node.edges.append(fresh)
                changes += 1
            stack.extend(node.edges)
    return changes


class StructureService(Remote):
    """The remote service mutating extension workloads."""

    def mutate(self, family: str, root: Any, seed: int) -> int:
        return mutate_structure_family(family, root, seed)
