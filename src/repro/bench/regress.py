"""Benchmark-regression runner: ``python -m repro.bench.regress``.

Replays the serde micro-benchmark (``bench_serde_micro``: encode/decode of
scenario III trees under both profiles) plus Table-5-style NRMI
copy-restore calls, and writes the measurements to ``BENCH_pr1.json`` at
the repository root.

The run doubles as a regression gate: when the output file already exists,
the new serde-micro **encode** timings are compared against the recorded
ones and the process exits non-zero if either profile regressed by more
than ``MAX_ENCODE_REGRESSION_PCT``. CI runs ``--quick`` (small trees, few
repetitions — a smoke test, not a stable measurement); local runs without
flags produce the full-size numbers.

Timings are min-of-rounds wall clock (``time.perf_counter``), the usual
noise floor estimator for micro-benchmarks on a shared machine.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.trees import generate_workload
from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint
from repro.serde.profiles import LEGACY_PROFILE, MODERN_PROFILE
from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter
from repro.transport.resolver import ChannelResolver

SCENARIO = "III"
SEED = 7
FULL_SIZE = 256
QUICK_SIZE = 64

#: Fail the gate when serde-micro encode is this much slower than the
#: previously recorded run.
MAX_ENCODE_REGRESSION_PCT = 25.0

#: Pre-PR timings (µs) for the serde micro-benchmark, recorded on the
#: development machine immediately before the compiled-plan/zero-copy
#: work landed. Indicative only — the regression gate compares against the
#: locally recorded JSON, never against these cross-machine numbers.
PRE_PR_BASELINE_US = {
    256: {
        "modern": {"encode_us": 3067.0, "decode_us": 2887.0},
        "legacy": {"encode_us": 4933.0, "decode_us": 4412.0},
    },
    64: {
        "modern": {"encode_us": 1293.0, "decode_us": 1032.0},
        "legacy": {"encode_us": 2097.0, "decode_us": 1646.0},
    },
}

_PROFILES = {"modern": MODERN_PROFILE, "legacy": LEGACY_PROFILE}

# Table-5 configurations exercised by the call replay (the paper's JDK 1.3
# cell and its fastest JDK 1.4 cell).
_TABLE5_CONFIGS = {
    "legacy-portable": NRMIConfig(profile="legacy", implementation="portable"),
    "modern-optimized": NRMIConfig(profile="modern", implementation="optimized"),
}


def _min_of_rounds(fn, rounds: int, iterations: int) -> float:
    """Best per-iteration time in µs across *rounds* timed loops."""
    fn()  # warm caches and compiled plans outside the timed region
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, (time.perf_counter() - start) / iterations)
    return best * 1e6


def run_serde_micro(size: int, rounds: int, iterations: int) -> Dict[str, Dict]:
    """Encode + decode timings per profile for one scenario III tree."""
    root = generate_workload(SCENARIO, size, SEED).root
    results: Dict[str, Dict] = {}
    for name, profile in _PROFILES.items():
        def encode() -> bytes:
            writer = ObjectWriter(profile=profile)
            writer.write_root(root)
            return writer.getvalue()

        payload = encode()

        def decode():
            return ObjectReader(payload, profile=profile).read_root()

        results[name] = {
            "encode_us": round(_min_of_rounds(encode, rounds, iterations), 1),
            "decode_us": round(_min_of_rounds(decode, rounds, iterations), 1),
            "bytes": len(payload),
        }
    return results


def run_table5_calls(size: int, rounds: int, iterations: int) -> Dict[str, Dict]:
    """NRMI copy-restore round trips (no simulated network) per config."""
    results: Dict[str, Dict] = {}
    for name, config in _TABLE5_CONFIGS.items():
        resolver = ChannelResolver()
        server = Endpoint(name=f"regress-server-{name}", config=config, resolver=resolver)
        client = Endpoint(name=f"regress-client-{name}", config=config, resolver=resolver)
        try:
            from repro.bench.mutators import TreeService

            server.bind("svc", TreeService())
            service = client.lookup(server.address, "svc")
            workload = generate_workload(SCENARIO, size, SEED)

            def call():
                service.mutate(SCENARIO, workload.root, SEED)

            results[name] = {
                "call_us": round(_min_of_rounds(call, rounds, iterations), 1)
            }
        finally:
            client.close()
            server.close()
            resolver.close_all()
    return results


def _load_previous(path: Path) -> Optional[dict]:
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _check_gate(
    previous: Optional[dict], serde: Dict[str, Dict], size: int
) -> List[str]:
    """Regressions of serde-micro encode vs the recorded run, as messages."""
    failures: List[str] = []
    if previous is None:
        return failures
    if previous.get("meta", {}).get("size") != size:
        # A quick run and a full run measure different trees; their
        # timings are not comparable.
        return failures
    recorded = previous.get("serde_micro", {})
    for profile_name, row in serde.items():
        old = recorded.get(profile_name, {}).get("encode_us")
        if not old:
            continue
        new = row["encode_us"]
        regression_pct = (new - old) / old * 100.0
        if regression_pct > MAX_ENCODE_REGRESSION_PCT:
            failures.append(
                f"serde-micro {profile_name} encode regressed "
                f"{regression_pct:.1f}% ({old:.1f}us -> {new:.1f}us, "
                f"limit {MAX_ENCODE_REGRESSION_PCT:.0f}%)"
            )
    return failures


def _default_output() -> Path:
    # src/repro/bench/regress.py -> repository root.
    return Path(__file__).resolve().parents[3] / "BENCH_pr1.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regress", description=__doc__
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small trees, few repetitions (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_pr1.json at the repo root)",
    )
    parser.add_argument(
        "--no-calls",
        action="store_true",
        help="skip the Table-5 call replay (serde micro only)",
    )
    args = parser.parse_args(argv)

    size = QUICK_SIZE if args.quick else FULL_SIZE
    rounds = 3 if args.quick else 8
    iterations = 10 if args.quick else 40
    call_iterations = 3 if args.quick else 10
    output = args.output if args.output is not None else _default_output()

    previous = _load_previous(output)

    serde = run_serde_micro(size, rounds, iterations)
    table5 = (
        {} if args.no_calls else run_table5_calls(size, rounds, call_iterations)
    )

    baseline = PRE_PR_BASELINE_US.get(size)
    speedups = {}
    if baseline:
        for profile_name, row in serde.items():
            for op in ("encode_us", "decode_us"):
                old = baseline[profile_name][op]
                speedups[f"{profile_name}_{op[:-3]}"] = round(old / row[op], 2)

    failures = _check_gate(previous, serde, size)

    report = {
        "meta": {
            "script": "repro.bench.regress",
            "quick": args.quick,
            "scenario": SCENARIO,
            "size": size,
            "seed": SEED,
            "python": sys.version.split()[0],
            "timer": "min-of-rounds perf_counter",
        },
        "serde_micro": serde,
        "table5_calls_us": table5,
        "pre_pr_baseline_us": baseline or {},
        "speedup_vs_pre_pr": speedups,
        "gate": {
            "max_encode_regression_pct": MAX_ENCODE_REGRESSION_PCT,
            "compared_to": "previous run" if previous is not None else "none",
            "passed": not failures,
            "failures": failures,
        },
    }
    output.write_text(json.dumps(report, indent=2) + "\n")

    for profile_name, row in serde.items():
        print(
            f"serde/{profile_name}: encode {row['encode_us']:.1f}us "
            f"decode {row['decode_us']:.1f}us ({row['bytes']} bytes)"
        )
    for config_name, row in table5.items():
        print(f"table5/{config_name}: {row['call_us']:.1f}us per call")
    print(f"wrote {output}")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
