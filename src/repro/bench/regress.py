"""Benchmark-regression runner: ``python -m repro.bench.regress``.

Replays the serde micro-benchmark (``bench_serde_micro``: encode/decode of
scenario III trees under the legacy, modern, and modern-interp — codegen
disabled — profiles), a tcp/uds/shm transport round-trip comparison, a
transport × payload × framing **matrix** (echo calls carrying 64 B–64 KiB
byte payloads over plain and pipelined channels, one windowed-percentile
row per cell), Table-5-style NRMI copy-restore calls, the delta-restore
ablation (full-map vs dirty-slot replies under sparse and dense
mutators), and a concurrency sweep (the staged event-loop server vs the
thread-per-connection baseline under 8/32/128 simultaneous echo clients:
pooled p50/p99 latency, throughput, and the BUSY shed rate), a
**zero-copy × payload** ladder over shm (the staged copy path vs
in-place ring encode/borrowed decode, headline
``shm_zerocopy_vs_shm`` ratio per payload size), and writes the
measurements to ``BENCH_pr10.json`` at the repository root (override
with ``--out``).

Serde-micro and transport timings use **windowed percentiles**: the
operation runs back-to-back inside fixed wall-clock windows (1 s each in
full mode), the *stable window* — the one with the lowest median — is
selected, and its p50/p90/p99 are reported. The p50 of the stable window
is the headline number (``encode_us``/``decode_us``/``rt_us``) the
regression gate compares; it is as robust as min-of-rounds against
background load but additionally exposes tail behaviour. The Table-5 call
replay and the delta ablation keep the classic min-of-rounds timer.

The run doubles as a regression gate: when the output file already exists,
the new serde-micro **encode and decode** p50s are compared against the
recorded ones and the process exits non-zero if either profile regressed
by more than ``MAX_ENCODE_REGRESSION_PCT``. CI runs ``--quick`` (small
trees, short windows — a smoke test, not a stable measurement); local
runs without flags produce the full-size numbers.

``--compare OLD.json NEW.json`` instead diffs two recorded reports: it
prints a per-metric delta table and exits non-zero — naming every failing
metric in the final exit message — if any time-like metric (``*_us``)
regressed by more than ``MAX_ENCODE_REGRESSION_PCT``.
"""

from __future__ import annotations

import argparse
import itertools
import json
import math
import socket as _socket
import subprocess
import sys
import threading
import time
from dataclasses import replace as _dc_replace
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.bench.trees import generate_workload
from repro.core.markers import Remote
from repro.nrmi.config import NRMIConfig
from repro.nrmi.runtime import Endpoint
from repro.serde.codegen import codegen_metrics
from repro.serde.profiles import LEGACY_PROFILE, MODERN_PROFILE
from repro.serde.reader import ObjectReader
from repro.serde.writer import ObjectWriter
from repro.transport.resolver import ChannelResolver
from repro.transport.shm import shm_supported

SCENARIO = "III"
SEED = 7
FULL_SIZE = 256
QUICK_SIZE = 64

#: Wall-clock length of one measurement window in full mode. Quick mode
#: shrinks it (see :func:`main`) — quick numbers are a smoke signal only.
WINDOW_SECONDS = 1.0
#: Windows measured per operation; the one with the lowest p50 wins.
WINDOW_COUNT = 3

#: Fail the gate when a serde-micro timing (encode or decode) is this
#: much slower than the previously recorded run. The name predates the
#: decode gate; it is kept because tooling and tests reference it.
MAX_ENCODE_REGRESSION_PCT = 25.0

#: Serde-micro metrics the gate holds to the recorded run (stable-window
#: p50s; the tail percentiles are reported but too noisy to gate on).
_GATED_OPS = ("encode_us", "decode_us")

#: Pre-PR timings (µs) for the serde micro-benchmark, recorded on the
#: development machine immediately before the compiled-plan/zero-copy
#: work landed. Indicative only — the regression gate compares against the
#: locally recorded JSON, never against these cross-machine numbers.
PRE_PR_BASELINE_US = {
    256: {
        "modern": {"encode_us": 3067.0, "decode_us": 2887.0},
        "legacy": {"encode_us": 4933.0, "decode_us": 4412.0},
    },
    64: {
        "modern": {"encode_us": 1293.0, "decode_us": 1032.0},
        "legacy": {"encode_us": 2097.0, "decode_us": 1646.0},
    },
}

#: Serde-micro profile matrix. "modern-interp" is the modern wire format
#: with exec-codegen disabled — the PR 5 configuration — kept as a
#: measured row so the codegen speedup is visible inside one report.
_PROFILES = {
    "modern": MODERN_PROFILE,
    "modern-interp": _dc_replace(MODERN_PROFILE, use_codegen=False),
    "legacy": LEGACY_PROFILE,
}

# Table-5 configurations exercised by the call replay (the paper's JDK 1.3
# cell and its fastest JDK 1.4 cell).
_TABLE5_CONFIGS = {
    "legacy-portable": NRMIConfig(profile="legacy", implementation="portable"),
    "modern-optimized": NRMIConfig(profile="modern", implementation="optimized"),
}

# Concurrency-sweep grid: simultaneous echo connections per server kind.
# Full mode reaches 128 connections — the regime where a thread per
# connection costs 128 server threads while the staged core still runs
# one net thread plus a fixed worker pool.
_SWEEP_CONNECTIONS_FULL = (8, 32, 128)
_SWEEP_CONNECTIONS_QUICK = (4, 16)
_SWEEP_WORKERS = 8
_SWEEP_PAYLOAD = b"x" * 64

# Mutation densities for the delta-restore ablation: "sparse" touches ~5%
# of the nodes per call (the regime dirty-slot replies are built for),
# "dense" touches every node (the worst case, where a delta reply carries
# the whole map plus index overhead and must stay near full-map cost).
_DELTA_MUTATIONS = {"sparse": 0.05, "dense": 1.0}


def _min_of_rounds(fn, rounds: int, iterations: int) -> float:
    """Best per-iteration time in µs across *rounds* timed loops."""
    fn()  # warm caches and compiled plans outside the timed region
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, (time.perf_counter() - start) / iterations)
    return best * 1e6


# ------------------------------------------------------ windowed percentiles


def _percentile(samples_sorted: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list."""
    index = max(0, math.ceil(q * len(samples_sorted)) - 1)
    return samples_sorted[index]


def _windowed_stats(
    fn: Callable[[], object],
    windows: int = WINDOW_COUNT,
    window_seconds: float = WINDOW_SECONDS,
) -> Dict[str, float]:
    """p50/p90/p99 (µs) of *fn* from its most stable measurement window.

    Runs *fn* back-to-back for *windows* fixed wall-clock windows,
    timing each call individually, then picks the window with the lowest
    median — one transient background spike (a GC, another process's
    scheduling burst) poisons one window, not the whole measurement —
    and reads the percentiles off that window alone.
    """
    fn()  # warm caches, compiled plans, and generated functions
    best_window: Optional[List[float]] = None
    best_p50 = float("inf")
    for _ in range(windows):
        samples: List[float] = []
        deadline = time.perf_counter() + window_seconds
        while True:
            start = time.perf_counter()
            if start >= deadline:
                break
            fn()
            samples.append(time.perf_counter() - start)
        if not samples:  # pathological: one call outlasted the window
            continue
        samples.sort()
        p50 = _percentile(samples, 0.50)
        if p50 < best_p50:
            best_p50 = p50
            best_window = samples
    if best_window is None:
        raise RuntimeError("no measurement window collected any samples")
    return {
        "p50": _percentile(best_window, 0.50) * 1e6,
        "p90": _percentile(best_window, 0.90) * 1e6,
        "p99": _percentile(best_window, 0.99) * 1e6,
        "samples": float(len(best_window)),
    }


def run_serde_micro(
    size: int, windows: int, window_seconds: float
) -> Dict[str, Dict]:
    """Encode + decode percentiles per profile for one scenario III tree."""
    root = generate_workload(SCENARIO, size, SEED).root
    results: Dict[str, Dict] = {}
    for name, profile in _PROFILES.items():
        def encode() -> bytes:
            writer = ObjectWriter(profile=profile)
            writer.write_root(root)
            return writer.getvalue()

        payload = encode()

        def decode():
            return ObjectReader(payload, profile=profile).read_root()

        enc = _windowed_stats(encode, windows, window_seconds)
        dec = _windowed_stats(decode, windows, window_seconds)
        results[name] = {
            "encode_us": round(enc["p50"], 1),
            "encode_p90_us": round(enc["p90"], 1),
            "encode_p99_us": round(enc["p99"], 1),
            "decode_us": round(dec["p50"], 1),
            "decode_p90_us": round(dec["p90"], 1),
            "decode_p99_us": round(dec["p99"], 1),
            "window_samples": int(min(enc["samples"], dec["samples"])),
            "bytes": len(payload),
        }
    return results


def _transport_unavailable(scheme: str) -> Optional[str]:
    """Why *scheme* cannot run on this platform, or ``None`` if it can."""
    if scheme in ("uds", "shm") and not hasattr(_socket, "AF_UNIX"):
        return "platform lacks AF_UNIX"
    if scheme == "shm" and not shm_supported():
        return "platform lacks shm prerequisites (memfd/shm_open + send_fds)"
    return None


def run_transport_rt(windows: int, window_seconds: float) -> Dict[str, Dict]:
    """Framed round-trip percentiles: TCP loopback vs Unix sockets vs shm.

    The probe is a PING — the smallest framed exchange the protocol has —
    so the numbers isolate transport cost (syscalls and the TCP/IP stack,
    a kernel byte copy, or two shared-memory ring writes) from
    marshalling. Rows whose transport the platform cannot provide report
    ``skipped``.
    """
    results: Dict[str, Dict] = {}
    for scheme in ("tcp", "uds", "shm"):
        unavailable = _transport_unavailable(scheme)
        if unavailable:
            results[scheme] = {"skipped": unavailable}
            continue
        resolver = ChannelResolver()
        # Sequential framing on purpose: the pipelined channel adds a
        # reader-thread handoff per call, which on a loaded machine is
        # scheduler noise comparable to the transport cost under test.
        config = NRMIConfig(transport=scheme, tcp_pipelined=False)
        server = Endpoint(
            name=f"rt-server-{scheme}", config=config, resolver=resolver
        )
        client = Endpoint(
            name=f"rt-client-{scheme}", config=config, resolver=resolver
        )
        try:
            address = server.serve_remote()

            def call():
                client.ping(address)

            stats = _windowed_stats(call, windows, window_seconds)
            results[scheme] = {
                "rt_us": round(stats["p50"], 1),
                "rt_p90_us": round(stats["p90"], 1),
                "rt_p99_us": round(stats["p99"], 1),
                "window_samples": int(stats["samples"]),
            }
        finally:
            client.close()
            server.close()
            resolver.close_all()
    tcp_p50 = results.get("tcp", {}).get("rt_us")
    uds_p50 = results.get("uds", {}).get("rt_us")
    shm_p50 = results.get("shm", {}).get("rt_us")
    if tcp_p50 and uds_p50:
        results["uds_vs_tcp_speedup"] = round(tcp_p50 / uds_p50, 2)
    if uds_p50 and shm_p50:
        results["shm_vs_uds_speedup"] = round(uds_p50 / shm_p50, 2)
    return results


#: Transport-matrix payload ladder: 64 B rides inside one sendmsg
#: coalesce / TCP segment, 4 KiB is one ring record / socket buffer
#: chunk, 64 KiB forces the shm ring to wrap and chunk mid-message.
_MATRIX_PAYLOADS_FULL = (64, 4096, 65536)
_MATRIX_PAYLOADS_QUICK = (64, 4096)
_MATRIX_SCHEMES = ("tcp", "uds", "shm")
_MATRIX_MODES = ("plain", "pipelined")


class _MatrixEchoService(Remote):
    """Echoes a bytes payload — the smallest *marshalled* exchange.

    Unlike :func:`run_transport_rt`'s raw PING, the matrix goes through
    lookup/dispatch and serde with a primitive payload, so cells measure
    the full call path with payload size as the controlled variable.
    """

    def echo(self, data: bytes) -> bytes:
        return data


def run_transport_matrix(
    windows: int,
    window_seconds: float,
    payload_sizes=_MATRIX_PAYLOADS_FULL,
) -> Dict[str, Dict]:
    """Transport × payload × framing grid of echo-call percentiles.

    One row per (scheme, channel mode, payload size) cell:
    ``results[scheme][mode]["64B"] == {"rt_us": ..., "rt_p99_us": ...}``.
    ``plain`` is the sequential framed channel, ``pipelined`` the
    multi-call-in-flight variant (a reader-thread handoff per call).
    Unavailable transports collapse to a ``skipped`` row, so reports
    from platforms without shm still diff cleanly under ``--compare``.
    The headline cross-transport ratios (``shm_vs_uds_speedup_64B``,
    ``uds_vs_tcp_speedup_64B``) come from the plain 64 B cells — the
    cells where transport cost dominates marshalling.
    """
    results: Dict[str, Dict] = {
        "meta": {
            "payload_bytes": [int(size) for size in payload_sizes],
            "workload": "echo(bytes) via lookup/dispatch + serde",
        }
    }
    for scheme in _MATRIX_SCHEMES:
        unavailable = _transport_unavailable(scheme)
        if unavailable:
            results[scheme] = {"skipped": unavailable}
            continue
        scheme_rows: Dict[str, Dict] = {}
        for mode in _MATRIX_MODES:
            resolver = ChannelResolver()
            config = NRMIConfig(
                transport=scheme, tcp_pipelined=(mode == "pipelined")
            )
            server = Endpoint(
                name=f"matrix-server-{scheme}-{mode}",
                config=config,
                resolver=resolver,
            )
            client = Endpoint(
                name=f"matrix-client-{scheme}-{mode}",
                config=config,
                resolver=resolver,
            )
            mode_rows: Dict[str, Dict] = {}
            try:
                # serve_remote() is what moves the endpoint's address off
                # inproc:// and onto the scheme under test — without it
                # every cell would silently measure direct dispatch.
                address = server.serve_remote()
                server.bind("echo", _MatrixEchoService())
                service = client.lookup(address, "echo")
                for size in payload_sizes:
                    payload = b"x" * size

                    def call():
                        service.echo(payload)

                    stats = _windowed_stats(call, windows, window_seconds)
                    mode_rows[f"{size}B"] = {
                        "rt_us": round(stats["p50"], 1),
                        "rt_p90_us": round(stats["p90"], 1),
                        "rt_p99_us": round(stats["p99"], 1),
                        "window_samples": int(stats["samples"]),
                    }
            finally:
                client.close()
                server.close()
                resolver.close_all()
            scheme_rows[mode] = mode_rows
        results[scheme] = scheme_rows

    def _plain_64(scheme: str) -> Optional[float]:
        return (
            results.get(scheme, {})
            .get("plain", {})
            .get("64B", {})
            .get("rt_us")
        )

    tcp_p50, uds_p50, shm_p50 = (
        _plain_64("tcp"), _plain_64("uds"), _plain_64("shm")
    )
    if tcp_p50 and uds_p50:
        results["uds_vs_tcp_speedup_64B"] = round(tcp_p50 / uds_p50, 2)
    if uds_p50 and shm_p50:
        results["shm_vs_uds_speedup_64B"] = round(uds_p50 / shm_p50, 2)
    return results


def run_zero_copy_matrix(
    windows: int,
    window_seconds: float,
    payload_sizes=_MATRIX_PAYLOADS_FULL,
) -> Dict[str, Dict]:
    """Zero-copy × payload ladder over the shm transport.

    Two rows per payload size: ``copy`` forces the staged path
    (``shm_zero_copy=False`` — encode into a pooled buffer, write_frame
    copies it into the ring, recv copies the reply out) and ``zerocopy``
    lets the client encode straight into the ring reservation and decode
    the reply off a borrowed ring slice while the server borrows the
    request record in place. Wire bytes are identical; the ladder
    isolates what the two staging copies cost at each size. The headline
    ``shm_zerocopy_vs_shm`` ratios are copy-p50 / zerocopy-p50 per cell
    (> 1.0 means zero-copy wins). Sequential framing on purpose, same
    rationale as :func:`run_transport_rt`.
    """
    results: Dict[str, Dict] = {
        "meta": {
            "payload_bytes": [int(size) for size in payload_sizes],
            "workload": "echo(bytes) via lookup/dispatch + serde, shm plain",
        }
    }
    unavailable = _transport_unavailable("shm")
    if unavailable:
        results["skipped"] = unavailable
        return results
    for label, zero_copy in (("copy", False), ("zerocopy", True)):
        resolver = ChannelResolver()
        config = NRMIConfig(
            transport="shm", tcp_pipelined=False, shm_zero_copy=zero_copy
        )
        server = Endpoint(
            name=f"zc-server-{label}", config=config, resolver=resolver
        )
        client = Endpoint(
            name=f"zc-client-{label}", config=config, resolver=resolver
        )
        rows: Dict[str, Dict] = {}
        try:
            address = server.serve_remote()
            server.bind("echo", _MatrixEchoService())
            service = client.lookup(address, "echo")
            for size in payload_sizes:
                payload = b"x" * size

                def call():
                    service.echo(payload)

                stats = _windowed_stats(call, windows, window_seconds)
                rows[f"{size}B"] = {
                    "rt_us": round(stats["p50"], 1),
                    "rt_p90_us": round(stats["p90"], 1),
                    "rt_p99_us": round(stats["p99"], 1),
                    "window_samples": int(stats["samples"]),
                }
        finally:
            client.close()
            server.close()
            resolver.close_all()
        results[label] = rows
    ratios: Dict[str, float] = {}
    for size in payload_sizes:
        cell = f"{size}B"
        copy_p50 = results.get("copy", {}).get(cell, {}).get("rt_us")
        zc_p50 = results.get("zerocopy", {}).get(cell, {}).get("rt_us")
        if copy_p50 and zc_p50:
            ratios[cell] = round(copy_p50 / zc_p50, 3)
    if ratios:
        results["shm_zerocopy_vs_shm"] = ratios
    return results


def run_table5_calls(size: int, rounds: int, iterations: int) -> Dict[str, Dict]:
    """NRMI copy-restore round trips (no simulated network) per config."""
    results: Dict[str, Dict] = {}
    for name, config in _TABLE5_CONFIGS.items():
        resolver = ChannelResolver()
        server = Endpoint(name=f"regress-server-{name}", config=config, resolver=resolver)
        client = Endpoint(name=f"regress-client-{name}", config=config, resolver=resolver)
        try:
            from repro.bench.mutators import TreeService

            server.bind("svc", TreeService())
            service = client.lookup(server.address, "svc")
            workload = generate_workload(SCENARIO, size, SEED)

            def call():
                service.mutate(SCENARIO, workload.root, SEED)

            results[name] = {
                "call_us": round(_min_of_rounds(call, rounds, iterations), 1)
            }
        finally:
            client.close()
            server.close()
            resolver.close_all()
    return results


def run_delta_restore(
    size: int,
    rounds: int,
    iterations: int,
    mutations: Optional[Dict[str, float]] = None,
) -> Dict[str, Dict]:
    """Full-map vs dirty-slot replies under sparse and dense mutators.

    Every call mutates under a *fresh* seed: with a repeated seed the
    deterministic mutator would rewrite the same values into an
    already-mutated tree, every slot would digest clean, and the delta
    numbers would measure an unrealistically empty reply.
    """
    from repro.bench.mutators import TreeService

    results: Dict[str, Dict] = {}
    for label, fraction in (mutations or _DELTA_MUTATIONS).items():
        row: Dict[str, object] = {"mutate_fraction": fraction}
        for policy in ("full", "delta"):
            config = NRMIConfig(policy=policy)
            resolver = ChannelResolver()
            server = Endpoint(
                name=f"delta-server-{label}-{policy}",
                config=config,
                resolver=resolver,
            )
            client = Endpoint(
                name=f"delta-client-{label}-{policy}",
                config=config,
                resolver=resolver,
            )
            try:
                server.bind("svc", TreeService())
                service = client.lookup(server.address, "svc")
                workload = generate_workload(SCENARIO, size, SEED)
                seeds = itertools.count(SEED)

                def call():
                    service.mutate_sparse(workload.root, next(seeds), fraction)

                call_us = _min_of_rounds(call, rounds, iterations)
                channel = resolver.resolve(server.address)
                channel.stats.reset()
                probes = max(iterations, 5)
                for _ in range(probes):
                    call()
                snap = channel.stats.snapshot()
                row[policy] = {
                    "call_us": round(call_us, 1),
                    "request_bytes": round(snap["bytes_sent"] / probes, 1),
                    "reply_bytes": round(snap["bytes_received"] / probes, 1),
                }
            finally:
                client.close()
                server.close()
                resolver.close_all()
        full_reply = row["full"]["reply_bytes"]
        delta_reply = row["delta"]["reply_bytes"]
        row["reply_bytes_ratio"] = round(full_reply / max(delta_reply, 1.0), 2)
        results[label] = row
    return results


def _sweep_one_server(server, connections: int, window_seconds: float) -> Dict:
    """Pooled latency percentiles for *connections* echo clients.

    Each client thread owns one framed socket and issues back-to-back
    echo round trips until the window closes. BUSY frames (the staged
    server shedding under overload) are counted separately and excluded
    from the latency pool — a 2-byte rejection is not a round trip.
    """
    from repro.rmi.protocol import Status
    from repro.transport.framing import read_frame, write_frame

    latencies: List[float] = []
    busy_total = 0
    lock = threading.Lock()
    barrier = threading.Barrier(connections + 1)
    stop = threading.Event()

    def client() -> None:
        nonlocal busy_total
        sock = _socket.create_connection(
            (server.host, server.port), timeout=10.0
        )
        local: List[float] = []
        local_busy = 0
        try:
            barrier.wait()
            while not stop.is_set():
                start = time.perf_counter()
                write_frame(sock, _SWEEP_PAYLOAD)
                response = read_frame(sock, timeout=10.0)
                elapsed = time.perf_counter() - start
                if len(response) == 2 and response[0] == Status.BUSY:
                    local_busy += 1
                else:
                    local.append(elapsed)
        finally:
            sock.close()
            with lock:
                latencies.extend(local)
                busy_total += local_busy

    threads = [threading.Thread(target=client) for _ in range(connections)]
    for thread in threads:
        thread.start()
    barrier.wait()
    time.sleep(window_seconds)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)

    latencies.sort()
    calls = len(latencies)
    if not calls:
        return {"connections": connections, "calls": 0, "busy": busy_total}
    total = busy_total + calls
    return {
        "connections": connections,
        "p50_us": round(_percentile(latencies, 0.50) * 1e6, 1),
        "p99_us": round(_percentile(latencies, 0.99) * 1e6, 1),
        "calls": calls,
        "calls_per_sec": round(calls / window_seconds, 1),
        "busy": busy_total,
        "shed_rate": round(busy_total / total, 4),
    }


def run_concurrency_sweep(
    connection_counts=_SWEEP_CONNECTIONS_FULL,
    window_seconds: float = 0.5,
) -> Dict[str, Dict]:
    """Staged event-loop server vs thread-per-connection baseline.

    Echo handler (no marshalling) so the numbers isolate the server
    core: accept/framing/dispatch architecture, not serde. Each row is
    ``connections`` simultaneous clients hammering one server; the
    staged rows run the default shed policy, so under overload they
    trade a bounded queue for explicit BUSY rejections, which the sweep
    reports as ``shed_rate``.
    """
    from repro.transport.tcp import TcpServer, ThreadedTcpServer

    def echo(request, session=None):
        return bytes(request)

    results: Dict[str, Dict] = {
        "meta": {
            "payload_bytes": len(_SWEEP_PAYLOAD),
            "window_seconds": window_seconds,
            "staged_workers": _SWEEP_WORKERS,
        }
    }
    for kind in ("staged", "threaded"):
        rows: Dict[str, Dict] = {}
        for connections in connection_counts:
            if kind == "staged":
                server = TcpServer(
                    echo,
                    workers=_SWEEP_WORKERS,
                    queue_capacity=max(64, 2 * connections),
                )
            else:
                server = ThreadedTcpServer(echo)
            try:
                rows[f"c{connections}"] = _sweep_one_server(
                    server, connections, window_seconds
                )
            finally:
                server.stop(grace=2.0)
        results[kind] = rows
    return results


# ------------------------------------------------------------- comparison

#: Report sections whose numeric leaves are comparable measurements.
_COMPARE_SECTIONS = (
    "serde_micro",
    "transport_rt",
    "transport_matrix",
    "zero_copy_matrix",
    "table5_calls_us",
    "delta_restore",
    "concurrency_sweep",
)


def _flatten_metrics(report: dict) -> Dict[str, float]:
    """Numeric leaves of the measurement sections as dotted paths."""
    flat: Dict[str, float] = {}

    def walk(prefix: str, node) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                walk(f"{prefix}.{key}" if prefix else key, value)
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            flat[prefix] = float(node)

    for section in _COMPARE_SECTIONS:
        if section in report:
            walk(section, report[section])
    return flat


def run_compare(old_path: Path, new_path: Path) -> int:
    """Per-metric delta table between two reports; non-zero on regression.

    Only time-like metrics (``*_us``, lower is better) gate the exit
    status; byte counts and ratios are printed for context. The final
    exit message names every metric that failed the gate.
    """
    try:
        old_report = json.loads(old_path.read_text())
        new_report = json.loads(new_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot load reports: {exc}", file=sys.stderr)
        return 2

    old_size = old_report.get("meta", {}).get("size")
    new_size = new_report.get("meta", {}).get("size")
    if old_size != new_size:
        print(
            f"warning: reports measure different tree sizes "
            f"({old_size} vs {new_size}); timings are not comparable",
            file=sys.stderr,
        )

    old_metrics = _flatten_metrics(old_report)
    new_metrics = _flatten_metrics(new_report)
    shared = sorted(set(old_metrics) & set(new_metrics))
    if not shared:
        print("no shared metrics between the two reports", file=sys.stderr)
        return 2

    width = max(len(name) for name in shared)
    print(f"{'metric':<{width}}  {'old':>12}  {'new':>12}  {'delta':>8}")
    failed_metrics: List[str] = []
    failures: List[str] = []
    for name in shared:
        old_value, new_value = old_metrics[name], new_metrics[name]
        delta_pct = (
            (new_value - old_value) / old_value * 100.0 if old_value else 0.0
        )
        gated = name.endswith("_us")
        marker = ""
        if gated and delta_pct > MAX_ENCODE_REGRESSION_PCT:
            marker = "  REGRESSION"
            failed_metrics.append(name)
            failures.append(
                f"{name} regressed {delta_pct:.1f}% "
                f"({old_value:.1f} -> {new_value:.1f}, "
                f"limit {MAX_ENCODE_REGRESSION_PCT:.0f}%)"
            )
        print(
            f"{name:<{width}}  {old_value:>12.1f}  {new_value:>12.1f}  "
            f"{delta_pct:>+7.1f}%{marker}"
        )
    for name in sorted(set(old_metrics) ^ set(new_metrics)):
        side = "old" if name in old_metrics else "new"
        print(f"{name:<{width}}  (only in {side} report, skipped)")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        print(
            f"compare failed: {len(failed_metrics)} metric(s) regressed "
            f"beyond {MAX_ENCODE_REGRESSION_PCT:.0f}%: "
            + ", ".join(failed_metrics),
            file=sys.stderr,
        )
        return 1
    return 0


def _load_previous(path: Path) -> Optional[dict]:
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _check_gate(
    previous: Optional[dict],
    serde: Dict[str, Dict],
    size: int,
    limit_pct: float = MAX_ENCODE_REGRESSION_PCT,
) -> List[str]:
    """Regressions of serde-micro encode/decode vs the recorded run.

    ``limit_pct`` lets callers re-measuring under load (the bench-smoke
    test inside a full pytest run) use a looser budget than the dedicated
    runner's default.
    """
    failures: List[str] = []
    if previous is None:
        return failures
    if previous.get("meta", {}).get("size") != size:
        # A quick run and a full run measure different trees; their
        # timings are not comparable.
        return failures
    recorded = previous.get("serde_micro", {})
    for profile_name, row in serde.items():
        for op in _GATED_OPS:
            old = recorded.get(profile_name, {}).get(op)
            if not old:
                continue
            new = row[op]
            regression_pct = (new - old) / old * 100.0
            if regression_pct > limit_pct:
                failures.append(
                    f"serde-micro {profile_name} {op[:-3]} regressed "
                    f"{regression_pct:.1f}% ({old:.1f}us -> {new:.1f}us, "
                    f"limit {limit_pct:.0f}%)"
                )
    return failures


def _git_rev() -> str:
    """The repository HEAD this report measured, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def _codegen_counters() -> Dict[str, int]:
    return {
        "compiled": codegen_metrics.counter("serde.codegen.compiled").value,
        "fallbacks": codegen_metrics.counter("serde.codegen.fallbacks").value,
    }


def _default_output() -> Path:
    # src/repro/bench/regress.py -> repository root.
    return Path(__file__).resolve().parents[3] / "BENCH_pr10.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regress", description=__doc__
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small trees, short windows (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        "--out",
        dest="output",
        type=Path,
        default=None,
        help="output JSON path (default: BENCH_pr10.json at the repo root)",
    )
    parser.add_argument(
        "--no-calls",
        action="store_true",
        help="skip the Table-5 call replay, delta ablation, transport "
        "round trips, transport matrix, and concurrency sweep "
        "(serde micro only)",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        type=Path,
        metavar=("OLD", "NEW"),
        default=None,
        help="diff two recorded reports instead of measuring; exits "
        "non-zero (naming the failing metrics) if a *_us metric "
        "regressed beyond the gate",
    )
    args = parser.parse_args(argv)

    if args.compare is not None:
        return run_compare(args.compare[0], args.compare[1])

    size = QUICK_SIZE if args.quick else FULL_SIZE
    windows = 2 if args.quick else WINDOW_COUNT
    window_seconds = 0.1 if args.quick else WINDOW_SECONDS
    rounds = 3 if args.quick else 8
    call_iterations = 3 if args.quick else 10
    output = args.output if args.output is not None else _default_output()

    previous = _load_previous(output)

    serde = run_serde_micro(size, windows, window_seconds)
    transport = {} if args.no_calls else run_transport_rt(windows, window_seconds)
    matrix = (
        {}
        if args.no_calls
        else run_transport_matrix(
            windows,
            window_seconds,
            _MATRIX_PAYLOADS_QUICK if args.quick else _MATRIX_PAYLOADS_FULL,
        )
    )
    zero_copy = (
        {}
        if args.no_calls
        else run_zero_copy_matrix(
            windows,
            window_seconds,
            _MATRIX_PAYLOADS_QUICK if args.quick else _MATRIX_PAYLOADS_FULL,
        )
    )
    table5 = (
        {} if args.no_calls else run_table5_calls(size, rounds, call_iterations)
    )
    delta = (
        {}
        if args.no_calls
        else run_delta_restore(size, rounds, call_iterations)
    )
    sweep = (
        {}
        if args.no_calls
        else run_concurrency_sweep(
            _SWEEP_CONNECTIONS_QUICK if args.quick else _SWEEP_CONNECTIONS_FULL,
            window_seconds=0.15 if args.quick else 0.5,
        )
    )

    baseline = PRE_PR_BASELINE_US.get(size)
    speedups = {}
    if baseline:
        for profile_name, row in serde.items():
            if profile_name not in baseline:
                continue
            for op in ("encode_us", "decode_us"):
                old = baseline[profile_name][op]
                speedups[f"{profile_name}_{op[:-3]}"] = round(old / row[op], 2)

    failures = _check_gate(previous, serde, size)

    report = {
        "meta": {
            "script": "repro.bench.regress",
            "quick": args.quick,
            "scenario": SCENARIO,
            "size": size,
            "seed": SEED,
            "python": sys.version.split()[0],
            "git_rev": _git_rev(),
            "timer": (
                "windowed p50/p90/p99, stable-window selection "
                f"({windows}x{window_seconds:g}s windows); table5/delta "
                "min-of-rounds perf_counter"
            ),
        },
        "serde_micro": serde,
        "transport_rt": transport,
        "transport_matrix": matrix,
        "zero_copy_matrix": zero_copy,
        "table5_calls_us": table5,
        "delta_restore": delta,
        "concurrency_sweep": sweep,
        "codegen": _codegen_counters(),
        "pre_pr_baseline_us": baseline or {},
        "speedup_vs_pre_pr": speedups,
        "gate": {
            "max_encode_regression_pct": MAX_ENCODE_REGRESSION_PCT,
            "compared_to": "previous run" if previous is not None else "none",
            "passed": not failures,
            "failures": failures,
        },
    }
    output.write_text(json.dumps(report, indent=2) + "\n")

    for profile_name, row in serde.items():
        print(
            f"serde/{profile_name}: encode {row['encode_us']:.1f}us "
            f"(p99 {row['encode_p99_us']:.1f}) "
            f"decode {row['decode_us']:.1f}us "
            f"(p99 {row['decode_p99_us']:.1f}) ({row['bytes']} bytes)"
        )
    for scheme in _MATRIX_SCHEMES:
        row = transport.get(scheme)
        if not row:
            continue
        if "skipped" in row:
            print(f"transport/{scheme}: skipped ({row['skipped']})")
        else:
            print(
                f"transport/{scheme}: rt {row['rt_us']:.1f}us "
                f"(p99 {row['rt_p99_us']:.1f})"
            )
    for scheme in _MATRIX_SCHEMES:
        scheme_rows = matrix.get(scheme)
        if not scheme_rows:
            continue
        if "skipped" in scheme_rows:
            print(f"matrix/{scheme}: skipped ({scheme_rows['skipped']})")
            continue
        for mode, mode_rows in scheme_rows.items():
            for cell, row in mode_rows.items():
                print(
                    f"matrix/{scheme}/{mode}/{cell}: "
                    f"rt {row['rt_us']:.1f}us (p99 {row['rt_p99_us']:.1f})"
                )
    for ratio_key in ("uds_vs_tcp_speedup_64B", "shm_vs_uds_speedup_64B"):
        if ratio_key in matrix:
            print(f"matrix/{ratio_key}: {matrix[ratio_key]:.2f}x")
    if "skipped" in zero_copy:
        print(f"zerocopy: skipped ({zero_copy['skipped']})")
    for label in ("copy", "zerocopy"):
        for cell, row in zero_copy.get(label, {}).items():
            print(
                f"zerocopy/{label}/{cell}: rt {row['rt_us']:.1f}us "
                f"(p99 {row['rt_p99_us']:.1f})"
            )
    for cell, ratio in zero_copy.get("shm_zerocopy_vs_shm", {}).items():
        print(f"zerocopy/shm_zerocopy_vs_shm/{cell}: {ratio:.3f}x")
    for config_name, row in table5.items():
        print(f"table5/{config_name}: {row['call_us']:.1f}us per call")
    for label, row in delta.items():
        print(
            f"delta/{label}: full {row['full']['call_us']:.1f}us "
            f"{row['full']['reply_bytes']:.0f}B reply, "
            f"delta {row['delta']['call_us']:.1f}us "
            f"{row['delta']['reply_bytes']:.0f}B reply "
            f"({row['reply_bytes_ratio']:.1f}x fewer reply bytes)"
        )
    for kind in ("staged", "threaded"):
        for row in sweep.get(kind, {}).values():
            if row.get("calls"):
                print(
                    f"sweep/{kind}/c{row['connections']}: "
                    f"p50 {row['p50_us']:.1f}us p99 {row['p99_us']:.1f}us "
                    f"{row['calls_per_sec']:.0f} calls/s "
                    f"shed {row['shed_rate'] * 100:.1f}%"
                )
    print(f"wrote {output}")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
