"""The paper's Tables 1-6 as data, plus the reproduction's table specs.

Paper cells are milliseconds per remote call, rounded to the nearest
millisecond; ``0.5`` stands for the paper's "<1" and ``None`` for "-"
(the configurations that failed to complete). Table 1 cells are
(fast, slow) machine pairs; Table 5's JDK 1.4 cells are
(portable, optimized) pairs.

These numbers are used for shape comparison only (EXPERIMENTS.md): the
reproduction's substrate is CPython on modern hardware with a modelled
LAN, so absolute values differ; ratios and orderings are what must hold.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

SIZES = (16, 64, 256, 1024)
SCENARIOS = ("I", "II", "III")

_LT1 = 0.5  # the paper's "<1"

# Table 1: local execution, (fast, slow) per cell. Columns: JDK1.3 then 1.4.
PAPER_TABLE1: Dict[str, Dict[str, Dict[int, Tuple[float, float]]]] = {
    "jdk13": {
        "I": {16: (_LT1, _LT1), 64: (_LT1, 1), 256: (1, 2), 1024: (6, 8)},
        "II": {16: (_LT1, 1), 64: (1, 1), 256: (4, 5), 1024: (15, 20)},
        "III": {16: (_LT1, 1), 64: (1, 2), 256: (5, 6), 1024: (19, 24)},
    },
    "jdk14": {
        "I": {16: (_LT1, _LT1), 64: (_LT1, 1), 256: (1, 1), 1024: (4, 6)},
        "II": {16: (_LT1, 1), 64: (1, 1), 256: (3, 4), 1024: (12, 16)},
        "III": {16: (_LT1, 1), 64: (1, 1), 256: (4, 5), 1024: (15, 19)},
    },
}

# Table 2: RMI one-way (no restore).
PAPER_TABLE2: Dict[str, Dict[str, Dict[int, float]]] = {
    "jdk13": {
        "I": {16: 3, 64: 7, 256: 18, 1024: 65},
        "II": {16: 3, 64: 7, 256: 21, 1024: 74},
        "III": {16: 3, 64: 8, 256: 22, 1024: 79},
    },
    "jdk14": {
        "I": {16: 2, 64: 4, 256: 9, 1024: 33},
        "II": {16: 3, 64: 4, 256: 12, 1024: 41},
        "III": {16: 3, 64: 5, 256: 12, 1024: 44},
    },
}

# Table 3: RMI with manual restore, local machine (no network).
PAPER_TABLE3: Dict[str, Dict[str, Dict[int, float]]] = {
    "jdk13": {
        "I": {16: 3, 64: 7, 256: 17, 1024: 59},
        "II": {16: 4, 64: 8, 256: 19, 1024: 67},
        "III": {16: 4, 64: 9, 256: 24, 1024: 87},
    },
    "jdk14": {
        "I": {16: 3, 64: 4, 256: 11, 1024: 41},
        "II": {16: 3, 64: 5, 256: 13, 1024: 48},
        "III": {16: 3, 64: 6, 256: 16, 1024: 66},
    },
}

# Table 4: RMI with manual restore over the LAN (two-way traffic).
PAPER_TABLE4: Dict[str, Dict[str, Dict[int, float]]] = {
    "jdk13": {
        "I": {16: 5, 64: 11, 256: 29, 1024: 102},
        "II": {16: 5, 64: 12, 256: 32, 1024: 112},
        "III": {16: 6, 64: 13, 256: 38, 1024: 143},
    },
    "jdk14": {
        "I": {16: 4, 64: 6, 256: 18, 1024: 68},
        "II": {16: 4, 64: 7, 256: 21, 1024: 77},
        "III": {16: 4, 64: 9, 256: 27, 1024: 106},
    },
}

# Table 5: NRMI copy-restore. JDK 1.4 cells: (portable, optimized).
PAPER_TABLE5_JDK13: Dict[str, Dict[int, float]] = {
    "I": {16: 6, 64: 13, 256: 36, 1024: 130},
    "II": {16: 6, 64: 13, 256: 38, 1024: 141},
    "III": {16: 6, 64: 14, 256: 39, 1024: 146},
}
PAPER_TABLE5_JDK14: Dict[str, Dict[int, Tuple[float, float]]] = {
    "I": {16: (5, 4), 64: (8, 8), 256: (25, 22), 1024: (93, 82)},
    "II": {16: (5, 4), 64: (9, 8), 256: (27, 24), 1024: (103, 95)},
    "III": {16: (5, 4), 64: (9, 8), 256: (28, 25), 1024: (106, 97)},
}

# Table 6: call-by-reference via remote pointers; None = failed to complete.
PAPER_TABLE6: Dict[str, Dict[str, Dict[int, Optional[float]]]] = {
    "jdk13": {
        "I": {16: 41, 64: 50, 256: 87, 1024: None},
        "II": {16: 35, 64: 50, 256: 85, 1024: None},
        "III": {16: 113, 64: 123, 256: 164, 1024: None},
    },
    "jdk14": {
        "I": {16: 44, 64: 48, 256: 124, 1024: None},
        "II": {16: 49, 64: 53, 256: 95, 1024: None},
        "III": {16: 131, 64: 131, 256: 228, 1024: None},
    },
}

# Section 5.3.2's line-count claims for the by-hand emulation.
PAPER_MANUAL_LOC = {"return-types": 45, "updating-traversal": 16, "shadow-tree": 35}

TABLE_TITLES = {
    "1": "Baseline 1 — Local Execution (processing overhead)",
    "2": "Baseline 2 — RMI Execution, without Restore (one-way traffic)",
    "3": "Baseline 3 — RMI Execution with Restore on local machine (no network)",
    "4": "RMI Execution with Restore (two-way traffic)",
    "5": "NRMI (Call-by-copy-restore); modern cells: portable / optimized",
    "6": "Call-by-Reference with Remote References (RMI)",
}

#: Maps the paper's JDK columns onto the reproduction's profiles.
PROFILE_FOR_JDK = {"jdk13": "legacy", "jdk14": "modern"}


def paper_expectations() -> Dict[str, str]:
    """The shape claims the reproduction must reproduce (Section 5.3.3)."""
    return {
        "modern-vs-legacy": "RMI on the modern profile is materially faster "
        "than on the legacy profile (paper: 50-60% for JDK 1.4 vs 1.3)",
        "nrmi-overhead": "optimized NRMI is within tens of percent of manual "
        "RMI-with-restore on the same profile for scenarios I/II "
        "(paper: about 20% slower)",
        "nrmi-vs-legacy-rmi": "optimized NRMI on the modern profile beats "
        "manual RMI-with-restore on the legacy profile (paper: 20-30% faster)",
        "scenario-iii": "for scenario III NRMI matches or beats manual RMI "
        "(the shadow tree ships more bytes than the restore payload)",
        "remote-ref": "call-by-reference via remote pointers is at least an "
        "order of magnitude slower and fails by leak at 1024 nodes",
        "growth": "costs grow roughly linearly with tree size",
    }
